"""Setup shim for environments without PEP 660 editable-install support.

``pip install -e .`` needs the ``wheel`` package for editable builds; in
offline environments without it, run ``python setup.py develop`` instead.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
