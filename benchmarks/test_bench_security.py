"""E7 / §IV — cost of the security pipeline.

The paper specifies the security operations (one-time sign-up with key
generation + CSR + certificate, per-message signing, end-to-end
encryption, forwarded-certificate validation) but not their cost; this
bench measures each stage so the overhead of "secure" in SOS is
quantified, plus a batched micro-table for the full pipeline.
"""

import pytest

from repro.alleyoop.cloud import CloudService
from repro.alleyoop.signup import sign_up
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair, hybrid_decrypt, hybrid_encrypt
from repro.pki.validation import CertificateValidator

PAYLOAD = b"x" * 1024


@pytest.fixture(scope="module")
def crypto_env():
    rng = HmacDrbg.from_int(31337)
    cloud = CloudService(rng=rng, now=0.0, key_bits=1024)
    alice = sign_up(cloud, "alice", rng=HmacDrbg.from_int(1), now=0.0)
    bob = sign_up(cloud, "bob", rng=HmacDrbg.from_int(2), now=0.0)
    return cloud, alice, bob


def test_bench_signup_flow(benchmark):
    """The one-time infrastructure requirement, end to end (Fig. 2a)."""
    cloud = CloudService(rng=HmacDrbg.from_int(99), now=0.0, key_bits=1024)
    counter = iter(range(10_000))

    def run_signup():
        return sign_up(
            cloud, f"user{next(counter)}", rng=HmacDrbg.from_int(next(counter)), now=0.0
        )

    result = benchmark.pedantic(run_signup, rounds=3, iterations=1)
    assert result.keystore.provisioned


def test_bench_keygen_1024(benchmark):
    counter = iter(range(10_000))
    benchmark.pedantic(
        lambda: generate_keypair(1024, rng=HmacDrbg.from_int(next(counter))),
        rounds=3,
        iterations=1,
    )


def test_bench_sign(benchmark, crypto_env):
    _, alice, _ = crypto_env
    private = alice.keystore.private_key
    signature = benchmark(private.sign, PAYLOAD)
    assert alice.certificate.public_key.verify(PAYLOAD, signature)


def test_bench_verify(benchmark, crypto_env):
    _, alice, _ = crypto_env
    signature = alice.keystore.private_key.sign(PAYLOAD)
    assert benchmark(alice.certificate.public_key.verify, PAYLOAD, signature)


def test_bench_hybrid_encrypt(benchmark, crypto_env):
    _, _, bob = crypto_env
    rng = HmacDrbg.from_int(5)
    envelope = benchmark(hybrid_encrypt, bob.certificate.public_key, PAYLOAD, rng)
    assert hybrid_decrypt(bob.keystore.private_key, envelope) == PAYLOAD


def test_bench_hybrid_decrypt(benchmark, crypto_env):
    _, _, bob = crypto_env
    envelope = hybrid_encrypt(bob.certificate.public_key, PAYLOAD, rng=HmacDrbg.from_int(6))
    assert benchmark(hybrid_decrypt, bob.keystore.private_key, envelope) == PAYLOAD


def test_bench_certificate_validation(benchmark, crypto_env):
    """Forwarded-certificate validation (Fig. 3b): what every receiving
    device pays per unknown originator."""
    cloud, alice, _ = crypto_env
    validator = CertificateValidator(root=cloud.root_certificate)
    result = benchmark(validator.validate, alice.certificate, 1.0)
    assert result.ok
