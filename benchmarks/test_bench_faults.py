"""Fault-injection degradation sweep (ISSUE 7).

Dissemination and delivery must degrade *gracefully and measurably* with
link-layer loss: sweeping ``frame_drop_prob`` over the mild preset, the
delivery ratio and transfer totals fall monotonically while the trace
accounts for every injected fault, and a fixed (seed, fault seed) pair
reproduces each point byte-for-byte.  The numbers behind the table in
EXPERIMENTS.md ("Degradation under injected faults") come from the same
sweep at days=3 / posts=80.

Run just this bench with::

    PYTHONPATH=src python -m pytest benchmarks -k faults -q
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.experiments import GainesvilleStudy, ScenarioConfig
from repro.metrics.report import format_table

SEED = 2029
FAULT_SEED = 7


def _run_point(drop_prob: float, days: int, posts: int):
    spec = "none" if drop_prob == 0.0 else f"mild,frame_drop_prob={drop_prob}"
    config = ScenarioConfig(
        duration_days=days, total_posts=posts, seed=SEED,
        faults=spec, fault_seed=FAULT_SEED,
    )
    result = GainesvilleStudy(config).run()
    ratio = result.delivery.overall_delivery_ratio() or 0.0
    return result, ratio


def _sweep(points, days: int, posts: int) -> List[Tuple]:
    rows = []
    for p in points:
        result, ratio = _run_point(p, days, posts)
        rows.append((
            p,
            result.disseminations,
            ratio,
            result.collector.fault_counts.get("frame_drop", 0),
            result.collector.cloud_counts.get("sync_retry", 0),
        ))
    return rows


def test_bench_delivery_degrades_monotonically_with_loss(bench_recorder):
    """The EXPERIMENTS.md sweep: delivery falls with frame loss, every
    drop is accounted for in the trace, and the faultless point matches
    the oracle's faultless run (no injector in the loop at all)."""
    rows = _sweep((0.0, 0.05, 0.15, 0.30, 0.50), days=3, posts=80)
    for p, disseminations, ratio, frames_dropped, retries in rows:
        bench_recorder.record(
            f"faults_degradation_drop{int(p * 100):02d}",
            {
                "disseminations": disseminations,
                "delivery_ratio": ratio,
                "frames_dropped": frames_dropped,
                "sync_retries": retries,
            },
            context={"days": 3, "posts": 80, "frame_drop_prob": p},
        )
    print()
    print(format_table(
        "delivery vs frame loss (3 days, 80 posts, mild base plan)",
        ("drop prob", "disseminations", "delivery ratio", "frames dropped", "retries"),
        [(f"{p:.2f}", d, f"{r:.3f}", f, s) for p, d, r, f, s in rows],
    ))
    disseminations = [d for _, d, _, _, _ in rows]
    ratios = [r for _, _, r, _, _ in rows]
    dropped = [f for _, _, _, f, _ in rows]
    # Strictly-ordered degradation across the sweep (the points are far
    # enough apart that sampling noise cannot reorder them).
    assert disseminations == sorted(disseminations, reverse=True)
    assert disseminations[-1] < disseminations[0] / 10
    assert ratios == sorted(ratios, reverse=True)
    # The faultless point injects nothing; every lossy point accounts
    # for its drops in the trace.
    assert dropped[0] == 0
    assert all(f > 0 for f in dropped[1:])
    assert dropped == sorted(dropped)


def test_bench_fault_runs_reproduce_byte_for_byte():
    """Same plan + same fault seed = identical run, different fault seed
    = different run (the determinism contract the chaos lane relies on)."""
    from tests.worldutil import trace_lines

    def lines(fault_seed):
        config = ScenarioConfig(
            duration_days=2, total_posts=40, seed=SEED,
            faults="harsh", fault_seed=fault_seed,
        )
        study = GainesvilleStudy(config)
        study.run()
        return trace_lines(study.sim)

    first = lines(99)
    assert first == lines(99)
    assert first != lines(100)


@pytest.mark.bench_smoke
def test_bench_smoke_degradation_miniature():
    """Tiny two-point sweep cheap enough for any CI lane: heavy loss
    must visibly hurt, and the lossy point must reproduce exactly."""
    rows = _sweep((0.0, 0.30), days=1, posts=30)
    (_, clean_d, clean_r, clean_f, _), (_, lossy_d, lossy_r, lossy_f, _) = rows
    assert clean_f == 0 and lossy_f > 0
    assert lossy_d < clean_d
    assert lossy_r < clean_r
    again, again_ratio = _run_point(0.30, days=1, posts=30)
    assert (again.disseminations, again_ratio) == (lossy_d, lossy_r)
