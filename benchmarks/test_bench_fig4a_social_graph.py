"""E1 / Fig. 4a — social relationship digraph statistics.

Regenerates every graph measure §VI-A reports and prints it next to the
published value.  The benchmark times the full metric computation over
the reconstructed graph.
"""

from repro.metrics.report import comparison_row, format_table
from repro.social import figure_4a_graph, metrics

PAPER = {
    "nodes": 10,
    "density_directed": 0.64,
    "avg_shortest_path": 1.3,
    "diameter": 2,
    "radius": 1,
    "transitivity": 0.80,
}


def compute_all_stats():
    graph = figure_4a_graph()
    return {
        "nodes": graph.node_count,
        "density_directed": metrics.density_directed(graph),
        "avg_shortest_path": metrics.average_shortest_path_length(graph),
        "diameter": metrics.diameter(graph),
        "radius": metrics.radius(graph),
        "transitivity": metrics.transitivity_undirected(graph),
        "center": metrics.center(graph),
        "reciprocity": metrics.reciprocity(graph),
    }


def test_bench_fig4a_social_graph(benchmark):
    stats = benchmark(compute_all_stats)
    rows = [comparison_row(k, float(v), float(stats[k])) for k, v in PAPER.items()]
    rows.append(("center_nodes", "{6, 7}", str(set(stats["center"])), "-"))
    print()
    print(format_table("Fig. 4a — social relationship graph (paper vs reconstruction)",
                       ("metric", "paper", "measured", "delta"), rows))
    # Shape assertions: the reconstruction must match the paper exactly
    # at the published precision.
    assert round(stats["density_directed"], 2) == 0.64
    assert round(stats["avg_shortest_path"], 1) == 1.3
    assert stats["diameter"] == 2 and stats["radius"] == 1
    assert round(stats["transitivity"], 2) == 0.80
    assert stats["center"] == [6, 7]
