"""E11 (extension) — radio energy per routing protocol.

The paper motivates opportunistic communication as a *low-cost* smart-city
substrate (§I); on battery-powered nodes the cost is Joules.  This bench
meters radio energy (scan + links + transfer bytes) for interest-based vs
epidemic routing on the identical deployment.

Expected shape: scan energy dominates and is protocol-independent (the
radio is lit whenever the app is foregrounded); epidemic pays more link
and transfer energy than IB because it moves content nobody asked for.
"""

from dataclasses import replace

import pytest

from repro.experiments import GainesvilleStudy, ScenarioConfig
from repro.metrics.report import format_table
from repro.net.energy import EnergyMeter

BASE = ScenarioConfig(seed=2017, duration_days=2, total_posts=74)


def run_with_meter(protocol: str):
    study = GainesvilleStudy(replace(BASE, routing_protocol=protocol))
    study.build()
    meter = EnergyMeter(study.sim, study.medium)
    study.sim.add_step_hook(lambda now: meter.sample_power_states())
    result = study.run()
    meter.charge_transfers_from_stats(
        {
            device.device_id: study.apps[node].sos.adhoc.stats["bytes_sent"]
            for node, device in study.devices.items()
        }
    )
    meter.finalise()
    return study, result, meter


@pytest.fixture(scope="module")
def metered_runs():
    return {protocol: run_with_meter(protocol) for protocol in ("interest", "epidemic")}


def test_bench_energy_accounting(benchmark, metered_runs):
    # Time the metering pipeline itself on a fresh tiny run.
    def metered_tiny():
        return run_with_meter("interest")

    benchmark.pedantic(metered_tiny, rounds=1, iterations=1)

    rows = []
    for protocol, (study, result, meter) in metered_runs.items():
        scan = sum(b.scan_j for b in meter.per_device().values())
        link = sum(b.link_j for b in meter.per_device().values())
        transfer = sum(b.transfer_j for b in meter.per_device().values())
        rows.append(
            (
                protocol,
                f"{scan:.0f}",
                f"{link:.0f}",
                f"{transfer:.2f}",
                f"{meter.total_joules():.0f}",
                result.disseminations,
            )
        )
    print()
    print(format_table(
        "Radio energy by protocol (2-day deployment, Joules)",
        ("protocol", "scan J", "link J", "transfer J", "total J", "transfers"),
        rows,
    ))

    interest_meter = metered_runs["interest"][2]
    epidemic_meter = metered_runs["epidemic"][2]
    interest_result = metered_runs["interest"][1]
    epidemic_result = metered_runs["epidemic"][1]
    # Scan energy is duty-cycle-driven, so protocol-independent (~equal).
    interest_scan = sum(b.scan_j for b in interest_meter.per_device().values())
    epidemic_scan = sum(b.scan_j for b in epidemic_meter.per_device().values())
    assert interest_scan == pytest.approx(epidemic_scan, rel=0.05)
    # Epidemic moves at least as many bytes -> at least as much transfer J.
    interest_tx = sum(b.transfer_j for b in interest_meter.per_device().values())
    epidemic_tx = sum(b.transfer_j for b in epidemic_meter.per_device().values())
    if epidemic_result.disseminations > interest_result.disseminations:
        assert epidemic_tx > interest_tx
