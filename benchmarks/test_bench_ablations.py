"""E10 (extension) — ablations of the design choices DESIGN.md calls out.

Three switches, same deployment, measured consequences:

* **end-to-end encryption off** (§III-A security preference): how many
  bytes and how much compute the §IV pipeline actually costs,
* **origin-preference grace off** (Fig. 2b author-pull): what keeps the
  1-hop share high,
* **duty cycle off** (always-foreground radios): how much iOS's background
  restrictions suppressed dissemination in vivo.
"""

from dataclasses import replace

import pytest

from repro.experiments import GainesvilleStudy, ScenarioConfig
from repro.metrics.report import format_table

BASE = ScenarioConfig(seed=2017, duration_days=2, total_posts=74)


@pytest.fixture(scope="module")
def baseline():
    return GainesvilleStudy(BASE).run()


def _row(label, result):
    return (
        label,
        result.disseminations,
        "-" if result.one_hop_fraction is None else f"{result.one_hop_fraction:.3f}",
        "-" if result.delivery.overall_delivery_ratio() is None
        else f"{result.delivery.overall_delivery_ratio():.3f}",
        f"{result.security_stats.get('bytes_sent', 0):,}",
    )


HEADER = ("variant", "transfers", "1-hop frac", "delivery", "bytes sent")


def test_bench_ablation_encryption(benchmark, baseline):
    config = replace(BASE, require_encryption=False)
    plaintext = benchmark.pedantic(
        lambda: GainesvilleStudy(config).run(), rounds=1, iterations=1
    )
    print()
    print(format_table("Ablation: end-to-end encryption", HEADER,
                       [_row("encrypted (paper)", baseline),
                        _row("plaintext", plaintext)]))
    # Encryption costs bytes (envelope + signature overhead) but must not
    # change *what* gets delivered.
    assert plaintext.disseminations > 0
    enc_bytes = baseline.security_stats["bytes_sent"]
    plain_bytes = plaintext.security_stats["bytes_sent"]
    if plaintext.disseminations == baseline.disseminations:
        assert enc_bytes > plain_bytes


def test_bench_ablation_origin_preference(benchmark, baseline):
    config = replace(BASE, relay_request_grace=0.0)
    eager = benchmark.pedantic(
        lambda: GainesvilleStudy(config).run(), rounds=1, iterations=1
    )
    print()
    print(format_table("Ablation: origin-preference grace", HEADER,
                       [_row("grace 2100s (paper-calibrated)", baseline),
                        _row("grace 0 (race relays)", eager)]))
    # Without origin preference, relays win races: more transfers, lower
    # 1-hop share.
    assert (eager.one_hop_fraction or 0) <= (baseline.one_hop_fraction or 0) + 0.05
    assert eager.disseminations >= baseline.disseminations


def test_bench_ablation_duty_cycle(benchmark, baseline):
    config = replace(BASE, duty_cycle=False)
    always_on = benchmark.pedantic(
        lambda: GainesvilleStudy(config).run(), rounds=1, iterations=1
    )
    print()
    print(format_table("Ablation: app duty cycle (iOS foreground limits)", HEADER,
                       [_row("duty-cycled (in vivo)", baseline),
                        _row("always-on radios", always_on)]))
    # Always-on radios can only increase contact opportunities.
    assert always_on.disseminations >= baseline.disseminations
    assert (always_on.delivery.overall_delivery_ratio() or 0) >= (
        baseline.delivery.overall_delivery_ratio() or 0
    ) - 0.05
