"""E9 (extension) — the higher-density investigation §VI-B calls for.

"The results at such a low density provide promising insight into delay
tolerant social networks and suggest further investigations at higher
densities are needed."  This bench performs that investigation: population
grows at fixed area, everything else identical.

Expected shape: contacts and transfers grow superlinearly with density,
delivery ratio rises, median delay falls — the density regime is the
bottleneck of the original deployment, as the authors suspected.
"""

import pytest

from repro.experiments import DensitySweep, ScenarioConfig

POPULATIONS = (6, 10, 16)


@pytest.fixture(scope="module")
def sweep():
    runner = DensitySweep(
        base_config=ScenarioConfig(seed=2017, duration_days=2, total_posts=74),
        populations=POPULATIONS,
    )
    runner.run()
    return runner


def test_bench_density_sweep(benchmark, sweep):
    from repro.experiments import GainesvilleStudy

    # Time one density point end to end.
    config = ScenarioConfig(seed=2017, duration_days=1, total_posts=20, num_users=6)
    benchmark.pedantic(lambda: GainesvilleStudy(config).run(), rounds=1, iterations=1)

    print()
    print(sweep.report())

    by_pop = {p.num_users: p for p in sweep.points}
    # Shape: denser -> more contacts and at least as many transfers.
    assert by_pop[16].contacts > by_pop[6].contacts
    assert by_pop[16].disseminations >= by_pop[6].disseminations
