"""E8 / ablation — routing schemes compared on the same deployment.

The SOS middleware exists so schemes can be compared in identical
conditions (§I, §III-B); this bench runs the reconstructed deployment
once per protocol (same seed, same mobility, same posting schedule) and
prints the delivery / delay / overhead trade-off table.

A reduced 3-day scenario keeps the full six-protocol sweep tractable in a
benchmark session; the orderings it demonstrates (epidemic >= interest >=
direct on transfers; direct is 1-hop-only) are scale-independent.
"""

import pytest

from repro.experiments import ProtocolComparison, ScenarioConfig

PROTOCOLS = ("interest", "epidemic", "direct", "first_contact", "spray_wait", "prophet")


@pytest.fixture(scope="module")
def comparison():
    config = ScenarioConfig(seed=2017, duration_days=3, total_posts=110)
    runner = ProtocolComparison(base_config=config, protocols=PROTOCOLS)
    runner.run()
    return runner


def test_bench_routing_comparison(benchmark, comparison):
    # Time one additional single-protocol study; the sweep itself is
    # computed once in the fixture.
    from repro.experiments import GainesvilleStudy

    config = ScenarioConfig(seed=2017, duration_days=1, total_posts=30)
    benchmark.pedantic(lambda: GainesvilleStudy(config).run(), rounds=1, iterations=1)

    print()
    print(comparison.report())

    outcome = comparison.outcomes
    # Who wins, by construction and in the paper's framing:
    # epidemic replicates the most, direct the least.
    assert outcome["epidemic"].disseminations >= outcome["interest"].disseminations
    assert outcome["direct"].disseminations <= outcome["interest"].disseminations
    if outcome["direct"].one_hop_fraction is not None:
        assert outcome["direct"].one_hop_fraction == 1.0
    # Interest-based must actually deliver in its home turf.
    assert (outcome["interest"].delivery_ratio or 0) > 0.2
