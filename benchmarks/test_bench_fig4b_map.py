"""E2 / Fig. 4b — the message generation / dissemination map.

The paper's Fig. 4b is a map of Gainesville with blue (message creation)
and red (message dissemination) markers over the ~11 km x 8 km study
area.  We regenerate it as an ASCII overlay plus the quantities a text
harness can assert on: coverage areas, centroids and hot cells.
"""

from repro.metrics.report import format_table


def test_bench_fig4b_map(benchmark, study_result):
    overlay = study_result.overlay

    def compute_stats():
        return {
            "created_events": len(overlay.points("created")),
            "disseminated_events": len(overlay.points("disseminated")),
            "created_coverage_km2": overlay.coverage_km2("created"),
            "disseminated_coverage_km2": overlay.coverage_km2("disseminated"),
            "created_centroid": overlay.centroid("created"),
            "disseminated_centroid": overlay.centroid("disseminated"),
        }

    stats = benchmark(compute_stats)

    print()
    print("Fig. 4b — ASCII map overlay (b=creation, r=dissemination, x=both)")
    print(overlay.ascii_map())
    print()
    rows = [
        ("creation events (blue)", stats["created_events"]),
        ("dissemination events (red)", stats["disseminated_events"]),
        ("creation coverage", f"{stats['created_coverage_km2']:.1f} km^2"),
        ("dissemination coverage", f"{stats['disseminated_coverage_km2']:.1f} km^2"),
        ("study area", f"{overlay.region.area_km2:.0f} km^2 (paper: 88 km^2)"),
        ("creation centroid", str(stats["created_centroid"])),
        ("dissemination centroid", str(stats["disseminated_centroid"])),
    ]
    print(format_table("Fig. 4b — spatial statistics", ("quantity", "value"), rows))

    # Shape assertions: creation happens all over town (homes), while
    # dissemination requires co-location, concentrating around venues.
    assert stats["created_events"] == study_result.unique_messages
    assert stats["disseminated_events"] == study_result.disseminations
    assert stats["created_coverage_km2"] > 0
    assert stats["disseminated_coverage_km2"] > 0
    assert overlay.region.area_km2 == 88.0
