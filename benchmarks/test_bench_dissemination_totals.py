"""E5 / §VI-B text — dissemination totals.

Regenerates the headline deployment numbers: 259 unique messages, 967
user-to-user disseminations, 46 subscriptions, 0.826 of deliveries via
1-hop, 0.174 via 2+ hops.  The benchmark times the trace-to-records
extraction (the post-processing step of the real deployment's logs).
"""

from repro.metrics.collector import TraceCollector
from repro.metrics.report import comparison_row, format_table

PAPER = {
    "unique_messages": 259,
    "disseminations": 967,
    "subscriptions": 46,
    "one_hop_fraction": 0.826,
    "multi_hop_fraction": 0.174,
}


def test_bench_dissemination_totals(benchmark, study, study_result):
    # Time re-extracting the records from the raw study trace.
    benchmark(TraceCollector, study.sim.trace)

    one_hop = study_result.one_hop_fraction or 0.0
    measured = {
        "unique_messages": study_result.unique_messages,
        "disseminations": study_result.disseminations,
        "subscriptions": len(study_result.evaluated_subscriptions),
        "one_hop_fraction": one_hop,
        "multi_hop_fraction": 1.0 - one_hop,
    }
    print()
    print(format_table(
        "§VI-B — dissemination totals (paper vs reconstruction)",
        ("metric", "paper", "measured", "delta"),
        [comparison_row(k, float(v), float(measured[k])) for k, v in PAPER.items()],
    ))

    # Shape assertions.
    assert measured["unique_messages"] == 259
    assert measured["subscriptions"] == 46
    assert 0.6 * 967 <= measured["disseminations"] <= 1.4 * 967
    assert measured["one_hop_fraction"] > 0.5  # 1-hop dominates, as in vivo
