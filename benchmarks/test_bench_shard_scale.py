"""Sharded contact engine — equivalence and tick-throughput contracts.

The sharded engine's whole claim is "free parallelism": for any shard
count the trace stream is byte-identical to the batched engine's, while
the parent's serialised tick section (the part that governs multi-core
scaling) shrinks because mobility integration and the pair sweep run in
the worker processes.  This bench enforces both halves:

* **equivalence** — live: the default 10-user field-study
  reconstruction replays byte-identically at shards in {1, 2, 4}; and
  from the committed artifacts: every ``shard_equiv_n500_*`` point of
  ``BENCH_shard_scale.json`` (a secured 500-user world at shards
  0/1/2/4) carries one and the same trace sha256, as do the N=10k
  throughput points, as do ``smoke_default`` vs ``smoke_sharded`` in
  ``BENCH_default.json``.
* **throughput** — the committed ``BENCH_shard_scale.json`` must show
  >= 1.5x ``device_ticks_per_cpu_s`` for 4 shards over batched at
  N=10k (measured ~2.4x).  The artifact bar is deliberately the
  committed one: on a 1-core CI host a live 10k-device point costs
  minutes and a live small-N ratio is dominated by the shared link-diff
  cost, so the live test below records the small-N ratio for trending
  and asserts only the direction.

Run just this bench (tiny smoke sizes included) with::

    PYTHONPATH=src python -m pytest benchmarks -k shard_scale -q
"""

from __future__ import annotations

import gc
import random
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.bench.schema import BenchSchemaError, load_artifact
from repro.bench.traceid import trace_sha256
from repro.experiments import GainesvilleStudy, ScenarioConfig
from repro.geo.region import Region
from repro.metrics.report import format_table
from repro.mobility.base import StationaryModel
from repro.mobility.random_waypoint import RandomWaypoint
from repro.net.device import Device
from repro.net.medium import Medium
from repro.net.radio import BLUETOOTH, DEFAULT_RADIO_SET
from repro.sim.engine import Simulator

REPO_ROOT = Path(__file__).resolve().parent.parent

TICK_S = 300.0
#: Square metres per device — matches the suite's N=10k points
#: (10 km x 10 km for 10k devices), so the small live world below sits
#: in the same density regime as the committed throughput artifact.
AREA_PER_DEVICE_M2 = 10_000.0


def _load_committed(name: str):
    path = REPO_ROOT / name
    if not path.exists():
        pytest.skip(f"committed artifact {name} not present in this checkout")
    try:
        return load_artifact(path)
    except BenchSchemaError as exc:
        pytest.fail(f"committed artifact {name} is invalid: {exc}")


def _runs_by_name(artifact) -> Dict[str, dict]:
    return {run["name"]: run for run in artifact["runs"]}


def _build_world(n: int, shards: int, seed: int = 9) -> Tuple[Simulator, Medium]:
    """A sparse mixed world: 10% stationary, walking-speed pedestrians,
    two radio sets, at the suite's N=10k density."""
    sim = Simulator(seed=seed)
    medium = Medium(sim, tick_interval=TICK_S, shards=shards)
    side = (n * AREA_PER_DEVICE_M2) ** 0.5
    region = Region(0.0, 0.0, side, side)
    for i in range(n):
        rng = random.Random(seed * 100_003 + i)
        if i % 10 == 0:
            mobility = StationaryModel(region.random_point(rng))
        else:
            mobility = RandomWaypoint(
                region, rng, speed_range=(0.5, 1.8), pause_range=(0.0, 600.0)
            )
        radios = (DEFAULT_RADIO_SET, (BLUETOOTH,))[i % 2]
        medium.add_device(Device(f"dev-{i:04d}", mobility, radios=radios))
    return sim, medium


def _run_world(n: int, shards: int, ticks: int, seed: int = 9):
    sim, medium = _build_world(n, shards, seed=seed)
    medium.start()
    sim.run(until=ticks * TICK_S)
    medium.stop()
    return sim, medium


def _best_tick_cpu(n: int, shards: int, ticks: int, repeats: int) -> float:
    """Best-of-``repeats`` parent-process CPU inside Medium.tick, GC
    paused — the serialised-section cost the shard design shrinks."""
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        return min(
            _run_world(n, shards, ticks)[1].tick_cpu_s for _ in range(repeats)
        )
    finally:
        if enabled:
            gc.enable()


def _trace_lines(sim: Simulator) -> List[str]:
    """Canonical byte representation of the full trace stream."""
    return [
        f"{event.time!r}|{event.category}|{event.kind}|{sorted(event.data.items())!r}"
        for event in sim.trace
    ]


def test_bench_shard_scale_artifact_contracts():
    """The committed shard_scale artifact must carry the equivalence and
    throughput guarantees the suite exists to record."""
    artifact = _load_committed("BENCH_shard_scale.json")
    runs = _runs_by_name(artifact)

    equiv_names = [f"shard_equiv_n500_{v}" for v in ("batched", "shards1", "shards2", "shards4")]
    equiv_shas = {name: runs[name]["trace_sha256"] for name in equiv_names}
    assert len(set(equiv_shas.values())) == 1, (
        "secured N=500 world diverged across shard counts: " f"{equiv_shas}"
    )

    scale_names = [f"shard_n10k_{v}" for v in ("batched", "shards2", "shards4")]
    scale_shas = {name: runs[name]["trace_sha256"] for name in scale_names}
    assert len(set(scale_shas.values())) == 1, (
        "sparse N=10k world diverged across shard counts: " f"{scale_shas}"
    )

    batched = runs["shard_n10k_batched"]["metrics"]["device_ticks_per_cpu_s"]
    sharded = runs["shard_n10k_shards4"]["metrics"]["device_ticks_per_cpu_s"]
    ratio = sharded / batched
    print(
        f"\ncommitted N=10k tick throughput: batched={batched:,.0f} "
        f"4-shard={sharded:,.0f} dev-ticks/cpu-s ({ratio:.2f}x)"
    )
    # The acceptance bar: the committed artifact shows >= 1.5x parent-CPU
    # tick throughput for 4 shards over batched at N=10k.
    assert ratio >= 1.5


def test_bench_shard_smoke_point_in_default_baseline():
    """The gate baseline's smoke_sharded point is smoke_default on the
    sharded engine — same scenario, same seed — so their trace digests
    must be equal inside the committed BENCH_default.json."""
    artifact = _load_committed("BENCH_default.json")
    runs = _runs_by_name(artifact)
    assert "smoke_sharded" in runs, "baseline predates the sharded smoke point"
    assert runs["smoke_sharded"]["trace_sha256"] == runs["smoke_default"]["trace_sha256"]
    assert runs["smoke_sharded"]["config"]["medium_shards"] == 2


def test_bench_shard_default_study_trace_identical(study):
    """The default 10-user field study replays byte-identically on the
    sharded engine at shards in {1, 2, 4} (live, forked pools)."""
    assert study.config.medium_shards == 0  # session fixture is batched
    expected = trace_sha256(study.sim)
    for shards in (1, 2, 4):
        replay = GainesvilleStudy(ScenarioConfig(medium_shards=shards))
        replay.run()
        assert replay.medium.engine.forked, "pool did not fork on this host"
        assert trace_sha256(replay.sim) == expected, (
            f"sharded study trace diverged from batched at shards={shards}"
        )


def test_bench_shard_throughput_live(bench_recorder):
    """Record the live small-N parent-CPU ratio (the big-N assertion
    lives on the committed artifact — see the module docstring) and
    assert the direction: sharding must not cost parent CPU."""
    n, ticks = 2000, 30
    _run_world(256, 0, 3)  # warm both code paths (incl. numpy sweep)
    _run_world(256, 4, 3)
    batched_s = _best_tick_cpu(n, 0, ticks, repeats=3)
    sharded_s = _best_tick_cpu(n, 4, ticks, repeats=3)
    ratio = batched_s / sharded_s
    if ratio <= 1.0:
        # One noisy sample set must not fail the suite: remeasure with
        # more repeats before judging.
        batched_s = _best_tick_cpu(n, 0, ticks, repeats=6)
        sharded_s = _best_tick_cpu(n, 4, ticks, repeats=6)
        ratio = batched_s / sharded_s
    device_ticks = n * (ticks + 1)  # start() performs the t=0 tick
    print()
    print(
        format_table(
            "Medium parent-CPU tick throughput (device-ticks/cpu-second)",
            ("devices", "batched", "4 shards", "ratio"),
            [
                (
                    n,
                    f"{device_ticks / batched_s:,.0f}",
                    f"{device_ticks / sharded_s:,.0f}",
                    f"{ratio:.2f}x",
                )
            ],
        )
    )
    bench_recorder.record(
        f"shard_parent_cpu_ratio_n{n}",
        {"ratio_x": ratio},
        context={"ticks": ticks, "shards": 4},
    )
    assert ratio > 1.0


@pytest.mark.bench_smoke
def test_bench_shard_scale_smoke():
    """Tiny-N rot guard: sharded-vs-batched byte equivalence with a real
    forked 2-worker pool, cheap enough for any CI lane
    (``pytest benchmarks -k shard_scale -m bench_smoke -q``)."""
    sim_batched, medium_batched = _run_world(48, 0, ticks=6)
    sim_sharded, medium_sharded = _run_world(48, 2, ticks=6)
    assert medium_sharded.tick_count == 7
    assert _trace_lines(sim_batched) == _trace_lines(sim_sharded)
    assert (
        medium_batched.contacts.total_contacts()
        == medium_sharded.contacts.total_contacts()
    )
