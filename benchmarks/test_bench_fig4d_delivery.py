"""E4 / Fig. 4d — per-subscription delivery-ratio CDF, "1-hop" vs "All".

Regenerates the delivery-ratio distribution over the study's 46 evaluated
subscriptions and prints the CDF series plus the point reads §VI-B quotes.
"""

from repro.metrics.delivery import DeliveryAnalysis
from repro.metrics.report import comparison_row, format_table

PAPER_POINTS = {
    "subs_above_0.80_all": 0.30,
    "subs_above_0.70_all": 0.50,
    "subs_at_least_0.80_one_hop": 0.25,
}


def test_bench_fig4d_delivery(benchmark, study_result):
    collector = study_result.collector
    subscriptions = study_result.evaluated_subscriptions
    window_end = study_result.config.duration_seconds

    analysis = benchmark(
        DeliveryAnalysis.from_collector, collector, subscriptions, window_end
    )

    print()
    grid = [i / 10 for i in range(11)]
    cdf_all = analysis.cdf_all()
    cdf_one = analysis.cdf_one_hop()
    rows = [(f"{x:.1f}", f"{cdf_all.at(x):.3f}", f"{cdf_one.at(x):.3f}") for x in grid]
    print(format_table("Fig. 4d — delivery-ratio CDF over subscriptions",
                       ("ratio", "F(all)", "F(1-hop)"), rows))
    print()
    measured = analysis.paper_points()
    print(format_table("Fig. 4d — paper point reads",
                       ("metric", "paper", "measured", "delta"),
                       [comparison_row(k, v, measured[k]) for k, v in PAPER_POINTS.items()]))

    assert cdf_all.n == len([r for r in analysis.ratios if r.messages_posted > 0])
    # Shape: a meaningful fraction of subscriptions above 0.7/0.8, more
    # for All than for 1-hop (relaying only ever helps).
    assert 0.1 <= measured["subs_above_0.80_all"] <= 0.6
    assert measured["subs_above_0.70_all"] >= measured["subs_above_0.80_all"]
    for ratio in analysis.ratios:
        if ratio.messages_posted:
            assert ratio.delivered_one_hop <= ratio.delivered_all
