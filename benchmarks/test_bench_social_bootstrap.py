"""E10 (extension) — bulk social-graph bootstrap.

PR 4 removed RSA keygen from large-N world builds; the next build
bottleneck (ROADMAP) is day-0 follow-graph *wiring*: ``AlleyOopApp.follow``
runs a full cloud sync round, an interest-set rebuild, a log append and a
trace emit **per edge**, and the dense ``hub_and_cluster`` generator makes
that O(N²) edges.  The bulk bootstrap (``AlleyOopApp.follow_many`` +
``CloudService.sync_batch`` + ``ScenarioConfig.bulk_bootstrap``) collapses
a user's whole day-0 follow list to one interest update, one compact
FOLLOW_MANY log record, one aggregated trace event and one cloud round.
This bench enforces the ISSUE-5 contracts:

* **wiring speed** — ≥ 10x faster day-0 wiring at N=2000 on the dense
  Fig. 4a-shaped graph (the regime the ROADMAP names: ~1.9M edges),
* **equivalence** — across wiring modes, byte-identical delivery/delay
  traces, identical subscription windows and identical recorded follow
  lists, for the default 10-user field study *and* a secured N=500 world
  on the new sparse ``powerlaw_cluster`` generator.

Run just this bench with::

    PYTHONPATH=src python -m pytest benchmarks -k social_bootstrap -q
"""

from __future__ import annotations

import gc
import time
from typing import List, Tuple

import pytest

from repro.experiments import GainesvilleStudy, ScenarioConfig
from repro.metrics.report import format_table

#: The wiring-speed regime (dense graph: ~1.9M directed edges).
SCALE_N = 2000
#: Build-only worlds never run packet crypto, so small keys are fine.
BUILD_BITS = 512
SEED = 2027


class _TimedWiring(GainesvilleStudy):
    """Records how long the day-0 follow wiring itself took."""

    wiring_seconds: float = 0.0

    def _wire_day0_follows(self) -> None:
        gc.collect()
        start = time.process_time()
        super()._wire_day0_follows()
        self.wiring_seconds = time.process_time() - start


def _build(num_users: int, bulk: bool, social_graph: str) -> _TimedWiring:
    config = ScenarioConfig(
        num_users=num_users,
        duration_days=1,
        total_posts=0,
        seed=SEED,
        key_bits=BUILD_BITS,
        provisioning="lazy",
        social_graph=social_graph,
        bulk_bootstrap=bulk,
    )
    study = _TimedWiring(config)
    study.build()
    return study


def test_bench_wiring_speedup_at_scale(bench_recorder):
    """The tentpole contract: ≥ 10x faster day-0 wiring at N=2000 on the
    dense generator, with one cloud round per *user* instead of per
    *edge*; the sparse families are reported alongside."""
    rows: List[Tuple] = []
    dense_speedup = None
    for kind in ("hub_and_cluster", "degree_bounded", "powerlaw_cluster"):
        bulk = _build(SCALE_N, True, kind)
        edge = _build(SCALE_N, False, kind)
        edges = bulk.social_graph.edge_count
        assert edge.social_graph.edge_count == edges
        followers = {a for a, _ in bulk.social_graph.edges()}
        # One round per user vs one per edge — the §V sync-cost contract.
        assert bulk.cloud.stats["syncs"] == len(followers)
        assert edge.cloud.stats["syncs"] == edges
        speedup = edge.wiring_seconds / bulk.wiring_seconds
        if kind == "hub_and_cluster":
            dense_speedup = speedup
        bench_recorder.record(
            f"bootstrap_wiring_speedup_{kind}",
            {"speedup_x": speedup, "edges": edges},
            context={"num_users": SCALE_N},
        )
        rows.append(
            (
                kind,
                edges,
                f"{edge.wiring_seconds:.2f}",
                f"{bulk.wiring_seconds:.3f}",
                f"{speedup:.1f}x",
            )
        )
        del bulk, edge
        gc.collect()
    print()
    print(
        format_table(
            f"Day-0 follow wiring, N={SCALE_N} (seconds, CPU)",
            ("social graph", "edges", "per-edge", "bulk", "speedup"),
            rows,
        )
    )
    assert dense_speedup >= 10.0


# -- equivalence oracle ----------------------------------------------------------
# The oracle helpers are shared with tests/test_experiments.py (same
# contract, smaller worlds there): see tests/worldutil.py.


def _assert_modes_equivalent(config_kwargs: dict) -> Tuple[int, int]:
    """Run both wiring modes and assert everything the analysis consumes
    is identical.  Returns (trace lines, deliveries) for sanity checks."""
    from tests.worldutil import followed_sequences, subscription_windows, trace_lines

    traces, windows, followed, ratios = {}, {}, {}, {}
    for bulk in (True, False):
        study = GainesvilleStudy(
            ScenarioConfig(bulk_bootstrap=bulk, **config_kwargs)
        )
        result = study.run()
        traces[bulk] = trace_lines(study.sim, exclude_category="social")
        windows[bulk] = subscription_windows(study.sim)
        followed[bulk] = followed_sequences(study.apps)
        ratios[bulk] = result.delivery.overall_delivery_ratio()
        del study, result
        gc.collect()
    assert traces[True] == traces[False]
    assert windows[True] and windows[True] == windows[False]
    assert followed[True] == followed[False]
    assert ratios[True] == ratios[False]
    received = sum(1 for line in traces[True] if "|message|received|" in line)
    return len(traces[True]), received


def test_bench_default_study_equivalence():
    """The acceptance bar, part 1: the default 10-user, 7-day field study
    produces byte-identical delivery/delay traces across wiring modes."""
    lines, received = _assert_modes_equivalent({})
    assert received > 0


def test_bench_secured_n500_equivalence():
    """The acceptance bar, part 2: a secured (session-crypto, lazy-keys)
    N=500 world on the sparse powerlaw_cluster generator — the scenario
    the bulk path exists for — is mode-invariant too."""
    lines, received = _assert_modes_equivalent(
        dict(
            num_users=500,
            duration_days=1,
            total_posts=40,
            seed=SEED,
            provisioning="lazy",
            social_graph="powerlaw_cluster",
        )
    )
    assert received > 0


@pytest.mark.bench_smoke
def test_bench_social_bootstrap_smoke():
    """Tiny rot guard for CI lanes: the wiring-speed contract at N=300
    (reduced bar) and cross-mode equivalence on a 16-user day."""
    bulk = _build(300, True, "hub_and_cluster")
    edge = _build(300, False, "hub_and_cluster")
    followers = {a for a, _ in bulk.social_graph.edges()}
    assert bulk.cloud.stats["syncs"] == len(followers)
    assert edge.cloud.stats["syncs"] == edge.social_graph.edge_count
    assert edge.wiring_seconds / bulk.wiring_seconds >= 3.0  # reduced bar
    del bulk, edge
    gc.collect()

    lines, received = _assert_modes_equivalent(
        dict(num_users=16, duration_days=1, total_posts=15, seed=41)
    )
    assert lines > 0
