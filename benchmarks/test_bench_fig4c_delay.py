"""E3 / Fig. 4c — message delay CDF, "1-hop" vs "All".

Regenerates the delay CDF series from the reconstructed deployment and
prints the same point reads §VI-B quotes.  The benchmark times the
delay analysis over the full study trace.
"""

from repro.metrics.delay import DelayAnalysis
from repro.metrics.report import comparison_row, format_table

PAPER_POINTS = {
    "all_within_24h": 0.43,
    "all_within_94h": 0.90,
    "one_hop_within_24h": 0.44,
    "one_hop_within_94h": 0.92,
}


def test_bench_fig4c_delay(benchmark, study_result):
    analysis = benchmark(DelayAnalysis.from_collector, study_result.collector)

    print()
    rows = [
        (f"{h:>5.0f}h", f"{fa:.3f}", f"{f1:.3f}")
        for h, fa, f1 in analysis.curve_hours()
    ]
    print(format_table("Fig. 4c — delay CDF series",
                       ("delay", "F(all)", "F(1-hop)"), rows))
    print()
    measured = analysis.paper_points()
    print(format_table("Fig. 4c — paper point reads",
                       ("metric", "paper", "measured", "delta"),
                       [comparison_row(k, v, measured[k]) for k, v in PAPER_POINTS.items()]))

    # Shape assertions (not absolute-value): a ~half/day knee, a ~4-day
    # 90 % knee, and 1-hop never slower than All at the day mark.
    assert 0.25 <= measured["all_within_24h"] <= 0.65
    assert measured["all_within_94h"] >= 0.85
    assert measured["one_hop_within_94h"] >= measured["all_within_94h"] - 0.05
    # The CDF must be increasing.
    curve = analysis.curve_hours()
    assert all(a[1] <= b[1] for a, b in zip(curve, curve[1:]))
