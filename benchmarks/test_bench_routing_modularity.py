"""E6 / §III-B — the routing modularity claim.

"Both the IB and Epidemic routing protocols are written in less than 100
lines of Swift code."  We regenerate the equivalent claim for the Python
reproduction (logical source lines of each protocol) and time the runtime
scheme toggle the demo exposes (§VII).
"""

import inspect

import repro.core.routing.bubble
import repro.core.routing.direct
import repro.core.routing.epidemic
import repro.core.routing.first_contact
import repro.core.routing.interest
import repro.core.routing.prophet
import repro.core.routing.spray_wait
from repro.core.routing import RoutingRegistry
from repro.metrics.report import format_table

_MODULES = {
    "epidemic": repro.core.routing.epidemic,
    "interest": repro.core.routing.interest,
    "direct": repro.core.routing.direct,
    "first_contact": repro.core.routing.first_contact,
    "spray_wait": repro.core.routing.spray_wait,
    "prophet": repro.core.routing.prophet,
    "bubble": repro.core.routing.bubble,
}


def logical_lines(module) -> int:
    """Non-blank, non-comment, non-docstring source lines."""
    source = inspect.getsource(module)
    import io
    import tokenize

    keep = set()
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for tok in tokens:
        if tok.type in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                        tokenize.INDENT, tokenize.DEDENT, tokenize.STRING,
                        tokenize.ENCODING, tokenize.ENDMARKER):
            # STRING at statement level is (approximately) a docstring;
            # this errs toward undercounting, matching the paper's spirit.
            continue
        keep.add(tok.start[0])
    return len(keep)


def test_bench_routing_modularity(benchmark):
    registry = RoutingRegistry.with_builtins()

    def toggle_all():
        return [registry.create(name) for name in registry.names()]

    protocols = benchmark(toggle_all)
    assert len(protocols) == len(_MODULES)

    rows = []
    for name, module in _MODULES.items():
        rows.append((name, logical_lines(module)))
    print()
    print(format_table(
        "§III-B — routing protocol size (logical lines; paper: <100 Swift lines)",
        ("protocol", "logical lines"), rows,
    ))
    # The paper's two protocols must stay compact in our reproduction too.
    assert logical_lines(_MODULES["epidemic"]) < 100
    assert logical_lines(_MODULES["interest"]) < 100
