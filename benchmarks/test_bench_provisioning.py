"""E9 (extension) — identity provisioning: keypair pool + lazy sign-up.

PR 1 batched contact detection and PR 2 amortised packet crypto; the
remaining secured-run bottleneck is world *construction*: the paper's
Fig. 2a sign-up generates one RSA key pair per user, so a 2000-user
secured density sweep pays minutes of keygen before the first simulated
second.  :mod:`repro.pki.provisioning` removes that cost (pooled keys
cached across sweeps; lazy keys only materialised on first secured use).
This bench enforces the ISSUE-4 contracts:

* **build speed** — ≥ 10x faster secured world build at N=500 for both
  pooled (warm cache) and lazy provisioning over the eager reference,
* **equivalence** — byte-identical delivery/delay traces for the default
  10-user Gainesville reconstruction across all three provisioning modes.

The N=500 world uses a sparse ring follow-graph so the measurement
isolates provisioning cost rather than follow-list wiring, and 512-bit
keys (the build never runs packet crypto, so the OAEP size floor does
not apply) to keep the eager leg affordable.

Run just this bench with::

    PYTHONPATH=src python -m pytest benchmarks -k provisioning -q
"""

from __future__ import annotations

import gc
import time
from typing import List, Tuple

import pytest

from repro.experiments import GainesvilleStudy, ScenarioConfig
from repro.metrics.report import format_table
from repro.pki.provisioning import KeypairPool
from repro.sim.engine import Simulator
from repro.social.digraph import SocialDigraph

#: The density regime the sweep bench targets (users in the study area).
SCALE_N = 500
#: Build-only worlds never wrap session masters, so small keys are fine.
BUILD_BITS = 512
SEED = 2026


class _SparseWorld(GainesvilleStudy):
    """The N=500 build-bench world: a ring follow-graph (one follow per
    user) so world build time is provisioning + mobility, not the O(N^2)
    follow wiring of the hub-and-cluster generator."""

    def _make_social_graph(self) -> SocialDigraph:
        n = self.config.num_users
        return SocialDigraph.from_edges(
            ((i, i % n + 1) for i in range(1, n + 1)), nodes=range(1, n + 1)
        )


def _build_config(provisioning: str, cache_dir: str) -> ScenarioConfig:
    return ScenarioConfig(
        num_users=SCALE_N,
        duration_days=1,
        total_posts=0,
        seed=SEED,
        key_bits=BUILD_BITS,
        provisioning=provisioning,
        key_cache_dir=cache_dir,
    )


def _timed_build(config: ScenarioConfig) -> Tuple[GainesvilleStudy, float]:
    gc.collect()
    study = _SparseWorld(config)
    start = time.process_time()
    study.build()
    return study, time.process_time() - start


def test_bench_world_build_speedup(tmp_path, bench_recorder):
    """The tentpole contract: ≥ 10x faster secured world build at N=500
    under pooled (warm cache) and lazy provisioning."""
    cache = str(tmp_path / "keys")
    eager_study, eager_s = _timed_build(_build_config("eager", cache))
    assert all(
        app.sos.adhoc.keystore.materialized for app in eager_study.apps.values()
    )

    # One-time pool warm-up: this is the cost repeated sweeps amortise
    # away (reported, not asserted — it is ordinary eager-rate keygen).
    # Wall clock, not CPU time: the generation runs in forked workers.
    warm_start = time.perf_counter()
    warmed = KeypairPool(cache).prefetch(BUILD_BITS, SEED, range(SCALE_N), workers=2)
    warm_s = time.perf_counter() - warm_start
    assert warmed == SCALE_N

    pooled_study, pooled_s = _timed_build(_build_config("pooled", cache))
    assert pooled_study.keypair_pool.stats["generated"] == 0
    assert pooled_study.keypair_pool.stats["disk_hits"] == SCALE_N

    lazy_study, lazy_s = _timed_build(_build_config("lazy", cache))
    assert not any(
        app.sos.adhoc.keystore.materialized for app in lazy_study.apps.values()
    )

    print()
    print(
        format_table(
            f"Secured world build, N={SCALE_N} ({BUILD_BITS}-bit keys, seconds)",
            ("provisioning", "build", "speedup"),
            [
                ("eager (reference)", f"{eager_s:.2f}", ""),
                ("pool warm-up (once)", f"{warm_s:.2f}", ""),
                ("pooled (warm cache)", f"{pooled_s:.2f}", f"{eager_s / pooled_s:.1f}x"),
                ("lazy", f"{lazy_s:.2f}", f"{eager_s / lazy_s:.1f}x"),
            ],
        )
    )
    bench_recorder.record(
        "provisioning_build_speedup",
        {
            "pooled_speedup_x": eager_s / pooled_s,
            "lazy_speedup_x": eager_s / lazy_s,
            "eager_cpu_s": eager_s,
            "pool_warmup_wall_s": warm_s,
        },
        context={"num_users": SCALE_N, "key_bits": BUILD_BITS},
    )
    assert eager_s / pooled_s >= 10.0
    assert eager_s / lazy_s >= 10.0


def _trace_lines(sim: Simulator) -> List[str]:
    return [
        f"{event.time!r}|{event.category}|{event.kind}|{sorted(event.data.items())!r}"
        for event in sim.trace
    ]


def test_bench_default_study_equivalence_across_modes(tmp_path):
    """The acceptance bar: the default 10-user field study produces
    byte-identical delivery/delay traces under all three provisioning
    modes (eager is the oracle)."""
    traces = {}
    deliveries = {}
    for mode in ("eager", "pooled", "lazy"):
        study = GainesvilleStudy(
            ScenarioConfig(provisioning=mode, key_cache_dir=str(tmp_path / "keys"))
        )
        result = study.run()
        traces[mode] = _trace_lines(study.sim)
        deliveries[mode] = result.delivery.overall_delivery_ratio()
    assert any("|message|received|" in line for line in traces["eager"])
    assert traces["pooled"] == traces["eager"]
    assert traces["lazy"] == traces["eager"]
    assert deliveries["pooled"] == deliveries["eager"]
    assert deliveries["lazy"] == deliveries["eager"]


@pytest.mark.bench_smoke
def test_bench_provisioning_smoke(tmp_path):
    """Tiny rot guard for CI lanes: the build-speed contract at N=24
    (reduced bar) and cross-mode trace equivalence on a 4-user day."""
    cache = str(tmp_path / "keys")
    small = dict(num_users=24, duration_days=1, total_posts=0, seed=SEED,
                 key_bits=BUILD_BITS, key_cache_dir=cache)
    _, eager_s = _timed_build(ScenarioConfig(provisioning="eager", **small))
    lazy_study, lazy_s = _timed_build(ScenarioConfig(provisioning="lazy", **small))
    assert not any(
        app.sos.adhoc.keystore.materialized for app in lazy_study.apps.values()
    )
    assert eager_s / lazy_s >= 3.0  # reduced bar at smoke sizes

    config = dict(num_users=4, duration_days=1, total_posts=20, seed=77,
                  key_cache_dir=cache)
    traces = {}
    for mode in ("eager", "pooled", "lazy"):
        study = GainesvilleStudy(ScenarioConfig(provisioning=mode, **config))
        study.run()
        traces[mode] = _trace_lines(study.sim)
    assert traces["pooled"] == traces["eager"]
    assert traces["lazy"] == traces["eager"]
