"""E10 (extension) — contact-detection throughput at density-sweep scale.

The ROADMAP's north star is density sweeps with thousands of devices;
``Medium.tick`` is the hottest loop of every such run.  This bench pits
the batched engine (one mobility pass, one spatial pair sweep, cached
radio resolution, per-pair next-check scheduling) against the per-device
reference path — the seed algorithm — on a mixed-radio walking-speed
world, and enforces two contracts:

* **throughput** — >= 3x device-ticks/second over the reference at
  N=2000 (reported for N in {100, 500, 2000}),
* **equivalence** — byte-identical traces between the two engines, both
  for the synthetic scale world and for the default 10-user field-study
  reconstruction at its fixed seed.

Run just this bench (tiny smoke sizes included) with::

    PYTHONPATH=src python -m pytest benchmarks -k medium_scale -q
"""

from __future__ import annotations

import gc
import random
import time
from typing import List, Tuple

import pytest

from repro.experiments import GainesvilleStudy, ScenarioConfig
from repro.geo.region import Region
from repro.metrics.report import format_table
from repro.mobility.base import StationaryModel
from repro.mobility.random_waypoint import RandomWaypoint
from repro.net.device import Device
from repro.net.medium import Medium
from repro.net.radio import BLUETOOTH, DEFAULT_RADIO_SET, INFRA_WIFI, P2P_WIFI
from repro.sim.engine import Simulator

TICK_S = 30.0
#: Square metres per device — roughly 100 users/km^2, the "higher
#: density" regime the paper's §VI-B calls for investigating.
AREA_PER_DEVICE_M2 = 10_000.0


def _build_world(n: int, batched: bool, seed: int = 9) -> Tuple[Simulator, Medium]:
    """A mixed world: 10% stationary infrastructure, walking-speed
    pedestrians, three distinct radio sets (exercising asymmetric-radio
    pairs and the per-pair scheduling path)."""
    sim = Simulator(seed=seed)
    medium = Medium(sim, tick_interval=TICK_S, batched=batched)
    side = (n * AREA_PER_DEVICE_M2) ** 0.5
    region = Region(0.0, 0.0, side, side)
    for i in range(n):
        rng = random.Random(seed * 100_003 + i)
        if i % 10 == 0:
            mobility = StationaryModel(region.random_point(rng))
            radios = (INFRA_WIFI, P2P_WIFI, BLUETOOTH)
        else:
            mobility = RandomWaypoint(
                region, rng, speed_range=(0.5, 1.8), pause_range=(0.0, 600.0)
            )
            radios = (DEFAULT_RADIO_SET, (BLUETOOTH,), DEFAULT_RADIO_SET)[i % 3]
        medium.add_device(Device(f"dev-{i:04d}", mobility, radios=radios))
    return sim, medium


def _run_world(n: int, batched: bool, ticks: int, seed: int = 9):
    sim, medium = _build_world(n, batched, seed=seed)
    start = time.process_time()
    medium.start()
    sim.run(until=ticks * TICK_S)
    elapsed = time.process_time() - start
    return sim, medium, elapsed


def _best_elapsed(n: int, batched: bool, ticks: int, repeats: int) -> float:
    """Best-of-``repeats`` CPU time, GC paused.

    The throughput ratio is asserted on, so the measurement must survive
    noisy shared runners and whatever heap pressure earlier benchmark
    fixtures left behind: CPU time ignores scheduler preemption, a
    paused collector ignores other tests' garbage, best-of-N ignores
    one-off stalls."""
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        return min(_run_world(n, batched, ticks)[2] for _ in range(repeats))
    finally:
        if enabled:
            gc.enable()


def _trace_lines(sim: Simulator) -> List[str]:
    """Canonical byte representation of the full trace stream."""
    return [
        f"{event.time!r}|{event.category}|{event.kind}|{sorted(event.data.items())!r}"
        for event in sim.trace
    ]


def test_bench_medium_scale_throughput(bench_recorder):
    ticks = 20
    rows = []
    speedup_at = {}
    _run_world(256, True, 3)  # warm both code paths (incl. numpy sweep)
    _run_world(256, False, 3)
    for n, repeats in ((100, 3), (500, 3), (2000, 3)):
        batched_s = _best_elapsed(n, True, ticks, repeats)
        reference_s = _best_elapsed(n, False, ticks, repeats)
        device_ticks = n * (ticks + 1)  # start() performs the t=0 tick
        speedup_at[n] = reference_s / batched_s
        rows.append(
            (
                n,
                f"{device_ticks / batched_s:,.0f}",
                f"{device_ticks / reference_s:,.0f}",
                f"{speedup_at[n]:.2f}x",
            )
        )
    if speedup_at[2000] < 3.0:
        # One noisy sample set must not fail the suite: remeasure the
        # asserted size with more repeats before judging.
        batched_s = _best_elapsed(2000, True, ticks, repeats=6)
        reference_s = _best_elapsed(2000, False, ticks, repeats=6)
        speedup_at[2000] = reference_s / batched_s
        rows[-1] = (
            2000,
            f"{2000 * (ticks + 1) / batched_s:,.0f}",
            f"{2000 * (ticks + 1) / reference_s:,.0f}",
            f"{speedup_at[2000]:.2f}x (remeasured)",
        )
    print()
    print(
        format_table(
            "Medium tick throughput (device-ticks/second)",
            ("devices", "batched", "per-device", "speedup"),
            rows,
        )
    )
    for n, speedup in sorted(speedup_at.items()):
        bench_recorder.record(
            f"medium_speedup_n{n}", {"speedup_x": speedup}, context={"ticks": ticks}
        )
    # The acceptance bar: >= 3x at N=2000 (measured ~3.5-4x).
    assert speedup_at[2000] >= 3.0


@pytest.mark.parametrize("n,ticks", [(400, 40)])
def test_bench_medium_scale_equivalence(n, ticks):
    """Both engines must produce byte-identical traces on the scale world."""
    sim_batched, medium_batched, _ = _run_world(n, True, ticks)
    sim_reference, medium_reference, _ = _run_world(n, False, ticks)
    assert _trace_lines(sim_batched) == _trace_lines(sim_reference)
    assert (
        medium_batched.contacts.total_contacts()
        == medium_reference.contacts.total_contacts()
    )
    # The scheduling path actually exercised something.
    assert medium_batched.pair_checks_skipped > 0


@pytest.mark.bench_smoke
def test_bench_medium_scale_smoke():
    """Tiny-N rot guard: cheap enough for any CI lane
    (``pytest benchmarks -k medium_scale -q``)."""
    sim_batched, medium_batched, _ = _run_world(48, True, ticks=6)
    sim_reference, _, _ = _run_world(48, False, ticks=6)
    assert medium_batched.tick_count == 7
    assert _trace_lines(sim_batched) == _trace_lines(sim_reference)


def test_bench_medium_default_study_trace_identical(study, study_result):
    """The default 10-user field study must replay byte-identically under
    the per-device reference engine (fixed seed, default tick interval)."""
    assert study.config.medium_batched  # session fixture runs the new engine
    reference = GainesvilleStudy(ScenarioConfig(medium_batched=False))
    reference.run()
    batched_lines = _trace_lines(study.sim)
    reference_lines = _trace_lines(reference.sim)
    assert batched_lines == reference_lines
    contact_lines = [line for line in batched_lines if "|contact|" in line]
    assert contact_lines  # the comparison actually covered contacts
