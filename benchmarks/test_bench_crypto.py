"""E8 (extension) — per-link session crypto vs. per-packet hybrid RSA.

PR 1 made contact detection cheap; the per-packet security pipeline
(§III-D) then dominated every secured run: a full hybrid-RSA envelope
plus an RSA signature/verify **per packet**.  The session layer
(:mod:`repro.crypto.session`) pays RSA once per link direction and
protects packets with ChaCha20+HMAC under hkdf-derived keys.  This bench
enforces the ISSUE-2 contracts:

* **throughput** — >= 5x secured-packet rounds/second (sender encrypt +
  receiver decrypt/authenticate) over the legacy path,
* **equivalence** — byte-identical delivery/delay traces between the two
  crypto modes on the default 10-user Gainesville reconstruction, plus an
  end-to-end wall-clock speedup of the same study.

Run just this bench (tiny smoke sizes included) with::

    PYTHONPATH=src python -m pytest benchmarks -k crypto -q
"""

from __future__ import annotations

import gc
import time
from typing import Callable, List, Tuple

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair, hybrid_decrypt, hybrid_encrypt
from repro.crypto.session import SecureChannel
from repro.experiments import GainesvilleStudy, ScenarioConfig
from repro.metrics.report import format_table
from repro.sim.engine import Simulator

PAYLOAD = b"x" * 700  # a typical DATA packet: body + author cert + signature


def _keys():
    """Deterministic 1024-bit endpoints (the simulation key size)."""
    alice = generate_keypair(1024, rng=HmacDrbg.from_int(41))
    bob = generate_keypair(1024, rng=HmacDrbg.from_int(42))
    return alice, bob


def _legacy_round(alice, bob, rng) -> Callable[[], None]:
    """One secured packet exactly as the legacy ad hoc path does it:
    sign, frame, hybrid-encrypt -> hybrid-decrypt, split, verify."""

    def round_trip() -> None:
        signature = alice.private.sign(PAYLOAD)
        framed = len(PAYLOAD).to_bytes(4, "big") + PAYLOAD + signature
        envelope = hybrid_encrypt(bob.public, framed, rng=rng, aad=b"alice")
        opened = hybrid_decrypt(bob.private, envelope, aad=b"alice")
        plain_len = int.from_bytes(opened[:4], "big")
        plaintext = opened[4 : 4 + plain_len]
        assert alice.public.verify(plaintext, opened[4 + plain_len :])

    return round_trip


def _session_round(alice, bob) -> Callable[[], None]:
    sender = SecureChannel("alice", "bob", alice.private, bob.public, HmacDrbg.from_int(7))
    receiver = SecureChannel("bob", "alice", bob.private, alice.public, HmacDrbg.from_int(8))

    def round_trip() -> None:
        frame = sender.encrypt(PAYLOAD, now=0.0)
        assert receiver.decrypt(frame, now=0.0) == PAYLOAD

    return round_trip


def _packets_per_second(round_trip: Callable[[], None], packets: int, repeats: int) -> float:
    """Best-of-``repeats`` CPU-time rate, GC paused (same measurement
    discipline as the medium-scale bench: survives noisy shared runners)."""
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.process_time()
            for _ in range(packets):
                round_trip()
            best = min(best, time.process_time() - start)
    finally:
        if enabled:
            gc.enable()
    return packets / best


def _throughput_rows(packets: int, repeats: int) -> Tuple[float, List[Tuple]]:
    alice, bob = _keys()
    session_pps = _packets_per_second(_session_round(alice, bob), packets, repeats)
    legacy_pps = _packets_per_second(
        _legacy_round(alice, bob, HmacDrbg.from_int(9)), packets, repeats
    )
    speedup = session_pps / legacy_pps
    rows = [
        ("legacy per-packet RSA", f"{legacy_pps:,.0f}"),
        ("per-link session", f"{session_pps:,.0f}"),
        ("speedup", f"{speedup:.1f}x"),
    ]
    return speedup, rows


def test_bench_secured_packet_throughput(bench_recorder):
    """The tentpole contract: >= 5x secured-packet rounds/second."""
    speedup, rows = _throughput_rows(packets=200, repeats=3)
    print()
    print(
        format_table(
            f"Secured-packet throughput ({len(PAYLOAD)}-byte payload, rounds/second)",
            ("pipeline", "packets/s"),
            rows,
        )
    )
    if speedup < 5.0:  # remeasure before judging a noisy sample
        speedup, _ = _throughput_rows(packets=400, repeats=4)
    bench_recorder.record(
        "crypto_packet_speedup",
        {"speedup_x": speedup},
        context={"payload_bytes": len(PAYLOAD)},
    )
    assert speedup >= 5.0


def test_bench_session_rsa_amortised():
    """RSA runs once per direction regardless of packet count — the
    amortisation the whole design exists for."""
    alice, bob = _keys()
    sender = SecureChannel("alice", "bob", alice.private, bob.public, HmacDrbg.from_int(7))
    receiver = SecureChannel("bob", "alice", bob.private, alice.public, HmacDrbg.from_int(8))
    for _ in range(500):
        receiver.decrypt(sender.encrypt(PAYLOAD, now=0.0), now=0.0)
    assert sender.stats["keys_established"] == 1
    assert receiver.stats["keys_accepted"] == 1
    assert sender.stats["frames_sent"] == 500


def _trace_lines(sim: Simulator) -> List[str]:
    return [
        f"{event.time!r}|{event.category}|{event.kind}|{sorted(event.data.items())!r}"
        for event in sim.trace
    ]


def _run_study(config: ScenarioConfig) -> Tuple[GainesvilleStudy, float]:
    study = GainesvilleStudy(config)
    start = time.process_time()
    study.run()
    return study, time.process_time() - start


def test_bench_crypto_default_study_equivalence_and_speedup(bench_recorder):
    """The acceptance bar: the default 10-user field study replays
    byte-identically under both crypto modes, and the session mode is
    measurably faster end to end (build + 7 simulated days + analysis)."""
    session_study, session_s = _run_study(ScenarioConfig(session_crypto=True))
    legacy_study, legacy_s = _run_study(ScenarioConfig(session_crypto=False))
    session_lines = _trace_lines(session_study.sim)
    assert session_lines == _trace_lines(legacy_study.sim)
    assert any("|message|received|" in line for line in session_lines)
    print()
    print(
        format_table(
            "Default Gainesville study, end to end (seconds)",
            ("crypto mode", "wall", "speedup"),
            [
                ("legacy per-packet RSA", f"{legacy_s:.2f}", ""),
                ("per-link session", f"{session_s:.2f}", f"{legacy_s / session_s:.2f}x"),
            ],
        )
    )
    # Key establishment really was amortised: far fewer RSA envelopes
    # than secured packets.
    stats = {}
    for app in session_study.apps.values():
        for key, value in app.sos.security_stats.items():
            stats[key] = stats.get(key, 0) + value
    assert 0 < stats["session_keys_established"] < stats["packets_sent"] / 4
    bench_recorder.record(
        "crypto_default_study_speedup",
        {
            "speedup_x": legacy_s / session_s,
            "session_cpu_s": session_s,
            "legacy_cpu_s": legacy_s,
        },
    )
    # End-to-end speedup (conservative bound; measured ~1.6-1.8x).
    assert legacy_s / session_s >= 1.2


@pytest.mark.bench_smoke
def test_bench_crypto_smoke():
    """Tiny rot guard for CI lanes: the throughput contract at reduced
    sample size and a 4-user/1-day cross-mode trace equivalence."""
    speedup, _ = _throughput_rows(packets=40, repeats=2)
    assert speedup >= 3.0  # reduced bar at smoke sample sizes
    config = dict(num_users=4, duration_days=1, total_posts=20, seed=77)
    session_study, _ = _run_study(ScenarioConfig(session_crypto=True, **config))
    legacy_study, _ = _run_study(ScenarioConfig(session_crypto=False, **config))
    assert _trace_lines(session_study.sim) == _trace_lines(legacy_study.sim)
