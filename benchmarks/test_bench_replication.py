"""E12 (extension) — replication variance of the field study.

The original evaluation is a single 7-day sample of a noisy human system.
This bench reruns the (shortened) reconstruction across seeds and reports
mean ± stdev per headline metric — the sampling-noise yardstick against
which the paper-vs-measured deltas in EXPERIMENTS.md should be read.
"""

import pytest

from repro.experiments import GainesvilleStudy, ReplicationStudy, ScenarioConfig


@pytest.fixture(scope="module")
def replication():
    study = ReplicationStudy(
        base_config=ScenarioConfig(duration_days=2, total_posts=74),
        seeds=(2017, 2018, 2019),
    )
    study.run()
    return study


def test_bench_replication(benchmark, replication):
    config = ScenarioConfig(seed=2023, duration_days=1, total_posts=20)
    benchmark.pedantic(lambda: GainesvilleStudy(config).run(), rounds=1, iterations=1)

    print()
    print(replication.report())

    summaries = {s.name: s for s in replication.summaries()}
    # The process must actually be stochastic across seeds...
    assert any(s.stdev > 0 for s in summaries.values())
    # ...but stable in shape: 1-hop dominance holds for every seed.
    one_hop = summaries["one_hop_fraction"]
    assert one_hop.minimum > 0.5
    # And the delay knee stays in a plausible band.
    day_frac = summaries["all_within_24h"]
    assert 0.2 <= day_frac.minimum <= day_frac.maximum <= 0.95
