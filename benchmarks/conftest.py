"""Shared fixtures for the benchmark harness.

The full 7-day field-study reconstruction runs once per benchmark session;
every figure bench reads from the same result, exactly as the paper's
figures all come from the same deployment.
"""

from __future__ import annotations

import pytest

from repro.experiments import GainesvilleStudy, ScenarioConfig


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: tiny-N benchmark smoke checks, cheap enough for any "
        "CI lane (select with -m bench_smoke)",
    )


@pytest.fixture(scope="session")
def study():
    """The full 7-day, 10-user, 259-post reconstruction."""
    return GainesvilleStudy(ScenarioConfig())


@pytest.fixture(scope="session")
def study_result(study):
    return study.run()
