"""Shared fixtures for the benchmark harness.

The full 7-day field-study reconstruction runs once per benchmark session;
every figure bench reads from the same result, exactly as the paper's
figures all come from the same deployment.
"""

from __future__ import annotations

import pytest

from repro.experiments import GainesvilleStudy, ScenarioConfig


@pytest.fixture(scope="session")
def study():
    """The full 7-day, 10-user, 259-post reconstruction."""
    return GainesvilleStudy(ScenarioConfig())


@pytest.fixture(scope="session")
def study_result(study):
    return study.run()
