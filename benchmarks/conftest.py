"""Shared fixtures for the benchmark harness.

The full 7-day field-study reconstruction runs once per benchmark
session; every figure bench reads from the same result, exactly as the
paper's figures all come from the same deployment.

Caching semantics (explicit, because they bit us): ``study_result`` is
``session``-scoped, and a pytest *session* is a *process*.  Under
``pytest-xdist``-style splits every worker is its own process with its
own session, so the ~15 s reconstruction runs **once per worker**, not
once per run — that is inherent to process-based splitting, not a bug
to fix with on-disk result pickles (a cross-process cache would have to
invalidate on any source change; rerunning is cheaper and safer).  The
``_RESULT_CACHE`` memo below is that per-process cache made explicit,
and every cached result is integrity-checked: its trace sha256 must
match the ``default_study`` entry recorded in the committed
``BENCH_default.json`` baseline, so a worker cannot silently measure a
world that diverged from the artifact every other lane gates against.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.bench.recorder import BenchRecorder
from repro.bench.schema import BenchSchemaError, load_artifact
from repro.bench.traceid import trace_sha256
from repro.experiments import GainesvilleStudy, ScenarioConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_default.json"

#: Per-process memo: (fixture key) -> (study, result).  One entry per
#: worker process; see the module docstring for why that is the design.
_RESULT_CACHE: Dict[str, Tuple[GainesvilleStudy, object]] = {}


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: tiny-N benchmark smoke checks, cheap enough for any "
        "CI lane (select with -m bench_smoke)",
    )


def _baseline_default_study_sha():
    """The committed baseline's default-study trace digest, or None
    when no baseline artifact is present (fresh checkouts mid-rebase)."""
    if not BASELINE_PATH.exists():
        return None
    try:
        artifact = load_artifact(BASELINE_PATH)
    except BenchSchemaError as exc:
        pytest.fail(f"committed baseline {BASELINE_PATH.name} is invalid: {exc}")
    for run in artifact["runs"]:
        if run["name"] == "default_study":
            return run["trace_sha256"]
    return None


def _default_study_result() -> Tuple[GainesvilleStudy, object]:
    if "default" not in _RESULT_CACHE:
        study = GainesvilleStudy(ScenarioConfig())
        result = study.run()
        expected = _baseline_default_study_sha()
        measured = trace_sha256(study.sim)
        if expected is not None and measured != expected:
            pytest.fail(
                "default-study trace sha256 diverged from the committed "
                f"BENCH_default.json baseline ({measured[:12]} != "
                f"{expected[:12]}): either a determinism regression or an "
                "intentional behaviour change that must re-baseline "
                "(see EXPERIMENTS.md, 'Updating the baseline')"
            )
        _RESULT_CACHE["default"] = (study, result)
    return _RESULT_CACHE["default"]


@pytest.fixture(scope="session")
def study():
    """The full 7-day, 10-user, 259-post reconstruction, already run
    and integrity-checked (``study_result`` holds its result)."""
    return _default_study_result()[0]


@pytest.fixture(scope="session")
def study_result(study):
    return _default_study_result()[1]


@pytest.fixture(scope="session")
def bench_recorder():
    """Session-wide measurement recorder.

    Benches record their measured ratios/throughputs here so the
    numbers land in the machine-readable trajectory instead of only in
    printed tables.  When ``$REPRO_BENCH_OUT`` names a path, the
    artifact is written at session end (CI sets it; plain local runs
    leave no stray files).
    """
    recorder = BenchRecorder(suite="pytest")
    yield recorder
    destination = os.environ.get("REPRO_BENCH_OUT")
    if destination and len(recorder):
        recorder.write(Path(destination))
