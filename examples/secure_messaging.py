#!/usr/bin/env python3
"""The SOS security pipeline, attack by attack (paper §IV, Figs. 2-3).

Walks through every security property the paper claims, demonstrating
both the honest path and what happens to an attacker:

1. the one-time PKI sign-up (keygen -> CSR -> cloud cross-check -> cert),
2. impersonation at sign-up (CSR claiming someone else's user id),
3. the offline certificate handshake between two devices,
4. end-to-end encryption (an eavesdropper's view of the frames),
5. forwarded-message provenance (Fig. 3b) and tamper detection,
6. revocation and its infrastructure dependence.

Run:  python examples/secure_messaging.py
"""

from repro.alleyoop.cloud import CloudError, CloudService
from repro.alleyoop.signup import sign_up
from repro.core.wire import canonical_message_bytes
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import hybrid_decrypt, hybrid_encrypt
from repro.pki.certificate import DistinguishedName
from repro.pki.csr import CertificateSigningRequest
from repro.pki.validation import CertificateValidator
from repro.storage.messagestore import StoredMessage


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main() -> None:
    cloud = CloudService(rng=HmacDrbg.from_int(1), now=0.0)

    banner("1. One-time sign-up (Fig. 2a)")
    alice = sign_up(cloud, "alice", rng=HmacDrbg.from_int(2), now=0.0)
    bob = sign_up(cloud, "bob", rng=HmacDrbg.from_int(3), now=0.0)
    carol = sign_up(cloud, "carol", rng=HmacDrbg.from_int(4), now=0.0)
    print(f"alice: user_id={alice.user_id}, cert serial={alice.certificate.serial}")
    print(f"bob:   user_id={bob.user_id}, cert serial={bob.certificate.serial}")
    print("Internet is no longer required from this point on.")
    cloud.online = False

    banner("2. Impersonation at sign-up is rejected")
    cloud.online = True
    mallory_keys = HmacDrbg.from_int(66)
    from repro.crypto.rsa import generate_keypair

    mallory_keypair = generate_keypair(1024, rng=mallory_keys)
    cloud.create_account("mallory", now=1.0)
    forged_csr = CertificateSigningRequest.create(
        DistinguishedName("mallory"), mallory_keypair.private, alice.user_id  # claims alice!
    )
    try:
        cloud.request_certificate("mallory", forged_csr, now=1.0)
        raise AssertionError("impersonation should have been rejected")
    except CloudError as exc:
        print(f"CA refused: {exc}")
    cloud.online = False

    banner("3. Offline certificate validation")
    validator = CertificateValidator(root=cloud.root_certificate)
    print(f"bob validates alice's certificate: "
          f"{validator.validate(alice.certificate, now=2.0).value}")
    print(f"...pinned to the advertised identity: "
          f"{validator.validate(alice.certificate, now=2.0, expected_user_id=bob.user_id).value}")

    banner("4. End-to-end encryption")
    secret = b"meet at the library at noon"
    envelope = hybrid_encrypt(bob.certificate.public_key, secret,
                              rng=HmacDrbg.from_int(5), aad=alice.user_id.encode())
    print(f"{len(secret)}-byte message -> {len(envelope)}-byte envelope")
    print(f"bob decrypts: {hybrid_decrypt(bob.keystore.private_key, envelope, aad=alice.user_id.encode())!r}")
    try:
        hybrid_decrypt(carol.keystore.private_key, envelope, aad=alice.user_id.encode())
        raise AssertionError("eavesdropper decrypted the envelope!")
    except ValueError:
        print("carol (eavesdropper) cannot decrypt: envelope authentication failed")

    banner("5. Forwarded-message provenance (Fig. 3b)")
    body = b"alice's original post"
    canonical = canonical_message_bytes(alice.user_id, 1, 3.0, body)
    message = StoredMessage(
        author_id=alice.user_id, number=1, created_at=3.0, body=body,
        signature=alice.keystore.private_key.sign(canonical),
        author_cert=alice.certificate.encode(), hops=0,
    )
    # Bob forwards it to Carol; Carol verifies ALICE, not Bob.
    from repro.pki.certificate import Certificate

    author_cert = Certificate.decode(message.author_cert)
    ok = author_cert.public_key.verify(
        canonical_message_bytes(message.author_id, message.number,
                                message.created_at, message.body),
        message.signature,
    )
    print(f"carol verifies the forwarded message against alice's certificate: {ok}")
    tampered = canonical_message_bytes(message.author_id, message.number,
                                       message.created_at, b"evil edit")
    print(f"...after tampering with the body: "
          f"{author_cert.public_key.verify(tampered, message.signature)}")

    banner("6. Revocation needs infrastructure")
    try:
        cloud.revoke_user("bob", now=4.0)
        raise AssertionError("revocation should need the Internet")
    except CloudError:
        print("offline: revocation request fails (the paper's §IV limitation)")
    cloud.online = True
    cloud.revoke_user("bob", now=4.0)
    fresh_validator = CertificateValidator(
        root=cloud.root_certificate, revocations=cloud.ca.revocations
    )
    print(f"after CRL sync, bob's certificate validates as: "
          f"{fresh_validator.validate(bob.certificate, now=5.0).value}")
    stale_validator = CertificateValidator(root=cloud.root_certificate)
    print(f"a device that never synced still sees: "
          f"{stale_validator.validate(bob.certificate, now=5.0).value} "
          "(the exposure window)")


if __name__ == "__main__":
    main()
