#!/usr/bin/env python3
"""Reproduce the paper's Gainesville field study, end to end.

Runs the full §VI deployment reconstruction — 10 users, 7 days,
11 km x 8 km, the Fig. 4a social graph, 259 posts, interest-based
routing — and prints every number the paper reports next to the measured
value, plus the Fig. 4b ASCII map.

This is the single command behind EXPERIMENTS.md.

Run:  python examples/campus_social_study.py            (full, ~1 min)
      python examples/campus_social_study.py --quick    (2 days, ~15 s)
"""

import sys

from repro.experiments import GainesvilleStudy, ScenarioConfig


def main() -> None:
    quick = "--quick" in sys.argv
    config = (
        ScenarioConfig(duration_days=2, total_posts=74) if quick else ScenarioConfig()
    )
    print(f"Building the deployment: {config.num_users} users, "
          f"{config.duration_days} days, {config.total_posts} posts, "
          f"protocol={config.routing_protocol!r} ...")
    study = GainesvilleStudy(config)
    result = study.run()

    print()
    print(result.report())
    print()
    print(f"contacts observed: {result.contact_count}")
    print(f"secured connections: {result.security_stats.get('connections_secured', 0)}")
    print(f"bytes over the air: {result.security_stats.get('bytes_sent', 0):,}")
    print(f"security failures: {result.security_stats.get('security_failures', 0)}")

    print()
    print("Fig. 4b — map overlay (b=message creation, r=dissemination, x=both)")
    print(result.overlay.ascii_map())

    print()
    print("Delay CDF (hours -> F(all), F(1-hop)):")
    for h, f_all, f_one in result.delay.curve_hours([6, 12, 24, 48, 72, 94, 120, 168]):
        print(f"  {h:>4.0f}h  {f_all:.3f}  {f_one:.3f}")


if __name__ == "__main__":
    main()
