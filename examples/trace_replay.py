#!/usr/bin/env python3
"""Record a deployment's contacts, then replay them bit-exactly.

The paper's methodological goal is DTN evaluation that is "replicable,
comparable, and available to a variety of researchers" (§I).  The
standard vehicle for that is the *contact trace*: once a deployment's
contacts are recorded, anyone can rerun any protocol over the identical
contact process.  This example:

1. runs a small geometric deployment (working-day mobility) and exports
   its contact trace to a file,
2. replays the trace through a fresh AlleyOop stack twice — once with
   interest-based and once with epidemic routing — over *identical*
   contacts,
3. shows the protocols' differing behaviour under the exact same physics.

Run:  python examples/trace_replay.py
"""

import io
import random

from repro.alleyoop import AlleyOopApp, CloudService, sign_up
from repro.core.config import SosConfig
from repro.crypto.drbg import HmacDrbg
from repro.geo.point import Point
from repro.geo.region import Region
from repro.mobility import RandomWaypoint
from repro.mobility.base import StationaryModel
from repro.mpc import MpcFramework
from repro.net import Device, Medium
from repro.net.tracefile import TraceMedium, read_contact_trace, write_contact_trace
from repro.sim import Simulator

USERS = 6
HOURS = 6


def record_phase() -> str:
    """Run mobile devices for a few hours; return the contact trace."""
    sim = Simulator(seed=99)
    medium = Medium(sim, tick_interval=15.0)
    region = Region(0, 0, 800, 800)
    for i in range(USERS):
        mobility = RandomWaypoint(region, sim.streams.get(f"m{i}"),
                                  pause_range=(60.0, 600.0))
        medium.add_device(Device(f"node-{i}", mobility))
    medium.start()
    sim.run(until=HOURS * 3600.0)
    medium.stop()
    buffer = io.StringIO()
    count = write_contact_trace(medium.contacts.completed, buffer)
    print(f"recorded {count} contacts over {HOURS} h "
          f"({USERS} devices, {region.area_km2:.2f} km^2)")
    return buffer.getvalue()


def replay_phase(trace_text: str, protocol: str) -> dict:
    """Run the full AlleyOop stack over the recorded contacts."""
    intervals = read_contact_trace(io.StringIO(trace_text))
    sim = Simulator(seed=1)
    medium = TraceMedium(sim, intervals)
    framework = MpcFramework(sim, medium)
    cloud = CloudService(rng=HmacDrbg.from_int(7), now=0.0)
    config = SosConfig(routing_protocol=protocol, relay_request_grace=0.0)

    apps = []
    for i in range(USERS):
        creds = sign_up(cloud, f"user-{i}", rng=HmacDrbg.from_int(100 + i), now=0.0)
        medium.add_device(Device(f"node-{i}", StationaryModel(Point(0, 0))))
        apps.append(AlleyOopApp(sim, framework, f"node-{i}", creds.user_id,
                                f"user-{i}", creds.keystore, cloud,
                                rng=HmacDrbg.from_int(200 + i), config=config))
    cloud.online = False
    # Only odd-numbered users follow user-0: interest-based routing moves
    # content toward them alone, epidemic replicates to everyone.
    for i, app in enumerate(apps[1:], start=1):
        if i % 2 == 1:
            app.follow(apps[0].user_id)
    for app in apps:
        app.start()
    medium.start()
    rng = random.Random(5)
    for k in range(5):
        sim.schedule_at(rng.uniform(0, HOURS * 1800.0), apps[0].post, f"update {k}")
    sim.run(until=HOURS * 3600.0)
    delivered = sum(len(app.timeline()) for app in apps[1:])
    transfers = sum(app.sos.messages.stats["messages_received"] for app in apps)
    bytes_sent = sum(app.sos.adhoc.stats["bytes_sent"] for app in apps)
    return {"delivered": delivered, "transfers": transfers, "bytes": bytes_sent}


def main() -> None:
    trace_text = record_phase()
    print("\nreplaying the identical contact process under two protocols:\n")
    print(f"{'protocol':<10} | {'feed deliveries':>15} | {'transfers':>9} | {'bytes':>9}")
    print("-" * 52)
    for protocol in ("interest", "epidemic"):
        stats = replay_phase(trace_text, protocol)
        print(f"{protocol:<10} | {stats['delivered']:>15} | "
              f"{stats['transfers']:>9} | {stats['bytes']:>9,}")
    print("\nsame contacts, same posts — protocol differences are now "
          "attributable to the protocols alone.")


if __name__ == "__main__":
    main()
