#!/usr/bin/env python3
"""Quickstart: two users, one delay tolerant message.

Builds the minimal SOS/AlleyOop world — a cloud + CA, two users who
complete the one-time sign-up, two simulated iPhones near each other —
then posts a message from Alice and watches Bob's feed receive it over
the secure D2D path (discovery -> invitation -> certificate handshake ->
encrypted transfer).

Run:  python examples/quickstart.py
"""

from repro.alleyoop import AlleyOopApp, CloudService, sign_up
from repro.crypto.drbg import HmacDrbg
from repro.geo.point import Point
from repro.mobility.base import StationaryModel
from repro.mpc import MpcFramework
from repro.net import Device, Medium
from repro.sim import Simulator


def main() -> None:
    # 1. The simulation substrate: clock, radio medium, MPC runtime.
    sim = Simulator(seed=42)
    medium = Medium(sim, tick_interval=10.0)
    framework = MpcFramework(sim, medium)

    # 2. The one-time infrastructure (paper Fig. 2a): accounts + certificates.
    cloud = CloudService(rng=HmacDrbg.from_int(1), now=0.0)
    alice_creds = sign_up(cloud, "alice", rng=HmacDrbg.from_int(2), now=0.0)
    bob_creds = sign_up(cloud, "bob", rng=HmacDrbg.from_int(3), now=0.0)
    print(f"alice signed up: user_id={alice_creds.user_id}")
    print(f"bob   signed up: user_id={bob_creds.user_id}")

    # 3. Two phones, 40 m apart (within peer-to-peer WiFi range).
    for name, creds, x in [("alice", alice_creds, 100.0), ("bob", bob_creds, 140.0)]:
        medium.add_device(Device(f"dev-{name}", StationaryModel(Point(x, 100.0))))

    alice = AlleyOopApp(sim, framework, "dev-alice", alice_creds.user_id, "alice",
                        alice_creds.keystore, cloud, rng=HmacDrbg.from_int(4))
    bob = AlleyOopApp(sim, framework, "dev-bob", bob_creds.user_id, "bob",
                      bob_creds.keystore, cloud, rng=HmacDrbg.from_int(5))

    # 4. From here on, no Internet is needed: take the cloud away.
    cloud.online = False

    # 5. Bob follows Alice; both apps go on the air.
    bob.follow(alice_creds.user_id)
    alice.start()
    bob.start()
    medium.start()

    # 6. Alice posts; the middleware advertises, Bob's device requests,
    #    certificates are exchanged, the payload travels encrypted.
    alice.post("Hello from the delay tolerant social network!")
    sim.run(until=300.0)

    print("\nBob's feed:")
    for entry in bob.timeline():
        print(f"  [{entry.author_id} #{entry.number}] {entry.post.text!r} "
              f"(hops={entry.hops}, delay={entry.delay:.1f}s)")
    print("\nBob's app notifications:")
    for note in bob.notifications:
        print(f"  - {note}")
    assert bob.timeline(), "delivery failed — this should never happen"
    print("\nDelivered with no infrastructure. That's the alley oop.")


if __name__ == "__main__":
    main()
