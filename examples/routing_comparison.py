#!/usr/bin/env python3
"""Compare all six routing protocols on one identical deployment.

The point of the SOS middleware is that routing schemes are swappable
modules evaluated under identical conditions (§III-B).  This example runs
the reconstructed Gainesville deployment once per protocol — same seed,
same mobility, same social graph, same posting schedule — and prints the
delivery / delay / overhead trade-off.

Expected shape: epidemic delivers the most at the highest transfer count;
interest-based gets close with a fraction of the traffic; direct delivery
is cheapest, slowest and 1-hop-only; spray-and-wait and first-contact sit
in between; PRoPHET tracks epidemic in a small dense population.

Run:  python examples/routing_comparison.py           (3 days/protocol)
      python examples/routing_comparison.py --quick   (1 day/protocol)
"""

import sys

from repro.experiments import ProtocolComparison, ScenarioConfig


def main() -> None:
    quick = "--quick" in sys.argv
    config = ScenarioConfig(
        duration_days=1 if quick else 3,
        total_posts=37 if quick else 110,
    )
    protocols = ("interest", "epidemic", "direct", "first_contact", "spray_wait", "prophet")
    print(f"Running {len(protocols)} protocols x {config.duration_days} day(s) "
          f"({config.total_posts} posts each) ...\n")
    comparison = ProtocolComparison(base_config=config, protocols=protocols)
    comparison.run()
    print(comparison.report())

    outcome = comparison.outcomes
    print()
    print("Sanity of the expected shape:")
    print(f"  epidemic transfers >= interest transfers: "
          f"{outcome['epidemic'].disseminations} >= {outcome['interest'].disseminations}")
    print(f"  direct is 1-hop only: one_hop_fraction="
          f"{outcome['direct'].one_hop_fraction}")
    ratio = outcome["epidemic"].bytes_sent / max(1, outcome["interest"].bytes_sent)
    print(f"  epidemic costs {ratio:.2f}x interest-based's bytes on air")


if __name__ == "__main__":
    main()
