#!/usr/bin/env python3
"""Emergency broadcast: opportunistic dissemination when infrastructure dies.

The paper motivates DTNs with disaster scenarios: "In natural disaster
situations, Internet and cellular communication infrastructures can be
severely disrupted" (§I).  This example stages exactly that:

* 14 residents move through a 3 km x 3 km district (random waypoint),
* at t=0 the infrastructure is already gone (cloud offline),
* an emergency coordinator posts safety updates from a shelter,
* everyone follows the coordinator; epidemic routing spreads each update
  device-to-device until the whole district has it.

The script reports per-update coverage over time — the classic epidemic
S-curve — entirely without infrastructure.

Run:  python examples/emergency_broadcast.py
"""

from repro.alleyoop import AlleyOopApp, CloudService, sign_up
from repro.core.config import SosConfig
from repro.crypto.drbg import HmacDrbg
from repro.geo.point import Point
from repro.geo.region import Region
from repro.mobility import RandomWaypoint
from repro.mobility.base import StationaryModel
from repro.mpc import MpcFramework
from repro.net import Device, Medium
from repro.sim import Simulator

RESIDENTS = 14
DISTRICT = Region(0.0, 0.0, 3_000.0, 3_000.0)
HOUR = 3600.0


def main() -> None:
    sim = Simulator(seed=7)
    medium = Medium(sim, tick_interval=15.0)
    framework = MpcFramework(sim, medium)

    # Sign-up happened long before the disaster (the one-time requirement).
    cloud = CloudService(rng=HmacDrbg.from_int(100), now=0.0)
    config = SosConfig(routing_protocol="epidemic", relay_request_grace=0.0)

    apps = {}
    coordinator_creds = sign_up(cloud, "coordinator", rng=HmacDrbg.from_int(0), now=0.0)
    shelter = Point(1_500.0, 1_500.0)
    medium.add_device(Device("dev-coordinator", StationaryModel(shelter)))
    apps["coordinator"] = AlleyOopApp(
        sim, framework, "dev-coordinator", coordinator_creds.user_id, "coordinator",
        coordinator_creds.keystore, cloud, rng=HmacDrbg.from_int(1000), config=config,
    )

    for i in range(RESIDENTS):
        name = f"resident-{i:02d}"
        creds = sign_up(cloud, name, rng=HmacDrbg.from_int(200 + i), now=0.0)
        mobility = RandomWaypoint(
            DISTRICT, sim.streams.get(f"walk:{i}"),
            speed_range=(0.8, 2.2), pause_range=(60.0, 900.0),
        )
        medium.add_device(Device(f"dev-{name}", mobility))
        app = AlleyOopApp(
            sim, framework, f"dev-{name}", creds.user_id, name,
            creds.keystore, cloud, rng=HmacDrbg.from_int(500 + i), config=config,
        )
        app.follow(coordinator_creds.user_id)
        apps[name] = app

    # The disaster: infrastructure is gone before the first update.
    cloud.online = False
    for app in apps.values():
        app.start()
    medium.start()

    updates = [
        (0.5 * HOUR, "Shelter open at the community center."),
        (2.0 * HOUR, "Water distribution at the north park, 4 PM."),
        (4.0 * HOUR, "Road to the hospital cleared."),
    ]
    coordinator = apps["coordinator"]
    for at, text in updates:
        sim.schedule_at(at, coordinator.post, text)

    print(f"{RESIDENTS} residents, 1 coordinator, {DISTRICT.area_km2:.0f} km^2, "
          "no infrastructure.\n")
    print(f"{'time':>6} | " + " | ".join(f"update {i+1}" for i in range(len(updates))))
    print("-" * 45)
    residents = [a for n, a in apps.items() if n != "coordinator"]
    for checkpoint_h in [1, 2, 3, 4, 6, 8, 10, 12]:
        sim.run(until=checkpoint_h * HOUR)
        coverage = []
        for number in range(1, len(updates) + 1):
            have = sum(
                1 for app in residents
                if app.sos.store.has(coordinator.user_id, number)
            )
            coverage.append(f"{have:3d}/{RESIDENTS}")
        print(f"{checkpoint_h:>5}h | " + " | ".join(f"{c:>8}" for c in coverage))

    total = sum(len(a.timeline()) for a in residents)
    print(f"\ntotal feed deliveries: {total} "
          f"(max {RESIDENTS * len(updates)})")
    hops = [e.hops for a in residents for e in a.timeline()]
    if hops:
        print(f"hop counts: min={min(hops)} max={max(hops)} "
              f"mean={sum(hops)/len(hops):.2f} — multi-hop relaying at work")


if __name__ == "__main__":
    main()
