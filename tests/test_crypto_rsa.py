"""Tests for RSA keygen, signatures, OAEP and the hybrid envelope."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg, RandomSource
from repro.crypto.numbers import generate_prime, int_to_bytes, is_probable_prime
from repro.crypto.rsa import (
    KeyGenerationError,
    RsaPublicKey,
    generate_keypair,
    hybrid_decrypt,
    hybrid_encrypt,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(1024, rng=HmacDrbg.from_int(777))


@pytest.fixture(scope="module")
def other_keypair():
    return generate_keypair(1024, rng=HmacDrbg.from_int(778))


class TestKeyGeneration:
    def test_modulus_bit_length(self, keypair):
        assert keypair.public.n.bit_length() == 1024

    def test_factors_are_prime(self, keypair):
        private = keypair.private
        rng = HmacDrbg.from_int(1)
        assert is_probable_prime(private.p, rng=rng)
        assert is_probable_prime(private.q, rng=rng)
        assert private.p * private.q == private.n

    def test_d_inverts_e(self, keypair):
        private = keypair.private
        phi = (private.p - 1) * (private.q - 1)
        assert (private.d * private.e) % phi == 1

    def test_deterministic_from_seed(self):
        a = generate_keypair(512, rng=HmacDrbg.from_int(5))
        b = generate_keypair(512, rng=HmacDrbg.from_int(5))
        assert a.public == b.public

    def test_odd_bits_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(1023)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(256)


class _StuckSource(RandomSource):
    """A degenerate source that replays the same bytes forever — the
    pathology the keygen attempt bound exists to catch."""

    def __init__(self, pattern: bytes) -> None:
        self._pattern = pattern

    def read(self, n: int) -> bytes:
        reps = -(-n // len(self._pattern))
        return (self._pattern * reps)[:n]


class TestKeyGenRetryBound:
    """Regression tests for the generate_keypair retry loop: a stuck
    random source used to make p == q on every draw and spin forever."""

    @staticmethod
    def _stuck_pattern() -> bytes:
        # A pattern X (well below 2^250) whose 256-bit prime candidate
        # (top bit forced, made odd) is prime: generate_prime returns it
        # instantly, so every attempt yields p == q — while Miller-Rabin's
        # witness draws (X itself, far below the prime) still terminate.
        check_rng = HmacDrbg.from_int(123)
        x = 0xABCDEF01
        while not is_probable_prime((1 << 255) | x | 1, rng=check_rng):
            x += 2
        return int_to_bytes(x | 1, 32)

    @pytest.fixture(scope="class")
    def stuck_prime_source(self):
        return _StuckSource(self._stuck_pattern())

    def test_p_equals_q_forever_raises(self, stuck_prime_source):
        with pytest.raises(KeyGenerationError, match="degenerate"):
            generate_keypair(512, rng=stuck_prime_source, max_attempts=5)

    def test_attempt_budget_in_message(self, stuck_prime_source):
        with pytest.raises(KeyGenerationError, match="after 3 attempts"):
            generate_keypair(512, rng=stuck_prime_source, max_attempts=3)

    def test_failure_is_deterministic(self):
        """Same stuck stream, same outcome — no wall-clock or retry-count
        nondeterminism leaks into the failure path."""
        pattern = self._stuck_pattern()
        for _ in range(2):
            with pytest.raises(KeyGenerationError):
                generate_keypair(512, rng=_StuckSource(pattern), max_attempts=4)

    def test_error_is_a_value_error(self, stuck_prime_source):
        with pytest.raises(ValueError):
            generate_keypair(512, rng=stuck_prime_source, max_attempts=2)

    def test_zero_attempt_budget_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            generate_keypair(512, rng=HmacDrbg.from_int(1), max_attempts=0)

    def test_healthy_source_succeeds_first_attempt(self):
        """A known-good seed needs exactly one attempt — the bound
        changes nothing for healthy sources."""
        pair = generate_keypair(512, rng=HmacDrbg.from_int(2), max_attempts=1)
        assert pair.public == generate_keypair(512, rng=HmacDrbg.from_int(2)).public

    def test_natural_retry_is_deterministic(self):
        """Seed 5's first 512-bit prime pair is rejected, so this walks
        the genuine retry path: it respects the attempt budget and both
        retried runs land on the same key."""
        with pytest.raises(KeyGenerationError):
            generate_keypair(512, rng=HmacDrbg.from_int(5), max_attempts=1)
        first = generate_keypair(512, rng=HmacDrbg.from_int(5))
        again = generate_keypair(512, rng=HmacDrbg.from_int(5))
        assert first.public == again.public


class TestSignatures:
    def test_sign_verify_roundtrip(self, keypair):
        sig = keypair.private.sign(b"message")
        assert keypair.public.verify(b"message", sig)

    def test_modified_message_fails(self, keypair):
        sig = keypair.private.sign(b"message")
        assert not keypair.public.verify(b"messagX", sig)

    def test_wrong_key_fails(self, keypair, other_keypair):
        sig = keypair.private.sign(b"message")
        assert not other_keypair.public.verify(b"message", sig)

    def test_truncated_signature_fails(self, keypair):
        sig = keypair.private.sign(b"message")
        assert not keypair.public.verify(b"message", sig[:-1])

    def test_garbage_signature_fails_without_raising(self, keypair):
        assert not keypair.public.verify(b"message", b"\xff" * keypair.public.byte_size)

    def test_empty_message_signable(self, keypair):
        assert keypair.public.verify(b"", keypair.private.sign(b""))

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_messages(self, keypair, data):
        assert keypair.public.verify(data, keypair.private.sign(data))


class TestOaep:
    def test_roundtrip(self, keypair):
        rng = HmacDrbg.from_int(1)
        ct = keypair.public.encrypt(b"short secret", rng=rng)
        assert keypair.private.decrypt(ct) == b"short secret"

    def test_max_length_plaintext(self, keypair):
        rng = HmacDrbg.from_int(2)
        max_len = keypair.public.byte_size - 2 * 32 - 2
        data = b"\xaa" * max_len
        assert keypair.private.decrypt(keypair.public.encrypt(data, rng=rng)) == data

    def test_too_long_plaintext_rejected(self, keypair):
        max_len = keypair.public.byte_size - 2 * 32 - 2
        with pytest.raises(ValueError):
            keypair.public.encrypt(b"\xaa" * (max_len + 1))

    def test_tampered_ciphertext_rejected(self, keypair):
        ct = bytearray(keypair.public.encrypt(b"secret", rng=HmacDrbg.from_int(3)))
        ct[-1] ^= 1
        with pytest.raises(ValueError):
            keypair.private.decrypt(bytes(ct))

    def test_randomised_encryption(self, keypair):
        rng = HmacDrbg.from_int(4)
        assert keypair.public.encrypt(b"x", rng=rng) != keypair.public.encrypt(b"x", rng=rng)


class TestHybridEnvelope:
    def test_roundtrip_large_payload(self, keypair):
        rng = HmacDrbg.from_int(10)
        payload = bytes(range(256)) * 64  # 16 KiB
        envelope = hybrid_encrypt(keypair.public, payload, rng=rng)
        assert hybrid_decrypt(keypair.private, envelope) == payload

    def test_aad_binding(self, keypair):
        rng = HmacDrbg.from_int(11)
        envelope = hybrid_encrypt(keypair.public, b"data", rng=rng, aad=b"alice")
        assert hybrid_decrypt(keypair.private, envelope, aad=b"alice") == b"data"
        with pytest.raises(ValueError):
            hybrid_decrypt(keypair.private, envelope, aad=b"mallory")

    def test_ciphertext_tampering_detected(self, keypair):
        rng = HmacDrbg.from_int(12)
        envelope = bytearray(hybrid_encrypt(keypair.public, b"payload", rng=rng))
        envelope[-40] ^= 1  # flip a ciphertext byte (before the MAC)
        with pytest.raises(ValueError):
            hybrid_decrypt(keypair.private, bytes(envelope))

    def test_mac_tampering_detected(self, keypair):
        rng = HmacDrbg.from_int(13)
        envelope = bytearray(hybrid_encrypt(keypair.public, b"payload", rng=rng))
        envelope[-1] ^= 1
        with pytest.raises(ValueError):
            hybrid_decrypt(keypair.private, bytes(envelope))

    def test_wrong_recipient_cannot_open(self, keypair, other_keypair):
        envelope = hybrid_encrypt(keypair.public, b"secret", rng=HmacDrbg.from_int(14))
        with pytest.raises(ValueError):
            hybrid_decrypt(other_keypair.private, envelope)

    def test_truncated_envelope_rejected(self, keypair):
        envelope = hybrid_encrypt(keypair.public, b"secret", rng=HmacDrbg.from_int(15))
        with pytest.raises(ValueError):
            hybrid_decrypt(keypair.private, envelope[:20])

    def test_bad_magic_rejected(self, keypair):
        envelope = hybrid_encrypt(keypair.public, b"secret", rng=HmacDrbg.from_int(16))
        with pytest.raises(ValueError):
            hybrid_decrypt(keypair.private, b"XXXX" + envelope[4:])

    def test_empty_payload(self, keypair):
        envelope = hybrid_encrypt(keypair.public, b"", rng=HmacDrbg.from_int(17))
        assert hybrid_decrypt(keypair.private, envelope) == b""


class TestPublicKeyEncoding:
    def test_roundtrip(self, keypair):
        encoded = keypair.public.to_bytes()
        assert RsaPublicKey.from_bytes(encoded) == keypair.public

    def test_fingerprint_stability(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()

    def test_fingerprints_differ_between_keys(self, keypair, other_keypair):
        assert keypair.public.fingerprint() != other_keypair.public.fingerprint()
