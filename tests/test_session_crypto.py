"""Tests for the per-link secure-session layer (repro.crypto.session)
and its wiring through the ad hoc manager.

Covers the ISSUE-2 checklist: rekey boundaries (time and volume),
replayed/reordered-frame rejection, channel teardown on peer loss with
re-handshake on reconnect, session-on/off trace equivalence, and the
originator-verification memo (including CRL-driven invalidation).
"""

import pytest

from repro.core.config import SosConfig
from repro.core.errors import SecurityError
from repro.core.wire import SosPacket
from repro.crypto.drbg import HmacDrbg
from repro.crypto.session import (
    SecureChannel,
    SessionCryptoError,
    legacy_frame_len,
)
from repro.geo.point import Point
from repro.mobility.base import MobilityModel
from repro.storage.messagestore import StoredMessage
from tests.worldutil import World


@pytest.fixture()
def world(ca, keypair_pool):
    return World(ca, keypair_pool)


@pytest.fixture()
def channel_pair(keypair_pool):
    """Two SecureChannel endpoints wired back-to-back."""

    def _make(**kwargs):
        alice_keys, bob_keys = keypair_pool[0], keypair_pool[1]
        alice = SecureChannel(
            "alice", "bob", alice_keys.private, bob_keys.public,
            HmacDrbg.from_int(101), **kwargs,
        )
        bob = SecureChannel(
            "bob", "alice", bob_keys.private, alice_keys.public,
            HmacDrbg.from_int(202), **kwargs,
        )
        return alice, bob

    return _make


class TestChannelProtocol:
    def test_first_frame_is_key_frame_then_data_frames(self, channel_pair):
        alice, bob = channel_pair()
        frames = [alice.encrypt(b"packet %d" % i, now=0.0) for i in range(4)]
        assert frames[0][:1] == b"K"
        assert all(f[:1] == b"S" for f in frames[1:])
        for i, frame in enumerate(frames):
            assert bob.decrypt(frame, now=0.0) == b"packet %d" % i
        assert alice.stats["keys_established"] == 1
        assert bob.stats["keys_accepted"] == 1

    def test_directions_keyed_independently(self, channel_pair):
        alice, bob = channel_pair()
        to_bob = alice.encrypt(b"a->b", now=0.0)
        to_alice = bob.encrypt(b"b->a", now=0.0)
        assert to_bob[:1] == to_alice[:1] == b"K"  # each direction pays once
        assert bob.decrypt(to_bob, now=0.0) == b"a->b"
        assert alice.decrypt(to_alice, now=0.0) == b"b->a"

    @pytest.mark.parametrize("size", [0, 1, 200, 1024])
    def test_frames_padded_to_legacy_length(self, channel_pair, size):
        """Session frames must occupy exactly the bytes the legacy
        per-packet envelope would, so the radio model (and therefore every
        delivery trace) is identical across crypto modes."""
        alice, bob = channel_pair()
        key_frame = alice.encrypt(b"x" * size, now=0.0)
        data_frame = alice.encrypt(b"y" * size, now=0.0)
        expected = legacy_frame_len(size, 128, 128)  # 1024-bit pool keys
        assert len(key_frame) == len(data_frame) == expected

    def test_replayed_frame_rejected(self, channel_pair):
        alice, bob = channel_pair()
        first = alice.encrypt(b"one", now=0.0)
        second = alice.encrypt(b"two", now=0.0)
        assert bob.decrypt(first, now=0.0) == b"one"
        assert bob.decrypt(second, now=0.0) == b"two"
        with pytest.raises(SessionCryptoError, match="replayed or reordered"):
            bob.decrypt(second, now=0.0)

    def test_reordered_frame_rejected(self, channel_pair):
        alice, bob = channel_pair()
        bob.decrypt(alice.encrypt(b"open", now=0.0), now=0.0)
        early = alice.encrypt(b"early", now=0.0)
        late = alice.encrypt(b"late", now=0.0)
        with pytest.raises(SessionCryptoError, match="replayed or reordered"):
            bob.decrypt(late, now=0.0)
        # The in-order frame still decrypts after the rejection.
        assert bob.decrypt(early, now=0.0) == b"early"

    def test_empty_payload_frame_cannot_replay(self, channel_pair):
        """Replay protection counts frames, not stream bytes: a frame
        carrying an empty payload must still be rejected on replay."""
        alice, bob = channel_pair()
        bob.decrypt(alice.encrypt(b"open", now=0.0), now=0.0)
        empty = alice.encrypt(b"", now=0.0)  # an "S" frame with ct_len=0
        assert bob.decrypt(empty, now=0.0) == b""
        with pytest.raises(SessionCryptoError, match="replayed or reordered"):
            bob.decrypt(empty, now=0.0)

    def test_replayed_key_frame_rejected(self, channel_pair):
        alice, bob = channel_pair(rekey_packets=1)
        key_frame = alice.encrypt(b"first", now=0.0)
        assert bob.decrypt(key_frame, now=0.0) == b"first"
        with pytest.raises(SessionCryptoError, match="replayed session key"):
            bob.decrypt(key_frame, now=0.0)
        # A legitimate fresh key frame still goes through.
        assert bob.decrypt(alice.encrypt(b"second", now=0.0), now=0.0) == b"second"

    def test_tampering_rejected_everywhere(self, channel_pair):
        alice, bob = channel_pair()
        bob.decrypt(alice.encrypt(b"warmup", now=0.0), now=0.0)
        frame = alice.encrypt(b"tamper target", now=0.0)
        for position in (1, 9, 20, len(frame) // 2, len(frame) - 1):
            damaged = bytearray(frame)
            damaged[position] ^= 0x01
            with pytest.raises(SessionCryptoError):
                bob.decrypt(bytes(damaged), now=0.0)
        assert bob.decrypt(frame, now=0.0) == b"tamper target"

    def test_key_frame_from_wrong_signer_rejected(self, channel_pair, keypair_pool):
        _, bob = channel_pair()
        eve_keys = keypair_pool[2]
        eve = SecureChannel(
            "alice", "bob", eve_keys.private, keypair_pool[1].public,
            HmacDrbg.from_int(303),
        )
        with pytest.raises(SessionCryptoError, match="not signed by"):
            bob.decrypt(eve.encrypt(b"impostor", now=0.0), now=0.0)

    def test_data_frame_before_key_frame_rejected(self, channel_pair):
        alice, bob = channel_pair()
        alice.encrypt(b"key frame never delivered", now=0.0)
        stray = alice.encrypt(b"data frame", now=0.0)
        with pytest.raises(SessionCryptoError, match="before session key"):
            bob.decrypt(stray, now=0.0)

    def test_tampered_key_frame_does_not_disturb_receive_stream(self, channel_pair):
        """A key frame whose *body* fails authentication must leave the
        current receive key installed and the genuine key frame usable —
        key commitment happens only after the MAC verifies."""
        alice, bob = channel_pair(rekey_packets=2)
        bob.decrypt(alice.encrypt(b"one", now=0.0), now=0.0)
        in_flight = alice.encrypt(b"two", now=0.0)  # S frame on the old key
        rekey = alice.encrypt(b"three", now=0.0)  # K frame: fresh key
        damaged = bytearray(rekey)
        damaged[-1] ^= 1  # break the MAC, keep the signed header intact
        with pytest.raises(SessionCryptoError, match="authentication failed"):
            bob.decrypt(bytes(damaged), now=0.0)
        # Old stream still live, and the genuine K frame is not "replayed".
        assert bob.decrypt(in_flight, now=0.0) == b"two"
        assert bob.decrypt(rekey, now=0.0) == b"three"

    def test_key_replay_rejected_across_channel_teardown(self, keypair_pool):
        """A recorded handshake must not replay into a *fresh* channel:
        the fingerprint set can outlive the channel (the ad hoc manager
        shares one across reconnects)."""
        from collections import OrderedDict

        alice_keys, bob_keys = keypair_pool[0], keypair_pool[1]
        seen = OrderedDict()

        def bob_channel():
            return SecureChannel(
                "bob", "alice", bob_keys.private, alice_keys.public,
                HmacDrbg.from_int(11), seen_key_fingerprints=seen,
            )

        alice = SecureChannel(
            "alice", "bob", alice_keys.private, bob_keys.public, HmacDrbg.from_int(12)
        )
        first_bob = bob_channel()
        recorded = alice.encrypt(b"session one", now=0.0)
        assert first_bob.decrypt(recorded, now=0.0) == b"session one"
        # Link drops; a fresh channel is created for the reconnect.
        reconnected_bob = bob_channel()
        with pytest.raises(SessionCryptoError, match="replayed session key"):
            reconnected_bob.decrypt(recorded, now=100.0)

    def test_seen_key_store_bounded(self, channel_pair, monkeypatch):
        import repro.crypto.session as session_module

        monkeypatch.setattr(session_module, "SEEN_KEY_LIMIT", 3)
        alice, bob = channel_pair(rekey_packets=1)  # every packet rekeys
        for i in range(8):
            assert bob.decrypt(alice.encrypt(b"m%d" % i, now=0.0), now=0.0) == b"m%d" % i
        assert len(bob._seen_wrapped) <= 3


class TestRekeyBoundaries:
    def test_volume_rekey_exactly_at_budget(self, channel_pair):
        alice, bob = channel_pair(rekey_packets=3)
        kinds = []
        for i in range(7):
            frame = alice.encrypt(b"m%d" % i, now=0.0)
            kinds.append(frame[:1])
            assert bob.decrypt(frame, now=0.0) == b"m%d" % i
        # Packets 0, 3 and 6 open fresh keys; the stream never stalls.
        assert kinds == [b"K", b"S", b"S", b"K", b"S", b"S", b"K"]
        assert alice.stats["keys_established"] == 3
        assert bob.stats["keys_accepted"] == 3

    def test_time_rekey_exactly_at_interval(self, channel_pair):
        alice, bob = channel_pair(rekey_interval_s=60.0)
        at_zero = alice.encrypt(b"a", now=0.0)
        just_before = alice.encrypt(b"b", now=59.999)
        at_interval = alice.encrypt(b"c", now=60.0)
        assert (at_zero[:1], just_before[:1], at_interval[:1]) == (b"K", b"S", b"K")
        for frame, body in ((at_zero, b"a"), (just_before, b"b"), (at_interval, b"c")):
            assert bob.decrypt(frame, now=0.0) == body

    def test_rekey_resets_stream_offset(self, channel_pair):
        alice, bob = channel_pair(rekey_packets=2)
        for i in range(5):
            assert bob.decrypt(alice.encrypt(b"x" * 100, now=0.0), now=0.0) == b"x" * 100
        assert alice._send.position == 100  # fresh key, fresh stream


class TestAdhocIntegration:
    def _secured_pair(self, world, **config_kwargs):
        config = SosConfig(relay_request_grace=0.0, **config_kwargs)
        alice = world.add_user("alice", config=config)
        bob = world.add_user("bob", config=config)
        bob.follow(alice.user_id)
        world.start()
        alice.post("seed")
        world.run(60.0)
        assert bob.sos.adhoc.is_secured(alice.user_id)
        return alice, bob

    def test_channels_established_and_used(self, world):
        alice, bob = self._secured_pair(world)
        assert [e.post.text for e in bob.timeline()] == ["seed"]
        snap = alice.sos.security_stats
        assert snap["session_keys_established"] >= 1
        assert snap["session_keys_accepted"] >= 1

    def test_rekey_under_traffic_end_to_end(self, world):
        alice, bob = self._secured_pair(world, session_rekey_packets=2)
        for i in range(6):
            alice.post(f"burst {i}")
        world.run(world.sim.now + 300.0)
        texts = {e.post.text for e in bob.timeline()}
        assert {f"burst {i}" for i in range(6)} <= texts
        # Several rekeys happened on alice's sending side alone.
        assert alice.sos.security_stats["session_keys_established"] >= 3

    def test_teardown_on_peer_loss_and_rehandshake(self, world):
        class Wanderer(MobilityModel):
            def position_at(self, now):
                if now < 200 or now >= 600:
                    return Point(130, 100)
                return Point(5000, 5000)

        config = SosConfig(relay_request_grace=0.0)
        alice = world.add_user("alice", position=Point(100, 100), config=config)
        bob = world.add_user("bob", mobility=Wanderer(), config=config)
        bob.follow(alice.user_id)
        world.start()
        alice.post("first")
        world.run(150.0)
        alice_state = alice.sos.adhoc._peers[bob.user_id]
        first_channel = alice_state.channel
        assert first_channel is not None
        world.run(400.0)  # bob out of range: link drops
        assert not alice.sos.adhoc.is_secured(bob.user_id)
        assert alice_state.channel is None  # torn down with the connection
        alice.post("second")
        world.run(900.0)  # bob returns: re-handshake + catch-up
        assert sorted(e.post.text for e in bob.timeline()) == ["first", "second"]
        second_channel = alice.sos.adhoc._peers[bob.user_id].channel
        assert second_channel is not None and second_channel is not first_channel
        # Key counters from the first channel survived into the manager.
        assert alice.sos.security_stats["session_keys_established"] >= 2
        # The anti-replay fingerprint set spans both connections, so a
        # recorded first-session handshake cannot replay into the second.
        assert len(alice.sos.adhoc._seen_session_keys) >= 2
        assert second_channel._seen_wrapped is alice.sos.adhoc._seen_session_keys

    def test_cross_mode_frames_rejected(self, world):
        """A legacy node's E frame offered to a session-mode node (or any
        unknown marker) is a security failure, not a crash."""
        from repro.mpc.peer import PeerID

        alice, bob = self._secured_pair(world)
        failures = bob.sos.adhoc.stats["security_failures"]
        bob.sos.adhoc.session_received_data(
            bob.sos.adhoc.session, b"E" + b"\x00" * 64, PeerID(alice.user_id, "dev-alice")
        )
        assert bob.sos.adhoc.stats["security_failures"] == failures + 1

    def test_session_frame_when_disabled_rejected(self, world):
        alice, bob = self._secured_pair(world, session_crypto=False)
        # Craft a genuine session frame from alice's material and offer it
        # to legacy-mode bob: decode must fail safely.
        from repro.mpc.peer import PeerID

        channel = SecureChannel(
            alice.user_id, bob.user_id,
            alice.sos.adhoc.keystore.private_key,
            bob.sos.adhoc.keystore.own_certificate.public_key,
            HmacDrbg.from_int(42),
        )
        frame = channel.encrypt(SosPacket.request(alice.user_id, bob.user_id, [1]).encode(), 0.0)
        failures = bob.sos.adhoc.stats["security_failures"]
        bob.sos.adhoc.session_received_data(
            bob.sos.adhoc.session, frame, PeerID(alice.user_id, "dev-alice")
        )
        assert bob.sos.adhoc.stats["security_failures"] == failures + 1


class TestTraceEquivalence:
    def test_session_and_legacy_runs_identical(self, ca, keypair_pool):
        """The reference oracle: a fixed-seed multi-user run must emit a
        byte-identical trace stream in both crypto modes."""

        def run(session_crypto):
            world = World(ca, keypair_pool, session_crypto=session_crypto)
            users = {}
            for i, name in enumerate(["alice", "bob", "carol", "dave"]):
                users[name] = world.add_user(name, position=Point(100.0 + 25.0 * i, 100.0))
            users["bob"].follow(users["alice"].user_id)
            users["carol"].follow(users["alice"].user_id)
            users["dave"].follow(users["carol"].user_id)
            world.start()
            world.sim.schedule_at(30.0, users["alice"].post, "one")
            world.sim.schedule_at(90.0, users["carol"].post, "two")
            world.sim.schedule_at(150.0, users["alice"].post, "three")
            world.run(600.0)
            return [
                (e.time, e.category, e.kind, tuple(sorted(e.data.items())))
                for e in world.sim.trace
            ]

        session_trace = run(True)
        legacy_trace = run(False)
        assert session_trace == legacy_trace
        assert any(e[1] == "message" and e[2] == "received" for e in session_trace)


class TestVerificationMemo:
    def _received_message(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        world.start()
        alice.post("memoized")
        world.run(120.0)
        assert bob.timeline()
        return alice, bob

    def test_repeat_verification_hits_memo(self, world):
        alice, bob = self._received_message(world)
        manager = bob.sos.messages
        message = alice.sos.store.get(alice.user_id, 1)
        hits = manager.stats["verify_memo_hits"]
        assert manager._verify_originator(message, alice.user_id)
        assert manager.stats["verify_memo_hits"] == hits + 1

    def test_tampered_copy_misses_memo_and_is_rejected(self, world):
        alice, bob = self._received_message(world)
        manager = bob.sos.messages
        legit = alice.sos.store.get(alice.user_id, 1)
        forged = StoredMessage(
            author_id=legit.author_id, number=legit.number,
            created_at=legit.created_at, body=b"evil body",
            signature=legit.signature, author_cert=legit.author_cert, hops=1,
        )
        hits = manager.stats["verify_memo_hits"]
        rejected = manager.stats["originator_rejected"]
        assert not manager._verify_originator(forged, alice.user_id)
        assert manager.stats["verify_memo_hits"] == hits  # no memo short-circuit
        assert manager.stats["originator_rejected"] == rejected + 1

    def test_revocation_sync_invalidates_memo(self, world):
        alice, bob = self._received_message(world)
        manager = bob.sos.messages
        message = alice.sos.store.get(alice.user_id, 1)
        assert manager._verify_originator(message, alice.user_id)  # memo warm
        world.cloud.revoke_user("alice", now=world.sim.now)
        bob.refresh_revocations()
        hits = manager.stats["verify_memo_hits"]
        rejected = manager.stats["originator_rejected"]
        # The memo was cleared: full validation runs and now rejects.
        assert not manager._verify_originator(message, alice.user_id)
        assert manager.stats["verify_memo_hits"] == hits
        assert manager.stats["originator_rejected"] == rejected + 1

    def test_memo_bounded(self, world):
        from repro.core.wire import canonical_message_bytes

        alice, bob = self._received_message(world)
        manager = bob.sos.messages
        manager.VERIFY_MEMO_LIMIT = 3
        template = alice.sos.store.get(alice.user_id, 1)
        alice_key = alice.sos.adhoc.keystore.private_key
        for number in range(50, 58):
            canonical = canonical_message_bytes(
                template.author_id, number, template.created_at, template.body
            )
            copy = StoredMessage(
                author_id=template.author_id, number=number,
                created_at=template.created_at, body=template.body,
                signature=alice_key.sign(canonical),
                author_cert=template.author_cert, hops=1,
            )
            # Validly signed: each verification fills a memo entry.
            assert manager._verify_originator(copy, alice.user_id)
        assert len(manager._verified_origins) == 3


class TestRequestBookkeeping:
    def test_expired_request_entries_pruned(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        world.start()
        alice.post("seed")
        world.run(60.0)
        manager = bob.sos.messages
        # Request numbers that will never be answered.
        manager.request_messages(alice.user_id, alice.user_id, [100, 101, 102])
        assert any(key[1] in (100, 101, 102) for key in manager._requested)
        world.run(world.sim.now + 2 * manager.request_timeout + 1.0)
        manager.request_messages(alice.user_id, alice.user_id, [103])
        assert not any(key[1] in (100, 101, 102) for key in manager._requested)

    def test_answered_request_entry_released(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        world.start()
        alice.post("answer me")
        world.run(120.0)
        assert bob.timeline()
        assert (alice.user_id, 1) not in bob.sos.messages._requested

    def test_untransferred_is_bounded(self, world):
        from collections import deque

        alice = world.add_user("alice")
        manager = alice.sos.messages
        assert isinstance(manager.untransferred, deque)
        assert manager.untransferred.maxlen == manager.UNTRANSFERRED_LIMIT
        for i in range(manager.UNTRANSFERRED_LIMIT + 100):
            manager.untransferred.append(("peer", "author", i))
        assert len(manager.untransferred) == manager.UNTRANSFERRED_LIMIT
