"""Chaos tests: randomized fault plans must leave the system consistent.

Each case samples a :meth:`FaultPlan.sample` plan (every axis active:
cloud outages, timeouts, rate limits, partial acceptance, device
crash/reboot churn, frame drops/corruption, link flaps), runs a
miniature world under it with users posting throughout, then calls
:meth:`FaultInjector.quiesce` and lets the retry machinery converge
through a quiet period.  The convergence contract (ISSUE 7):

* every app's sync queue drains — all logs fully acknowledged once
  connectivity returns,
* the cloud applied each action exactly once, in order (no duplicates,
  no gaps, despite at-least-once replays against a truncating backend),
* a fixed (sim seed, fault seed) pair reproduces the run byte-for-byte,
* anti-replay holds across crash/reconnect: a recorded handshake frame
  replayed after the victim crashes and reboots is rejected as a
  security diagnostic, never accepted and never a crash.

Marked ``chaos_smoke`` so CI can run the lane on its own
(``pytest tests -m chaos_smoke``); the tier-1 run includes it too.
"""

import pytest

from repro.core.config import SosConfig
from repro.faults import FaultInjector, FaultPlan
from repro.geo.point import Point
from repro.mpc.peer import PeerID
from tests.worldutil import World, trace_lines

pytestmark = pytest.mark.chaos_smoke

#: Chaos phase length, then a quiet period long enough for the last
#: scheduled retry (sampled cap 120 s, jitter 0.25) plus a reconnect.
CHAOS_S = 3600.0
QUIET_S = 1200.0
USERS = ("ann", "bea", "cal", "dan")
POSTS_PER_USER = 6


def _build(ca, keypair_pool, fault_seed, sim_seed=41):
    plan = FaultPlan.sample(fault_seed)
    policy = plan.retry_policy()
    world = World(ca, keypair_pool, tick=10.0, seed=sim_seed)
    config = SosConfig(relay_request_grace=0.0)
    for i, name in enumerate(USERS):
        world.add_user(
            name, position=Point(100.0 + 20.0 * i, 100.0),
            config=config, resilience=policy,
        )
    for i, name in enumerate(USERS):
        world.apps[name].follow(world.uid(USERS[(i + 1) % len(USERS)]))
    injector = FaultInjector(world.sim, plan, seed=fault_seed)
    injector.install(
        world.cloud, world.medium, world.framework, list(world.apps.values())
    )
    world.start()

    def make_post(name, k):
        def _post():
            # A crashed phone takes no input; the schedule itself is
            # fixed, so determinism is unaffected.
            if world.devices[name].powered_on:
                world.apps[name].post(f"{name} says {k}")

        return _post

    for i, name in enumerate(USERS):
        for k in range(POSTS_PER_USER):
            world.sim.schedule_at(
                300.0 + 400.0 * k + 50.0 * i, make_post(name, k),
                name=f"chaos-post:{name}",
            )
    return world, injector, plan


def _run_to_convergence(world, injector):
    world.run(CHAOS_S)
    injector.quiesce()
    world.run(CHAOS_S + QUIET_S)


class TestChaosConvergence:
    @pytest.mark.parametrize("fault_seed", [1, 2, 3, 4, 5])
    def test_logs_fully_acked_and_applied_exactly_once(
        self, ca, keypair_pool, fault_seed
    ):
        world, injector, plan = _build(ca, keypair_pool, fault_seed)
        _run_to_convergence(world, injector)
        # The plan actually did something to this world.
        activity = sum(injector.stats.values())
        if injector.connectivity is not None:
            activity += injector.connectivity.transitions
        if injector.gate is not None:
            activity += sum(injector.gate.stats.values())
        assert activity > 0
        for name in USERS:
            app = world.apps[name]
            # Convergence: nothing left pending once the world healed.
            assert app.sync_queue.pending_count == 0, (
                f"{name} still has {app.sync_queue.pending_count} pending "
                f"under plan {plan}"
            )
            # Exactly-once at the cloud: the synced log is precisely the
            # app's action log — contiguous seqs, no duplicates, no gaps —
            # even though at-least-once replays offered many duplicates.
            account = world.cloud.account_by_user_id(app.user_id)
            synced = [a.seq for a in account.synced_actions]
            assert synced == [a.seq for a in app.actions]
            assert synced == list(range(1, len(synced) + 1))

    def test_fixed_seeds_reproduce_the_run_byte_for_byte(self, ca, keypair_pool):
        def run_once(fault_seed):
            world, injector, _ = _build(ca, keypair_pool, fault_seed)
            _run_to_convergence(world, injector)
            return trace_lines(world.sim)

        first = run_once(fault_seed=2)
        assert first == run_once(fault_seed=2)
        assert first != run_once(fault_seed=3)


class TestAntiReplayAcrossCrash:
    def test_recorded_handshake_rejected_after_crash_and_reboot(
        self, ca, keypair_pool
    ):
        """Crash wipes every secure channel but *not* the anti-replay
        fingerprint record; a handshake frame recorded before the crash
        must be rejected after reboot + re-handshake."""
        world = World(ca, keypair_pool, seed=17)
        config = SosConfig(relay_request_grace=0.0)
        alice = world.add_user("alice", position=Point(100, 100), config=config)
        bob = world.add_user("bob", position=Point(120, 100), config=config)
        bob.follow(alice.user_id)

        recorded = []

        def tap(pair, data):
            if data[:1] == b"K":
                recorded.append(bytes(data))
            return data

        world.framework.frame_fault = tap
        world.start()
        alice.post("first session")
        world.run(120.0)
        assert bob.sos.adhoc.is_secured(alice.user_id)
        assert recorded, "no handshake frames crossed the link"
        world.framework.frame_fault = None

        # Crash bob mid-life; the channels die, the fingerprints persist.
        device = world.devices["bob"]
        world.medium.drop_links_of(device.device_id)
        device.power_off()
        bob.crash()
        world.run(world.sim.now + 60.0)
        device.power_on()
        bob.reboot()
        alice.post("second session")  # traffic drives the re-handshake
        world.run(world.sim.now + 300.0)
        assert bob.sos.adhoc.is_secured(alice.user_id)  # fresh handshake

        failures_before = bob.sos.adhoc.stats["security_failures"]
        for frame in recorded:
            # Every recorded frame must bounce: replayed session keys from
            # the first session, or frames signed by the wrong side — all
            # security diagnostics, never an accepted key, never a crash.
            bob.sos.adhoc.session_received_data(
                bob.sos.adhoc.session, frame,
                PeerID(alice.user_id, world.devices["alice"].device_id),
            )
        assert (
            bob.sos.adhoc.stats["security_failures"]
            == failures_before + len(recorded)
        )
