"""Property-based end-to-end invariants over randomised small worlds.

Each example builds a random deployment (positions, follow graph, posting
pattern), runs it, and checks invariants that must hold for *any*
configuration — the properties that make the middleware trustworthy rather
than merely calibrated.

Also holds the repo-wide determinism guard: the default study, run twice
in the same process with the same seed, must produce byte-identical
traces. This is the runtime contract that ``repro lint`` enforces
statically.
"""

import hashlib
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import SosConfig
from repro.geo.point import Point
from tests.worldutil import World

NAMES = ["n0", "n1", "n2", "n3", "n4"]


def build_random_world(ca, keypair_pool, seed, protocol):
    rng = random.Random(seed)
    world = World(ca, keypair_pool, seed=seed)
    config = SosConfig(routing_protocol=protocol, relay_request_grace=0.0)
    count = rng.randint(3, 5)
    for i in range(count):
        # Cluster positions so some (not all) pairs are in range.
        x = rng.uniform(0, 260)
        y = rng.uniform(0, 60)
        world.add_user(NAMES[i], position=Point(x, y), config=config)
    names = list(world.apps)
    for follower in names:
        for followee in names:
            if follower != followee and rng.random() < 0.5:
                world.apps[follower].follow(world.apps[followee].user_id)
    world.start()
    posts = rng.randint(1, 6)
    for p in range(posts):
        author = names[rng.randrange(len(names))]
        at = rng.uniform(1.0, 600.0)
        world.sim.schedule_at(at, world.apps[author].post, f"m{p}")
    world.run(1200.0)
    return world


class TestEndToEndInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_interest_based_stores_only_interesting_content(
        self, ca, keypair_pool, seed
    ):
        world = build_random_world(ca, keypair_pool, seed, "interest")
        for name, app in world.apps.items():
            interests = set(app.follows) | {app.user_id}
            for message in app.sos.store.all_messages():
                assert message.author_id in interests, (
                    f"{name} stores content from {message.author_id} "
                    "without subscribing (IB violation)"
                )

    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_message_numbers_are_contiguous_per_author(
        self, ca, keypair_pool, seed
    ):
        world = build_random_world(ca, keypair_pool, seed, "epidemic")
        for app in world.apps.values():
            own = app.sos.store.numbers_for(app.user_id)
            assert own == list(range(1, len(own) + 1))

    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_delivery_records_are_sane(self, ca, keypair_pool, seed):
        world = build_random_world(ca, keypair_pool, seed, "interest")
        from repro.metrics.collector import TraceCollector

        collector = TraceCollector(world.sim.trace)
        seen = set()
        for delivery in collector.deliveries:
            assert delivery.delay >= 0.0
            assert delivery.hops >= 1
            assert delivery.owner != delivery.author or delivery.hops >= 1
            key = (delivery.owner, delivery.author, delivery.number)
            assert key not in seen, f"duplicate delivery {key}"
            seen.add(key)
            # Every delivered message was actually created.
            assert (delivery.author, delivery.number) in collector.messages

    @given(st.integers(0, 10_000))
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_feeds_contain_only_followed_authors(self, ca, keypair_pool, seed):
        world = build_random_world(ca, keypair_pool, seed, "epidemic")
        for app in world.apps.values():
            for entry in app.timeline():
                assert entry.author_id in app.follows or entry.author_id == app.user_id

    @given(st.integers(0, 10_000))
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_no_security_failures_between_honest_nodes(self, ca, keypair_pool, seed):
        world = build_random_world(ca, keypair_pool, seed, "interest")
        for app in world.apps.values():
            assert app.sos.adhoc.stats["security_failures"] == 0


class TestDeterminism:
    """Same seed, same process, same bytes — the trace contract."""

    def test_default_study_trace_is_reproducible(self):
        from repro.experiments.gainesville import GainesvilleStudy
        from repro.experiments.scenario import ScenarioConfig
        from tests.worldutil import trace_lines

        digests = []
        for _ in range(2):
            study = GainesvilleStudy(ScenarioConfig())
            study.run()
            payload = "\n".join(trace_lines(study.sim)).encode()
            digests.append(hashlib.sha256(payload).hexdigest())
        assert digests[0] == digests[1]
