"""Tests for the ChaCha20 implementation, including the RFC 7539 vectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import chacha
from repro.crypto.chacha import ChaCha20, chacha20_decrypt, chacha20_encrypt


class TestRfc7539Vectors:
    """Official test vectors from RFC 7539."""

    def test_block_function_vector(self):
        # RFC 7539 §2.3.2
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        block = ChaCha20(key, nonce, counter=1)._block(1)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert block == expected

    def test_encryption_vector(self):
        # RFC 7539 §2.4.2
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        ciphertext = chacha20_encrypt(key, nonce, plaintext, counter=1)
        assert ciphertext.hex().startswith("6e2e359a2568f98041ba0728dd0d6981")
        assert chacha20_decrypt(key, nonce, ciphertext, counter=1) == plaintext


class TestProperties:
    @given(st.binary(min_size=0, max_size=500), st.integers(0, 2**32 - 1))
    @settings(max_examples=100)
    def test_roundtrip(self, data, counter):
        key = bytes(32)
        nonce = bytes(12)
        assert chacha20_decrypt(key, nonce, chacha20_encrypt(key, nonce, data, counter), counter) == data

    def test_different_nonces_different_streams(self):
        key = bytes(32)
        a = chacha20_encrypt(key, bytes(12), b"\x00" * 64)
        b = chacha20_encrypt(key, b"\x01" + bytes(11), b"\x00" * 64)
        assert a != b

    def test_different_keys_different_streams(self):
        nonce = bytes(12)
        a = chacha20_encrypt(bytes(32), nonce, b"\x00" * 64)
        b = chacha20_encrypt(b"\x01" + bytes(31), nonce, b"\x00" * 64)
        assert a != b

    def test_keystream_continuity_across_calls(self):
        key, nonce = bytes(32), bytes(12)
        cipher = ChaCha20(key, nonce)
        part = cipher.crypt(b"\x00" * 50) + cipher.crypt(b"\x00" * 50)
        whole = ChaCha20(key, nonce).crypt(b"\x00" * 100)
        assert part == whole


class TestVectorisedPaths:
    """The numpy multi-block path, the scalar multi-block path and the
    one-block-at-a-time block function must all emit the same stream."""

    @pytest.mark.parametrize(
        "size", [0, 1, 63, 64, 65, 100, 256, 257, 511, 512, 513, 1024, 4096]
    )
    def test_numpy_and_scalar_chunks_identical(self, size):
        key, nonce = bytes(range(32)), bytes(range(12))
        data = bytes((i * 7 + 3) % 256 for i in range(size))
        with_numpy = ChaCha20(key, nonce, counter=9).crypt(data)
        saved = chacha._np
        chacha._np = None
        try:
            without_numpy = ChaCha20(key, nonce, counter=9).crypt(data)
        finally:
            chacha._np = saved
        assert with_numpy == without_numpy

    def test_chunks_match_single_blocks(self):
        cipher = ChaCha20(bytes(range(32)), bytes(range(12)))
        chunk = cipher._chunk(7, 20)
        blocks = b"".join(cipher._block(7 + i) for i in range(20))
        assert chunk == blocks

    def test_counter_wraps_like_scalar_stream(self):
        key, nonce = bytes(32), bytes(12)
        start = 2**32 - 2  # the chunk spans the 32-bit counter wrap
        spanning = ChaCha20(key, nonce, counter=start).keystream(5 * 64)
        reference = b"".join(
            ChaCha20(key, nonce)._block((start + i) & 0xFFFFFFFF) for i in range(5)
        )
        assert spanning == reference

    def test_prefetch_only_buffers(self):
        plain = ChaCha20(bytes(32), bytes(12))
        ahead = ChaCha20(bytes(32), bytes(12))
        ahead.prefetch_blocks = 128
        pieces = [ahead.crypt(b"\x05" * n) for n in (10, 700, 1, 64, 3000)]
        whole = plain.crypt(b"\x05" * sum(len(p) for p in pieces))
        assert b"".join(pieces) == whole


class TestValidation:
    def test_bad_key_size(self):
        with pytest.raises(ValueError):
            ChaCha20(bytes(16), bytes(12))

    def test_bad_nonce_size(self):
        with pytest.raises(ValueError):
            ChaCha20(bytes(32), bytes(8))

    def test_bad_counter(self):
        with pytest.raises(ValueError):
            ChaCha20(bytes(32), bytes(12), counter=2**32)
