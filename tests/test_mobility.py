"""Tests for mobility models."""

import random

import pytest

from repro.geo.places import Place, PlaceKind
from repro.geo.point import Point
from repro.geo.region import Region
from repro.mobility import (
    DailySchedule,
    LevyWalk,
    RandomWaypoint,
    StationaryModel,
    SyntheticCity,
    TraceReplayModel,
    WaypointTrace,
    WorkingDayMovement,
)
from repro.mobility.trace_model import record_trace

REGION = Region(0, 0, 1000, 1000)
DAY = 86_400.0
HOUR = 3_600.0


class TestStationary:
    def test_never_moves(self):
        model = StationaryModel(Point(5, 5))
        assert model.position_at(0.0) == Point(5, 5)
        assert model.position_at(1e6) == Point(5, 5)


class TestRandomWaypoint:
    def test_stays_in_region(self):
        model = RandomWaypoint(REGION, random.Random(1))
        for t in range(0, 7200, 60):
            assert REGION.contains(model.position_at(float(t)))

    def test_actually_moves(self):
        model = RandomWaypoint(REGION, random.Random(2), pause_range=(0.0, 0.0))
        p0 = model.position_at(0.0)
        p1 = model.position_at(3600.0)
        assert p0.distance_to(p1) > 0

    def test_speed_bound_respected(self):
        model = RandomWaypoint(REGION, random.Random(3), speed_range=(1.0, 2.0), pause_range=(0.0, 0.0))
        last = model.position_at(0.0)
        for t in range(10, 600, 10):
            current = model.position_at(float(t))
            assert last.distance_to(current) <= 2.0 * 10 + 1e-6
            last = current

    def test_time_going_backwards_raises(self):
        model = RandomWaypoint(REGION, random.Random(4))
        model.position_at(100.0)
        with pytest.raises(ValueError):
            model.position_at(50.0)

    def test_query_same_time_is_stable(self):
        model = RandomWaypoint(REGION, random.Random(5))
        assert model.position_at(60.0) == model.position_at(60.0)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypoint(REGION, random.Random(1), speed_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypoint(REGION, random.Random(1), pause_range=(5.0, 1.0))

    def test_determinism(self):
        a = RandomWaypoint(REGION, random.Random(6))
        b = RandomWaypoint(REGION, random.Random(6))
        for t in (60.0, 120.0, 3600.0):
            assert a.position_at(t) == b.position_at(t)


class TestLevyWalk:
    def test_stays_in_region(self):
        model = LevyWalk(REGION, random.Random(7))
        for t in range(0, 7200, 60):
            assert REGION.contains(model.position_at(float(t)))

    def test_step_length_distribution_is_heavy_tailed(self):
        model = LevyWalk(REGION, random.Random(8), alpha=1.2, min_step=10, max_step=5000)
        lengths = [model._draw_step_length() for _ in range(5000)]
        assert all(10 <= s <= 5000 for s in lengths)
        short = sum(1 for s in lengths if s < 100)
        long = sum(1 for s in lengths if s > 500)
        assert short > long > 0  # many short hops, rare long flights

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LevyWalk(REGION, random.Random(1), alpha=0.0)
        with pytest.raises(ValueError):
            LevyWalk(REGION, random.Random(1), min_step=100, max_step=10)


def _make_schedule(rng=None, **overrides):
    city_rng = rng or random.Random(10)
    region = Region(0, 0, 11000, 8000)
    city = SyntheticCity.gainesville_like(region, city_rng, num_homes=3)
    defaults = dict(
        home=city.homes[0], work=city.campus, social_places=city.social_venues
    )
    defaults.update(overrides)
    return DailySchedule(**defaults), city


class TestWorkingDay:
    def test_night_time_is_at_home(self):
        schedule, _ = _make_schedule()
        model = WorkingDayMovement(schedule, random.Random(11))
        for day in range(3):
            # 3 AM: everyone is asleep at home.
            p = model.position_at(day * DAY + 3 * HOUR)
            assert p.distance_to(schedule.home.location) <= schedule.home.radius + 1.0

    def test_weekday_reaches_campus(self):
        schedule, _ = _make_schedule(weekday_attendance=1.0, weekday_social_prob=0.0)
        model = WorkingDayMovement(schedule, random.Random(12))
        on_campus = 0
        for hour in range(9, 18):
            p = model.position_at(hour * HOUR)
            if p.distance_to(schedule.work.location) <= schedule.work.radius + 1.0:
                on_campus += 1
        assert on_campus >= 2

    def test_sleep_stationarity_5_to_8_hours(self):
        """Paper §VI-B: nodes stationary at least 5-8 h/day (sleep)."""
        schedule, _ = _make_schedule()
        model = WorkingDayMovement(schedule, random.Random(13))
        for day in range(5):
            assert model.stationary_hours_in_day(day) >= 5.0

    def test_appointment_is_honoured(self):
        schedule, city = _make_schedule(weekday_attendance=0.0, weekend_outing_prob=0.0)
        model = WorkingDayMovement(schedule, random.Random(14))
        venue = city.social_venues[0]
        start = 13 * HOUR
        model.add_appointment(start, venue, 2 * HOUR)
        p = model.position_at(start + HOUR)
        assert p.distance_to(venue.location) <= venue.radius + 1.0
        # Back home by night.
        p_night = model.position_at(23.5 * HOUR)
        assert p_night.distance_to(schedule.home.location) <= schedule.home.radius + 1.0

    def test_appointment_after_generation_rejected(self):
        schedule, city = _make_schedule()
        model = WorkingDayMovement(schedule, random.Random(15))
        model.position_at(1.0)  # generates day 0
        with pytest.raises(ValueError):
            model.add_appointment(2 * HOUR, city.social_venues[0], HOUR)

    def test_two_participants_meet_at_shared_appointment(self):
        rng = random.Random(16)
        schedule_a, city = _make_schedule(rng=rng, weekday_attendance=0.0, weekend_outing_prob=0.0)
        schedule_b = DailySchedule(
            home=city.homes[1], work=city.campus, social_places=city.social_venues,
            weekday_attendance=0.0, weekend_outing_prob=0.0,
        )
        a = WorkingDayMovement(schedule_a, random.Random(17))
        b = WorkingDayMovement(schedule_b, random.Random(18))
        venue = city.social_venues[0]
        for model in (a, b):
            model.add_appointment(12 * HOUR, venue, 2 * HOUR)
        # Mid-meetup, both are within the venue: distance bounded by its
        # diameter, i.e. within radio range of each other.
        pa = a.position_at(13 * HOUR)
        pb = b.position_at(13 * HOUR)
        assert pa.distance_to(pb) <= 2 * venue.radius + 2.0

    def test_current_place_reports_stay(self):
        schedule, _ = _make_schedule()
        model = WorkingDayMovement(schedule, random.Random(19))
        assert model.current_place(3 * HOUR) is schedule.home


class TestSyntheticCity:
    def test_layout_counts(self):
        region = Region(0, 0, 11000, 8000)
        city = SyntheticCity.gainesville_like(region, random.Random(20), num_homes=10, num_venues=6)
        assert len(city.homes) == 10
        assert len(city.social_venues) == 6
        assert len(city.all_places()) == 17

    def test_homes_avoid_campus_core(self):
        region = Region(0, 0, 11000, 8000)
        city = SyntheticCity.gainesville_like(region, random.Random(21), campus_radius=400)
        for home in city.homes:
            assert home.location.distance_to(city.campus.location) > 400 * 1.5

    def test_all_places_inside_region(self):
        region = Region(0, 0, 11000, 8000)
        city = SyntheticCity.gainesville_like(region, random.Random(22))
        for place in city.all_places():
            assert region.contains(place.location)

    def test_kinds(self):
        region = Region(0, 0, 11000, 8000)
        city = SyntheticCity.gainesville_like(region, random.Random(23))
        assert city.campus.kind is PlaceKind.WORK
        assert all(h.kind is PlaceKind.HOME for h in city.homes)
        assert all(v.kind is PlaceKind.SOCIAL for v in city.social_venues)


class TestTraces:
    def test_record_and_replay(self):
        model = RandomWaypoint(REGION, random.Random(24))
        trace = record_trace(model, "n1", duration=3600, interval=60)
        replay = TraceReplayModel(trace)
        fresh = RandomWaypoint(REGION, random.Random(24))
        for t in range(0, 3600, 60):
            assert replay.position_at(float(t)) == fresh.position_at(float(t))

    def test_interpolation_between_samples(self):
        trace = WaypointTrace("n1")
        trace.add(0.0, Point(0, 0))
        trace.add(100.0, Point(100, 0))
        replay = TraceReplayModel(trace)
        assert replay.position_at(50.0) == Point(50, 0)

    def test_clamping_outside_range(self):
        trace = WaypointTrace("n1")
        trace.add(10.0, Point(1, 1))
        trace.add(20.0, Point(2, 2))
        replay = TraceReplayModel(trace)
        assert replay.position_at(0.0) == Point(1, 1)
        assert replay.position_at(100.0) == Point(2, 2)

    def test_file_roundtrip(self, tmp_path):
        model = RandomWaypoint(REGION, random.Random(25))
        trace = record_trace(model, "node-7", duration=600, interval=60)
        path = tmp_path / "trace.txt"
        with open(path, "w") as fh:
            trace.write(fh)
        with open(path) as fh:
            loaded = WaypointTrace.read_all(fh)
        assert set(loaded) == {"node-7"}
        assert len(loaded["node-7"].samples) == len(trace.samples)

    def test_non_monotonic_sample_rejected(self):
        trace = WaypointTrace("n1")
        trace.add(10.0, Point(0, 0))
        with pytest.raises(ValueError):
            trace.add(5.0, Point(1, 1))

    def test_malformed_file_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("n1 1.0 2.0\n")
        with pytest.raises(ValueError):
            with open(path) as fh:
                WaypointTrace.read_all(fh)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayModel(WaypointTrace("empty"))
