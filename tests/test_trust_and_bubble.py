"""Tests for the trust manager, trust-gated routing and BubbleRap."""

import json

import pytest

from repro.core.routing import BubbleRapRouting, EpidemicRouting
from repro.core.trust import TrustGatedRouting, TrustManager
from repro.storage.messagestore import StoredMessage
from tests.test_routing_protocols import ALICE, BOB, CAROL, FakeServices, msg


class TestTrustManager:
    def test_never_met_scores_zero(self):
        trust = TrustManager()
        assert trust.score("stranger", now=100.0) == 0.0

    def test_score_grows_with_encounters(self):
        trust = TrustManager()
        score = 0.0
        for i in range(5):
            start = i * 1000.0
            trust.encounter_started(ALICE, start)
            trust.encounter_ended(ALICE, start + 600.0)
            new_score = trust.score(ALICE, start + 600.0)
            assert new_score > score
            score = new_score

    def test_score_bounded_by_one(self):
        trust = TrustManager()
        for i in range(100):
            trust.encounter_started(ALICE, i * 100.0)
            trust.encounter_ended(ALICE, i * 100.0 + 99.0)
        assert trust.score(ALICE, 10_000.0) <= 1.0

    def test_recency_decay(self):
        trust = TrustManager()
        trust.encounter_started(ALICE, 0.0)
        trust.encounter_ended(ALICE, 3600.0)
        fresh = trust.score(ALICE, 3600.0)
        stale = trust.score(ALICE, 3600.0 + 30 * 86400.0)
        assert stale < fresh

    def test_open_encounter_counts_duration(self):
        trust = TrustManager()
        trust.encounter_started(ALICE, 0.0)
        early = trust.score(ALICE, 60.0)
        later = trust.score(ALICE, 7200.0)
        assert later > early

    def test_double_start_is_one_encounter(self):
        trust = TrustManager()
        trust.encounter_started(ALICE, 0.0)
        trust.encounter_started(ALICE, 10.0)
        trust.encounter_ended(ALICE, 100.0)
        assert trust.record_of(ALICE).count == 1

    def test_ranked(self):
        trust = TrustManager()
        for _ in range(5):
            trust.encounter_started(ALICE, 0.0)
            trust.encounter_ended(ALICE, 600.0)
        trust.encounter_started(CAROL, 0.0)
        trust.encounter_ended(CAROL, 60.0)
        ranked = trust.ranked(now=600.0)
        assert ranked[0][0] == ALICE

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TrustManager(weights=(0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            TrustManager(count_scale=0.0)


class TestTrustGatedRouting:
    def _gated(self, min_trust=0.25):
        router = TrustGatedRouting(EpidemicRouting(), min_trust=min_trust)
        services = FakeServices(user_id=BOB)
        router.attach(services)
        return router, services

    def test_low_trust_peer_refused_relayed_content(self):
        router, services = self._gated()
        services.store.add(msg(ALICE, 1, hops=1))  # relayed content
        served = router.serve_request(CAROL, ALICE, [1])
        assert served == []
        assert router.refused == 1

    def test_own_content_never_gated(self):
        router, services = self._gated()
        services.store.add(msg(BOB, 1))
        assert router.serve_request(CAROL, BOB, [1])

    def test_trusted_peer_served(self):
        router, services = self._gated(min_trust=0.1)
        services.store.add(msg(ALICE, 1, hops=1))
        # Build trust through encounters.
        for i in range(6):
            services._now = i * 1000.0
            router.on_peer_secured(CAROL)
            services._now = i * 1000.0 + 900.0
            router.on_peer_lost(CAROL)
        services._now = 6000.0
        assert router.serve_request(CAROL, ALICE, [1])

    def test_delegation_to_inner(self):
        router, services = self._gated()
        router.on_peer_discovered(ALICE, {ALICE: 2})
        assert services.connects == [ALICE]  # epidemic behaviour preserved

    def test_name_composition(self):
        router, _ = self._gated()
        assert router.name == "trusted-epidemic"

    def test_invalid_min_trust(self):
        with pytest.raises(ValueError):
            TrustGatedRouting(EpidemicRouting(), min_trust=1.5)


class TestBubbleRap:
    def _bubble(self, subscriptions=()):
        router = BubbleRapRouting()
        services = FakeServices(user_id=BOB, subscriptions=subscriptions)
        router.attach(services)
        return router, services

    def test_centrality_counts_recent_distinct_peers(self):
        router, services = self._bubble()
        services._now = 0.0
        router.on_peer_secured(ALICE)
        router.on_peer_secured(CAROL)
        router.on_peer_secured(ALICE)  # duplicate
        assert router.centrality() == 2
        # Outside the window, encounters expire.
        services._now = router.WINDOW + 10.0
        router.on_peer_secured("u00000000d")
        assert router.centrality() == 1

    def test_familiarity_builds_community(self):
        router, services = self._bubble()
        services._now = 0.0
        router.on_peer_secured(ALICE)
        services._now = router.FAMILIARITY_THRESHOLD + 1.0
        router.on_peer_lost(ALICE)
        assert ALICE in router.community

    def test_short_contact_no_community(self):
        router, services = self._bubble()
        services._now = 0.0
        router.on_peer_secured(ALICE)
        services._now = 60.0
        router.on_peer_lost(ALICE)
        assert ALICE not in router.community

    def test_serves_up_centrality_gradient(self):
        router, services = self._bubble()
        services.store.add(msg(ALICE, 1, hops=1))
        # Peer with higher centrality gets the message...
        router.on_control(CAROL, json.dumps({"centrality": 5, "community": []}).encode())
        assert router.serve_request(CAROL, ALICE, [1])

    def test_refuses_down_gradient_without_destination(self):
        router, services = self._bubble()
        services.store.add(msg(ALICE, 1, hops=1))
        # Give ourselves high centrality.
        services._now = 0.0
        for peer in ("u00000000x", "u00000000y", "u00000000z"):
            router.on_peer_secured(peer)
        router.on_control(CAROL, json.dumps({"centrality": 0, "community": []}).encode())
        assert router.serve_request(CAROL, ALICE, [1]) == []

    def test_destination_community_overrides_gradient(self):
        router, services = self._bubble()
        services.store.add(msg(ALICE, 1, hops=1))
        services._now = 0.0
        for peer in ("u00000000x", "u00000000y", "u00000000z"):
            router.on_peer_secured(peer)
        router.subscriber_hints[ALICE] = {"u00000000s"}
        router.on_control(
            CAROL,
            json.dumps({"centrality": 0, "community": ["u00000000s"]}).encode(),
        )
        assert router.serve_request(CAROL, ALICE, [1])

    def test_direct_subscriber_always_served(self):
        router, services = self._bubble()
        services.store.add(msg(ALICE, 1, hops=1))
        router.subscriber_hints[ALICE] = {CAROL}
        assert router.serve_request(CAROL, ALICE, [1])

    def test_malformed_control_ignored(self):
        router, _ = self._bubble()
        router.on_control(ALICE, b"\x00 garbage")  # must not raise

    def test_control_exchanged_on_secure(self):
        router, services = self._bubble()
        router.on_peer_discovered(ALICE, {ALICE: 1})
        router.on_peer_secured(ALICE)
        assert services.controls
        payload = json.loads(services.controls[0][1])
        assert "centrality" in payload and "community" in payload


class TestBubbleEndToEnd:
    def test_bubble_delivers_in_small_world(self, ca, keypair_pool):
        from repro.core.config import SosConfig
        from tests.worldutil import World

        world = World(ca, keypair_pool)
        config = SosConfig(routing_protocol="bubble", relay_request_grace=0.0)
        alice = world.add_user("alice", config=config)
        bob = world.add_user("bob", config=config)
        bob.follow(alice.user_id)
        world.start()
        alice.post("bubble works")
        world.run(180.0)
        assert [e.post.text for e in bob.timeline()] == ["bubble works"]
