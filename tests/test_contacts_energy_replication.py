"""Tests for contact analysis, energy metering and multi-seed replication."""

import pytest

from repro.experiments import ReplicationStudy, ScenarioConfig
from repro.geo.point import Point
from repro.metrics.contacts import ContactAnalysis
from repro.mobility.base import StationaryModel
from repro.net import Device, EnergyMeter, Medium, P2P_WIFI
from repro.net.contact import ContactTracker
from repro.net.energy import ENERGY_PER_BYTE_J, LINK_POWER_W, SCAN_POWER_W
from repro.sim import Simulator


class TestContactAnalysis:
    def _tracker(self):
        tracker = ContactTracker()
        tracker.contact_up("a", "b", P2P_WIFI, 0.0)
        tracker.contact_down("a", "b", 600.0)
        tracker.contact_up("a", "b", P2P_WIFI, 3600.0)
        tracker.contact_down("a", "b", 4200.0)
        tracker.contact_up("a", "c", P2P_WIFI, 100.0)
        tracker.contact_down("a", "c", 200.0)
        return tracker

    def test_summary_quantities(self):
        analysis = ContactAnalysis.from_tracker(self._tracker())
        assert analysis.total_contacts == 3
        assert analysis.mean_contact_duration() == pytest.approx((600 + 600 + 100) / 3)
        assert analysis.median_inter_contact_hours() == pytest.approx((3600 - 600) / 3600.0)
        assert analysis.pairs_with_repeat_contacts() == 1

    def test_degree_distribution(self):
        analysis = ContactAnalysis.from_tracker(self._tracker())
        assert analysis.degree_distribution() == {"a": 2, "b": 1, "c": 1}

    def test_empty_tracker(self):
        analysis = ContactAnalysis.from_tracker(ContactTracker())
        assert analysis.total_contacts == 0
        assert analysis.mean_contact_duration() is None
        assert analysis.median_inter_contact_hours() is None

    def test_summary_rows_render(self):
        rows = ContactAnalysis.from_tracker(self._tracker()).summary_rows()
        assert any("contacts" == label for label, _ in rows)
        assert all(isinstance(value, str) for _, value in rows)


class TestEnergyMeter:
    def _world(self, distance=30.0):
        sim = Simulator(seed=1)
        medium = Medium(sim, tick_interval=10.0)
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", StationaryModel(Point(distance, 0))))
        return sim, medium

    def test_scan_energy_accumulates_while_on(self):
        sim, medium = self._world(distance=5000.0)  # never in range
        meter = EnergyMeter(sim, medium)
        medium.start()
        sim.run(until=1000.0)
        meter.finalise()
        assert meter.budget_of("a").scan_j == pytest.approx(1000.0 * SCAN_POWER_W)
        assert meter.budget_of("a").link_j == 0.0

    def test_link_energy_charged_to_both_sides(self):
        sim, medium = self._world()
        meter = EnergyMeter(sim, medium)
        medium.start()
        sim.run(until=500.0)
        medium.stop()  # closes the link -> emits contact down
        meter.finalise()
        assert meter.budget_of("a").link_j > 0
        assert meter.budget_of("a").link_j == pytest.approx(meter.budget_of("b").link_j)
        # Link existed essentially the whole run.
        assert meter.budget_of("a").link_j == pytest.approx(500.0 * LINK_POWER_W, rel=0.05)

    def test_power_off_stops_scan_energy(self):
        sim, medium = self._world(distance=5000.0)
        meter = EnergyMeter(sim, medium)
        medium.start()
        sim.schedule_at(200.0, lambda: (medium.devices["a"].power_off(),
                                        meter.note_power_off("a")))
        sim.run(until=1000.0)
        meter.finalise()
        assert meter.budget_of("a").scan_j == pytest.approx(200.0 * SCAN_POWER_W)

    def test_transfer_energy(self):
        sim, medium = self._world()
        meter = EnergyMeter(sim, medium)
        meter.note_transfer("a", 1_000_000)
        assert meter.budget_of("a").transfer_j == pytest.approx(1_000_000 * ENERGY_PER_BYTE_J)

    def test_bulk_charge_and_total(self):
        sim, medium = self._world(distance=5000.0)
        meter = EnergyMeter(sim, medium)
        meter.charge_transfers_from_stats({"a": 1000, "b": 2000})
        sim.run(until=10.0)
        meter.finalise()
        total = meter.total_joules()
        assert total == pytest.approx(
            3000 * ENERGY_PER_BYTE_J + 2 * 10.0 * SCAN_POWER_W
        )

    def test_finalise_idempotent(self):
        sim, medium = self._world(distance=5000.0)
        meter = EnergyMeter(sim, medium)
        sim.run(until=100.0)
        meter.finalise()
        first = meter.total_joules()
        meter.finalise()
        assert meter.total_joules() == first


class TestReplicationStudy:
    def test_aggregates_across_seeds(self):
        study = ReplicationStudy(
            base_config=ScenarioConfig(duration_days=1, total_posts=15),
            seeds=(11, 12, 13),
        )
        summaries = study.run()
        names = [s.name for s in summaries]
        assert "disseminations" in names and "one_hop_fraction" in names
        for summary in summaries:
            assert summary.minimum <= summary.mean <= summary.maximum
            assert summary.stdev >= 0.0

    def test_report_renders(self):
        study = ReplicationStudy(
            base_config=ScenarioConfig(duration_days=1, total_posts=10),
            seeds=(21, 22),
        )
        study.run()
        text = study.report()
        assert "stdev" in text and "paper" in text

    def test_needs_two_seeds(self):
        with pytest.raises(ValueError):
            ReplicationStudy(seeds=(1,))
