"""Integration tests of the experiment harness (scaled-down runs)."""

import pytest

from repro.experiments import GainesvilleStudy, ProtocolComparison, ScenarioConfig
from repro.experiments.gainesville import PAPER_VALUES


def small_config(**overrides):
    defaults = dict(seed=11, duration_days=2, total_posts=30)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


@pytest.fixture(scope="module")
def small_result():
    return GainesvilleStudy(small_config()).run()


class TestGainesvilleStudy:
    def test_social_graph_statistics_match_paper_exactly(self, small_result):
        stats = small_result.social_stats
        assert round(stats["density_directed"], 2) == 0.64
        assert round(stats["avg_shortest_path"], 1) == 1.3
        assert stats["diameter"] == 2
        assert stats["radius"] == 1
        assert round(stats["transitivity"], 2) == 0.80

    def test_all_posts_created(self, small_result):
        assert small_result.unique_messages == 30

    def test_subscriptions_evaluated_is_46(self, small_result):
        assert len(small_result.evaluated_subscriptions) == 46

    def test_messages_disseminate(self, small_result):
        assert small_result.disseminations > 0
        assert small_result.delay.all_hops.n > 0

    def test_one_hop_dominates(self, small_result):
        assert small_result.one_hop_fraction and small_result.one_hop_fraction > 0.5

    def test_overlay_collects_both_kinds(self, small_result):
        overlay = small_result.overlay
        assert overlay.points("created")
        assert overlay.points("disseminated")
        assert overlay.coverage_km2("created") > 0

    def test_report_renders_every_paper_metric(self, small_result):
        report = small_result.report()
        for metric in PAPER_VALUES:
            assert metric in report

    def test_no_security_failures_among_honest_users(self, small_result):
        assert small_result.security_stats.get("security_failures", 0) == 0

    def test_cloud_off_after_signup(self):
        study = GainesvilleStudy(small_config())
        study.build()
        assert study.cloud.online is False
        assert study.cloud.stats["certificates_issued"] == 10

    def test_determinism_same_seed(self):
        a = GainesvilleStudy(small_config(seed=77)).run()
        b = GainesvilleStudy(small_config(seed=77)).run()
        assert a.disseminations == b.disseminations
        assert a.delay.paper_points() == b.delay.paper_points()
        assert a.delivery.paper_points() == b.delivery.paper_points()

    def test_different_seeds_differ(self):
        a = GainesvilleStudy(small_config(seed=77)).run()
        b = GainesvilleStudy(small_config(seed=78)).run()
        assert (
            a.disseminations != b.disseminations
            or a.delay.paper_points() != b.delay.paper_points()
        )

    def test_scaled_population(self):
        config = ScenarioConfig(seed=5, num_users=6, duration_days=1, total_posts=8)
        result = GainesvilleStudy(config).run()
        assert result.unique_messages == 8
        assert len(result.evaluated_subscriptions) > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(num_users=1)
        with pytest.raises(ValueError):
            ScenarioConfig(duration_days=0)
        with pytest.raises(ValueError):
            ScenarioConfig(posting_hours=(25, 3))


class TestProtocolComparison:
    def test_compares_protocols_on_identical_world(self):
        comparison = ProtocolComparison(
            base_config=small_config(total_posts=20),
            protocols=("interest", "epidemic", "direct"),
        )
        outcomes = comparison.run()
        assert [o.protocol for o in outcomes] == ["interest", "epidemic", "direct"]
        by_name = comparison.outcomes
        # Epidemic replicates at least as much as IB; direct at most as much.
        assert by_name["epidemic"].disseminations >= by_name["interest"].disseminations
        assert by_name["direct"].disseminations <= by_name["interest"].disseminations
        # Direct delivery is 1-hop by construction.
        if by_name["direct"].one_hop_fraction is not None:
            assert by_name["direct"].one_hop_fraction == 1.0

    def test_report_renders(self):
        comparison = ProtocolComparison(
            base_config=small_config(total_posts=10),
            protocols=("interest", "epidemic"),
        )
        comparison.run()
        text = comparison.report()
        assert "interest" in text and "epidemic" in text


class TestBootstrapAndSocialGraphKnobs:
    """The PR-5 knobs: bulk day-0 wiring and the generator family."""

    def test_bulk_and_per_edge_wiring_equivalent(self):
        """Everything the analysis consumes must be identical across
        wiring modes: the delivery/delay traces byte-for-byte, the
        subscription windows the collector derives (bulk mode's
        aggregated follow_many events expand to the per-edge windows),
        and the follow lists recorded in the §V action logs (the bulk
        mode's compact FOLLOW_MANY records expand to the oracle's
        per-edge FOLLOW sequence)."""
        from tests.worldutil import followed_sequences, subscription_windows, trace_lines

        traces, windows, followed = {}, {}, {}
        for bulk in (True, False):
            study = GainesvilleStudy(
                small_config(num_users=12, duration_days=1, total_posts=12,
                             bulk_bootstrap=bulk)
            )
            study.run()
            traces[bulk] = trace_lines(study.sim, exclude_category="social")
            windows[bulk] = subscription_windows(study.sim)
            followed[bulk] = followed_sequences(study.apps)
        assert any("|message|received|" in line for line in traces[True])
        assert traces[True] == traces[False]
        assert windows[True] and windows[True] == windows[False]
        assert followed[True] == followed[False]

    def test_bulk_wiring_costs_one_round_and_one_record_per_user(self):
        from repro.storage.actionlog import ActionKind

        study = GainesvilleStudy(
            small_config(num_users=12, duration_days=1, total_posts=0)
        )
        study.build()
        followers = {a for a, _ in study.social_graph.edges()}
        assert study.cloud.stats["syncs"] == len(followers)
        for node in followers:
            app = study.apps[node]
            batched = app.actions.of_kind(ActionKind.FOLLOW_MANY)
            assert len(batched) == 1
            assert set(batched[0].payload["targets"]) == {
                study.user_ids[b] for b in study.social_graph.following(node)
            }

    def test_social_graph_knob_selects_generator(self):
        study = GainesvilleStudy(
            small_config(num_users=16, duration_days=1, total_posts=0,
                         social_graph="degree_bounded")
        )
        study.build()
        assert study.social_graph_kind == "degree_bounded"
        assert all(
            study.social_graph.out_degree(n) <= 12 for n in study.social_graph.nodes
        )
        # Every graph edge became a day-0 follow.
        total_follows = sum(len(app.follows) for app in study.apps.values())
        assert total_follows == study.social_graph.edge_count

    def test_sparse_graph_study_runs_end_to_end(self):
        config = small_config(num_users=14, duration_days=1, total_posts=10,
                              social_graph="powerlaw_cluster")
        study = GainesvilleStudy(config)
        result = study.run()
        assert result.unique_messages == 10
        assert len(result.evaluated_subscriptions) == study.social_graph.edge_count

    def test_ten_user_default_still_uses_figure4a(self):
        study = GainesvilleStudy(small_config(duration_days=1, total_posts=0))
        study.build()
        assert study.social_graph_kind == "figure4a"
        assert study.social_graph.edge_count == 58

    def test_invalid_social_graph_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(social_graph="smallworld")
        with pytest.raises(ValueError):
            ScenarioConfig(social_graph="figure4a", num_users=12)
