"""Tests for the sharded cross-process contact engine.

The load-bearing property: for any shard count (and in the serial
fallback) the sharded engine produces **byte-identical traces** to the
batched engine — the spatial partition, halo exchange and merge are
pure implementation detail.  Plus pool lifecycle, mid-run population
churn, knob validation and engine resolution.
"""

import multiprocessing
import random

import pytest

from repro.geo.point import Point
from repro.geo.region import Region
from repro.mobility.base import StationaryModel
from repro.mobility.random_waypoint import RandomWaypoint
from repro.net.device import Device
from repro.net.medium import Medium
from repro.net.medium_engines.batched import BatchedEngine
from repro.net.medium_engines.per_device import PerDeviceEngine
from repro.net.medium_engines.sharded import ShardedEngine
from repro.net.radio import BLUETOOTH, DEFAULT_RADIO_SET
from repro.sim.engine import Simulator


def _populate(medium, population=60, span=1500.0):
    region = Region(0, 0, span, span)
    for i in range(population):
        rng = random.Random(1000 + i)
        mobility = (
            StationaryModel(region.random_point(rng))
            if i % 5 == 0
            else RandomWaypoint(region, rng)
        )
        radios = (DEFAULT_RADIO_SET, (BLUETOOTH,))[i % 2]
        medium.add_device(Device(f"d{i:03d}", mobility, radios=radios))


def _churn_world(shards, halo_m=None):
    """A world with power cycles, a mid-run remove AND a mid-run add —
    the population churn the pending-add/remove plumbing must survive."""
    sim = Simulator(seed=11)
    medium = Medium(sim, tick_interval=30.0, shards=shards, halo_m=halo_m)
    _populate(medium)
    medium.start()
    sim.schedule_at(95.0, medium.devices["d001"].power_off)
    sim.schedule_at(215.0, medium.devices["d001"].power_on)
    sim.schedule_at(155.0, medium.remove_device, "d007")

    def add_latecomer():
        medium.add_device(
            Device("d_late", RandomWaypoint(Region(0, 0, 1500, 1500), random.Random(77)))
        )

    sim.schedule_at(245.0, add_latecomer)
    sim.run(until=600.0)
    medium.stop()
    trace = [
        (e.time, e.category, e.kind, tuple(sorted(e.data.items())))
        for e in sim.trace
    ]
    return trace, medium


class TestShardedTraceEquivalence:
    @pytest.fixture(scope="class")
    def batched_run(self):
        return _churn_world(shards=0)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_trace_identical_to_batched(self, batched_run, shards):
        batched_trace, batched_medium = batched_run
        sharded_trace, sharded_medium = _churn_world(shards=shards)
        assert sharded_medium.engine.forked, "expected a real forked pool"
        assert sharded_trace == batched_trace
        assert any(event[1] == "contact" for event in sharded_trace)
        # The candidate set is identical, pair for pair.
        assert sharded_medium.pairs_examined == batched_medium.pairs_examined

    def test_halo_knob_only_widens(self, batched_run):
        batched_trace, _ = batched_run
        wide_trace, wide_medium = _churn_world(shards=2, halo_m=500.0)
        assert wide_trace == batched_trace
        narrow_trace, narrow_medium = _churn_world(shards=2, halo_m=1.0)
        # Below the sweep radius the knob is a no-op, never a narrowing.
        assert narrow_trace == batched_trace
        assert wide_medium.engine.ghost_snapshots >= narrow_medium.engine.ghost_snapshots

    def test_serial_fallback_trace_identical(self, batched_run, monkeypatch):
        batched_trace, _ = batched_run
        monkeypatch.setattr(
            multiprocessing,
            "get_context",
            lambda method: (_ for _ in ()).throw(ValueError(method)),
        )
        serial_trace, serial_medium = _churn_world(shards=2)
        assert not serial_medium.engine.forked
        assert serial_trace == batched_trace

    def test_ghost_snapshots_flow_across_bands(self):
        _, medium = _churn_world(shards=4)
        # 60 walkers in 1.5 km with a 120 m grid: boundary pairs exist,
        # so halo snapshots must have been exchanged.
        assert medium.engine.ghost_snapshots > 0
        assert medium.engine.extra_distance_checks > 0
        assert medium.distance_checks >= medium.engine.extra_distance_checks


class TestShardedLifecycle:
    def test_pool_builds_lazily_and_stop_is_final(self):
        sim = Simulator(seed=5)
        medium = Medium(sim, tick_interval=10.0, shards=2)
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", StationaryModel(Point(30, 0))))
        assert not medium.engine.forked  # no tick yet, no processes
        medium.start()
        sim.run(until=25.0)
        assert medium.link_between("a", "b") is not None
        medium.stop()
        with pytest.raises(RuntimeError, match="cannot tick after stop"):
            medium.tick()

    def test_engine_resolution(self):
        sim = Simulator(seed=1)
        assert isinstance(Medium(sim).engine, BatchedEngine)
        assert isinstance(Medium(sim, batched=False).engine, PerDeviceEngine)
        sharded = Medium(sim, shards=3, batched=False)
        assert isinstance(sharded.engine, ShardedEngine)
        assert sharded.engine.shards == 3
        assert sharded.engine.name == "sharded"

    def test_knob_validation(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError, match="shards"):
            Medium(sim, shards=-1)
        with pytest.raises(ValueError, match="halo_m"):
            Medium(sim, shards=2, halo_m=0.0)

    def test_instrumentation_survives_engine_swap(self):
        # The scale-test contract: tick_count / pairs_examined /
        # pair_checks_skipped / tick_cpu_s live on the Medium whatever
        # the engine.
        sim = Simulator(seed=2)
        medium = Medium(sim, tick_interval=10.0, shards=2)
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", StationaryModel(Point(30, 0))))
        medium.start()
        sim.run(until=35.0)
        assert medium.tick_count == 4
        assert medium.pairs_examined >= 1
        assert medium.tick_cpu_s >= 0.0
        medium.stop()
