"""Edge-case tests for the working-day mobility internals."""

import random

import pytest

from repro.geo.places import Place, PlaceKind
from repro.geo.point import Point
from repro.geo.region import Region
from repro.mobility import DailySchedule, SyntheticCity, WorkingDayMovement

DAY = 86_400.0
HOUR = 3_600.0


def make_city(seed=30):
    return SyntheticCity.gainesville_like(
        Region(0, 0, 11000, 8000), random.Random(seed), num_homes=3
    )


class TestScheduleParameters:
    def test_speed_for_walk_vs_drive(self):
        city = make_city()
        schedule = DailySchedule(home=city.homes[0], work=city.campus)
        rng = random.Random(1)
        walk = schedule.speed_for(500.0, rng)
        drive = schedule.speed_for(5_000.0, rng)
        assert schedule.walk_speed[0] <= walk <= schedule.walk_speed[1]
        assert schedule.drive_speed[0] <= drive <= schedule.drive_speed[1]

    def test_depart_window_bounds_departures(self):
        city = make_city()
        schedule = DailySchedule(
            home=city.homes[0], work=city.campus,
            weekday_attendance=1.0, weekday_social_prob=0.0,
            depart_window_hours=(10.0, 11.0), work_stay_hours=(2.0, 2.5),
        )
        model = WorkingDayMovement(schedule, random.Random(2))
        # At 09:30 the node must still be home; by 11:45 it must have
        # left (departed 10-11h; the drive across town takes < 45 min).
        p_early = model.position_at(9.5 * HOUR)
        assert p_early.distance_to(schedule.home.location) <= schedule.home.radius + 1
        p_mid = model.position_at(11.75 * HOUR)
        assert p_mid.distance_to(schedule.home.location) > schedule.home.radius

    def test_weekend_day_mostly_home_without_outings(self):
        city = make_city()
        schedule = DailySchedule(
            home=city.homes[0], work=city.campus, social_places=[],
            weekend_outing_prob=0.0,
        )
        model = WorkingDayMovement(schedule, random.Random(3))
        # Day 5 (Saturday) with no venues: home around the clock.
        for hour in (9, 13, 17, 21):
            p = model.position_at(5 * DAY + hour * HOUR)
            assert p.distance_to(schedule.home.location) <= schedule.home.radius + 1

    def test_weekday_skip_probability_zero_means_always_attend(self):
        city = make_city()
        schedule = DailySchedule(
            home=city.homes[0], work=city.campus,
            weekday_attendance=1.0, weekday_social_prob=0.0,
            depart_window_hours=(9.0, 9.5), work_stay_hours=(4.0, 4.5),
        )
        model = WorkingDayMovement(schedule, random.Random(4))
        attended = 0
        for day in range(5):
            p = model.position_at(day * DAY + 12.0 * HOUR)
            if p.distance_to(city.campus.location) <= city.campus.radius + 1:
                attended += 1
        assert attended >= 4  # commute timing may straddle one probe


class TestAppointmentsInteractions:
    def test_appointment_preempts_campus(self):
        city = make_city()
        schedule = DailySchedule(
            home=city.homes[0], work=city.campus,
            weekday_attendance=1.0, weekday_social_prob=0.0,
            depart_window_hours=(9.0, 9.5), work_stay_hours=(8.0, 8.5),
        )
        model = WorkingDayMovement(schedule, random.Random(5))
        venue = Place("meet", PlaceKind.SOCIAL, Point(9000, 7000), radius=40)
        model.add_appointment(12.0 * HOUR, venue, 2 * HOUR)
        p = model.position_at(13.0 * HOUR)
        assert p.distance_to(venue.location) <= venue.radius + 1

    def test_multiple_appointments_same_day(self):
        city = make_city()
        schedule = DailySchedule(
            home=city.homes[0], work=city.campus,
            weekday_attendance=0.0, weekend_outing_prob=0.0,
        )
        model = WorkingDayMovement(schedule, random.Random(6))
        venue_a = Place("a", PlaceKind.SOCIAL, Point(2000, 2000), radius=40)
        venue_b = Place("b", PlaceKind.SOCIAL, Point(9000, 6000), radius=40)
        model.add_appointment(10.0 * HOUR, venue_a, 1.5 * HOUR)
        model.add_appointment(15.0 * HOUR, venue_b, 1.5 * HOUR)
        assert model.position_at(11.0 * HOUR).distance_to(venue_a.location) <= 41
        assert model.position_at(16.0 * HOUR).distance_to(venue_b.location) <= 41

    def test_invalid_appointment_duration(self):
        city = make_city()
        schedule = DailySchedule(home=city.homes[0], work=city.campus)
        model = WorkingDayMovement(schedule, random.Random(7))
        with pytest.raises(ValueError):
            model.add_appointment(10.0 * HOUR, city.campus, 0.0)


class TestLongRunStability:
    def test_two_weeks_continuous(self):
        city = make_city()
        schedule = DailySchedule(
            home=city.homes[0], work=city.campus, social_places=city.social_venues
        )
        model = WorkingDayMovement(schedule, random.Random(8))
        region = Region(-2000, -2000, 13000, 10000)  # slack for commute paths
        last = None
        for step in range(0, int(14 * DAY), 1800):
            p = model.position_at(float(step))
            assert region.contains(p), f"escaped the map at t={step}"
            if last is not None:
                # 30-min displacement bounded by drive speed.
                assert p.distance_to(last) <= 13.0 * 1800 + 1
            last = p
