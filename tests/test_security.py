"""Adversarial security tests (paper §IV).

The security goals the paper states: detect the identity of users, send
encrypted information, verify the originating source of forwarded
information, and ensure data have not been modified.  Each test attacks
one of those goals and asserts the middleware rejects it.
"""

import pytest

from repro.core.config import SosConfig
from repro.core.wire import SosPacket, canonical_message_bytes
from repro.crypto.drbg import HmacDrbg
from repro.pki.certificate import Certificate, DistinguishedName
from repro.storage.messagestore import StoredMessage
from tests.worldutil import World


@pytest.fixture(params=[True, False], ids=["session", "legacy"])
def world(ca, keypair_pool, request):
    """Every attack here must be rejected under both packet-crypto wire
    formats: the per-link secure-session layer and the legacy per-packet
    hybrid-RSA reference path."""
    return World(ca, keypair_pool, session_crypto=request.param)


def connected_pair(world):
    alice = world.add_user("alice")
    bob = world.add_user("bob")
    bob.follow(alice.user_id)
    world.start()
    alice.post("legit")  # forces connection + handshake
    world.run(120.0)
    assert bob.timeline()  # sanity: the secure path works
    return alice, bob


class TestPayloadTampering:
    def test_modified_body_rejected(self, world):
        alice, bob = connected_pair(world)
        legit = alice.sos.store.get(alice.user_id, 1)
        forged = StoredMessage(
            author_id=legit.author_id,
            number=2,  # pretend it's a new message
            created_at=legit.created_at,
            body=b'{"text": "evil", "v": 1}',
            signature=legit.signature,  # stale signature
            author_cert=legit.author_cert,
            hops=0,
        )
        packet = SosPacket.data(bob.user_id, forged)
        # Inject through bob's own adhoc layer toward... bob sends to
        # himself is meaningless; instead deliver via the message manager
        # of bob as if from alice.
        before = bob.sos.messages.stats["originator_rejected"]
        bob.sos.messages._packet_received(packet, alice.user_id)
        assert bob.sos.messages.stats["originator_rejected"] == before + 1
        assert not bob.sos.store.has(alice.user_id, 2)

    def test_wrong_author_cert_rejected(self, world):
        alice, bob = connected_pair(world)
        legit = alice.sos.store.get(alice.user_id, 1)
        # Mallory (bob) re-signs alice's message with bob's key and
        # attaches bob's certificate, claiming alice authored it.
        canonical = canonical_message_bytes(alice.user_id, 2, 0.0, b"forged")
        forged = StoredMessage(
            author_id=alice.user_id,
            number=2,
            created_at=0.0,
            body=b"forged",
            signature=bob.sos.adhoc.keystore.private_key.sign(canonical),
            author_cert=bob.sos.adhoc.keystore.own_certificate.encode(),
            hops=0,
        )
        before = bob.sos.messages.stats["originator_rejected"]
        bob.sos.messages._packet_received(SosPacket.data(alice.user_id, forged), alice.user_id)
        assert bob.sos.messages.stats["originator_rejected"] == before + 1

    def test_garbage_certificate_rejected(self, world):
        alice, bob = connected_pair(world)
        forged = StoredMessage(
            author_id=alice.user_id, number=3, created_at=0.0, body=b"x",
            signature=b"sig", author_cert=b"not-a-certificate", hops=0,
        )
        before = bob.sos.messages.stats["originator_rejected"]
        bob.sos.messages._packet_received(SosPacket.data(alice.user_id, forged), alice.user_id)
        assert bob.sos.messages.stats["originator_rejected"] == before + 1


class TestImpersonation:
    def test_self_issued_certificate_fails_handshake(self, world, keypair_pool):
        """A device presenting a self-signed certificate (not issued by
        the AlleyOop CA) is disconnected and blacklisted."""
        alice, bob = connected_pair(world)
        rogue_key = keypair_pool[5]
        dn = DistinguishedName(common_name="rogue")
        rogue_cert = Certificate(
            subject=dn, issuer=dn, public_key=rogue_key.public,
            serial=1, not_before=0.0, not_after=1e9, user_id=alice.user_id,
        )
        rogue_cert = rogue_cert.with_signature(rogue_key.private.sign(rogue_cert.tbs_bytes()))
        failures = bob.sos.adhoc.stats["security_failures"]
        packet = SosPacket.cert(alice.user_id, rogue_cert.encode())
        from repro.mpc.peer import PeerID

        # Through the session path (as real traffic arrives) the failure
        # is absorbed and counted + the peer blacklisted.
        bob.sos.adhoc.session_received_data(
            bob.sos.adhoc.session, b"P" + packet.encode(), PeerID(alice.user_id, "dev-alice")
        )
        assert bob.sos.adhoc.stats["security_failures"] == failures + 1
        assert bob.sos.adhoc._blacklist_until.get(alice.user_id, 0) > world.sim.now

    def test_sender_identity_binding(self, world):
        """A packet claiming a different sender than the session peer is
        rejected (no speaking on behalf of others)."""
        from repro.core.errors import SecurityError
        from repro.mpc.peer import PeerID

        alice, bob = connected_pair(world)
        packet = SosPacket.request("u999999999", alice.user_id, [1])
        with pytest.raises(SecurityError):
            bob.sos.adhoc._handle_frame(
                b"P" + packet.encode(), PeerID(alice.user_id, "dev-alice")
            )


class TestEncryptionPreference:
    def test_plaintext_payload_rejected_when_encryption_required(self, world):
        from repro.core.errors import SecurityError
        from repro.mpc.peer import PeerID

        alice, bob = connected_pair(world)
        packet = SosPacket.request(alice.user_id, bob.user_id, [1])
        with pytest.raises(SecurityError):
            bob.sos.adhoc._handle_frame(
                b"P" + packet.encode(), PeerID(alice.user_id, "dev-alice")
            )

    def test_encrypted_frames_not_readable_by_third_party(self, world):
        """Confidentiality: captured session bytes cannot be decrypted by
        a non-recipient key — in either wire format."""
        captured = []
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        eve = world.add_user("eve")
        bob.follow(alice.user_id)
        original_send = alice.sos.adhoc.session.send

        def tap(data, to_peer, on_complete=None):
            captured.append(bytes(data))
            return original_send(data, to_peer, on_complete=on_complete)

        alice.sos.adhoc.session.send = tap
        world.start()
        alice.post("secret text")
        world.run(120.0)
        encrypted = [f for f in captured if f[:1] in (b"E", b"K", b"S")]
        assert encrypted, "expected at least one encrypted frame"
        from repro.crypto.rsa import hybrid_decrypt

        eve_key = eve.sos.adhoc.keystore.private_key
        for frame in encrypted:
            if frame[:1] == b"E":
                with pytest.raises(ValueError):
                    hybrid_decrypt(eve_key, frame[1:], aad=alice.user_id.encode())
            elif frame[:1] == b"K":
                # The session master is RSA-wrapped to bob; eve's private
                # key must fail the OAEP unwrap itself.
                wrap_len = int.from_bytes(frame[1:3], "big")
                wrapped_master = frame[3 : 3 + wrap_len]
                with pytest.raises(ValueError):
                    eve_key.decrypt(wrapped_master)
        assert any(f[:1] == b"K" for f in encrypted) or any(
            f[:1] == b"E" for f in encrypted
        )
        # The plaintext never appears on the wire in either mode.
        assert all(b"secret text" not in frame for frame in captured)

    def test_encryption_can_be_disabled_for_ablation(self, world):
        config = SosConfig(routing_protocol="interest", require_encryption=False,
                           relay_request_grace=0.0)
        alice = world.add_user("alice", config=config)
        bob = world.add_user("bob", config=config)
        bob.follow(alice.user_id)
        world.start()
        alice.post("in the clear")
        world.run(120.0)
        assert [e.post.text for e in bob.timeline()] == ["in the clear"]


class TestRevocation:
    def test_revoked_user_rejected_after_crl_sync(self, world):
        alice, bob = connected_pair(world)
        world.cloud.revoke_user("alice", now=world.sim.now)
        bob.refresh_revocations()
        result = bob.sos.adhoc.keystore.validate_and_cache(
            alice.sos.adhoc.keystore.own_certificate, now=world.sim.now
        )
        assert result.value == "revoked"

    def test_without_sync_revoked_user_still_trusted(self, world):
        """The §IV exposure window, end to end."""
        alice, bob = connected_pair(world)
        world.cloud.revoke_user("alice", now=world.sim.now)
        # bob never syncs: alice still validates.
        result = bob.sos.adhoc.keystore.validate_and_cache(
            alice.sos.adhoc.keystore.own_certificate, now=world.sim.now
        )
        assert result.ok
