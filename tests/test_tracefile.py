"""Tests for contact-trace export/replay and the trace-driven medium."""

import io

import pytest

from repro.geo.point import Point
from repro.mobility.base import StationaryModel
from repro.net import Device, Medium
from repro.net.contact import Contact
from repro.net.radio import BLUETOOTH, P2P_WIFI
from repro.net.tracefile import (
    ContactInterval,
    TraceMedium,
    read_contact_trace,
    write_contact_trace,
)
from repro.sim import Simulator


class TestContactInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContactInterval("a", "b", 10.0, 10.0)
        with pytest.raises(ValueError):
            ContactInterval("a", "a", 0.0, 10.0)

    def test_duration(self):
        assert ContactInterval("a", "b", 5.0, 25.0).duration == 20.0


class TestFileRoundtrip:
    def test_write_and_read(self):
        contacts = [
            Contact("a", "b", P2P_WIFI, start=10.0, end=50.0),
            Contact("b", "c", BLUETOOTH, start=20.0, end=30.0),
        ]
        buffer = io.StringIO()
        assert write_contact_trace(contacts, buffer) == 2
        buffer.seek(0)
        intervals = read_contact_trace(buffer)
        assert len(intervals) == 2
        assert intervals[0].node_a == "a" and intervals[0].end == 50.0

    def test_active_contacts_skipped(self):
        contacts = [Contact("a", "b", P2P_WIFI, start=10.0, end=None)]
        buffer = io.StringIO()
        assert write_contact_trace(contacts, buffer) == 0

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\n1.0 2.0 x y\n"
        intervals = read_contact_trace(io.StringIO(text))
        assert len(intervals) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            read_contact_trace(io.StringIO("1.0 2.0 onlythree\n"))

    def test_sorted_by_start(self):
        text = "50 60 a b\n1 2 c d\n"
        intervals = read_contact_trace(io.StringIO(text))
        assert intervals[0].start == 1.0


class TestTraceMedium:
    def _device(self, name):
        return Device(name, StationaryModel(Point(0, 0)))

    def test_replays_links(self):
        sim = Simulator()
        medium = TraceMedium(sim, [ContactInterval("a", "b", 10.0, 50.0)])
        medium.add_device(self._device("a"))
        medium.add_device(self._device("b"))
        ups, downs = [], []
        medium.on_link_up(lambda a, b, r: ups.append(sim.now))
        medium.on_link_down(lambda a, b, r: downs.append(sim.now))
        medium.start()
        sim.run(until=100.0)
        assert ups == [10.0] and downs == [50.0]
        assert medium.contacts.completed[0].duration == 40.0

    def test_link_between_during_interval(self):
        sim = Simulator()
        medium = TraceMedium(sim, [ContactInterval("a", "b", 10.0, 50.0)])
        medium.add_device(self._device("a"))
        medium.add_device(self._device("b"))
        medium.start()
        sim.run(until=20.0)
        assert medium.link_between("a", "b") is not None
        assert medium.neighbours_of("a") == ["b"]
        sim.run(until=60.0)
        assert medium.link_between("a", "b") is None

    def test_unknown_nodes_ignored(self):
        sim = Simulator()
        medium = TraceMedium(sim, [ContactInterval("a", "ghost", 0.5, 5.0)])
        medium.add_device(self._device("a"))
        medium.start()
        sim.run(until=10.0)
        assert medium.active_links == 0

    def test_powered_off_device_skips_contact(self):
        sim = Simulator()
        medium = TraceMedium(sim, [ContactInterval("a", "b", 10.0, 50.0)])
        device_a = self._device("a")
        device_a.power_off()
        medium.add_device(device_a)
        medium.add_device(self._device("b"))
        medium.start()
        sim.run(until=20.0)
        assert medium.active_links == 0

    def test_full_stack_over_recorded_contacts(self, ca, keypair_pool):
        """Record contacts from a geometric run, then replay them through
        the complete AlleyOop stack: deliveries must still happen."""
        import io as _io

        from repro.mpc import MpcFramework
        from tests.worldutil import World

        # 1. Record a short geometric run.
        world = World(ca, keypair_pool)
        world.add_user("alice")
        world.add_user("bob")
        world.start()
        world.run(120.0)
        world.medium.stop()
        buffer = _io.StringIO()
        write_contact_trace(world.medium.contacts.completed, buffer)
        buffer.seek(0)
        intervals = read_contact_trace(buffer)
        assert intervals, "the recording phase produced no contacts"

        # 2. Replay through a fresh stack (trace node ids are device ids).
        from repro.alleyoop import AlleyOopApp, CloudService
        from repro.core.config import SosConfig
        from repro.crypto.drbg import HmacDrbg
        from repro.pki.certificate import DistinguishedName
        from repro.pki.csr import CertificateSigningRequest
        from repro.pki.keystore import KeyStore

        sim = Simulator(seed=3)
        medium = TraceMedium(sim, intervals)
        framework = MpcFramework(sim, medium)
        cloud = CloudService(ca=ca)
        apps = {}
        for i, name in enumerate(["alice", "bob"]):
            account = cloud.create_account(name, now=0.0)
            keypair = keypair_pool[i]
            csr = CertificateSigningRequest.create(
                DistinguishedName(name), keypair.private, account.user_id
            )
            cert = cloud.request_certificate(name, csr, now=0.0)
            keystore = KeyStore()
            keystore.provision(keypair.private, cert, cloud.root_certificate)
            device = Device(f"dev-{name}", StationaryModel(Point(0, 0)))
            medium.add_device(device)
            apps[name] = AlleyOopApp(
                sim, framework, f"dev-{name}", account.user_id, name, keystore,
                cloud, rng=HmacDrbg.from_int(40 + i),
                config=SosConfig(relay_request_grace=0.0),
            )
        apps["bob"].follow(apps["alice"].user_id)
        for app in apps.values():
            app.start()
        medium.start()
        apps["alice"].post("over recorded contacts")
        sim.run(until=intervals[-1].end + 10.0)
        assert [e.post.text for e in apps["bob"].timeline()] == ["over recorded contacts"]
