"""Deterministic fault-injection subsystem (ISSUE 7).

Unit coverage for every layer the injector touches: the declarative
:class:`FaultPlan` and its spec parser, the pure retry policy, the DRBG
randomness helpers, simulator event ownership (bulk cancellation), the
medium's forced link drops, cloud connectivity windows and the per-call
sync-fault gate, frame drop/corruption (which must surface as security
diagnostics, never crashes), device crash/reboot volatile-vs-durable
semantics, and the resilient retry/backoff path in the app.

The satellite regression tests ride along here too: the KV-store
``BaseException`` rollback, the ``SyncQueue`` exception-safety contract,
the ``router/control_send_failed`` diagnostic and the ``sync_failures``
counter / gated ``cloud/sync_failed`` trace event.
"""

import pytest

from repro.alleyoop.cloud import CloudError, CloudService
from repro.core.config import SosConfig
from repro.crypto.drbg import HmacDrbg
from repro.faults import (
    CloudFaultGate,
    ConnectivityModel,
    FaultInjector,
    FaultPlan,
    PRESETS,
    RetryPolicy,
)
from repro.faults.randomness import choice_index, expovariate, uniform, uniform_in
from repro.geo.point import Point
from repro.sim.engine import Simulator
from repro.storage.actionlog import ActionKind, ActionLog
from repro.storage.kvstore import KeyValueStore
from repro.storage.syncqueue import SyncQueue
from tests.worldutil import World, trace_lines


@pytest.fixture()
def world(ca, keypair_pool):
    return World(ca, keypair_pool)


def fault_events(sim, kind=None):
    return [
        e for e in sim.trace
        if e.category == "fault" and (kind is None or e.kind == kind)
    ]


def cloud_events(sim, kind=None):
    return [
        e for e in sim.trace
        if e.category == "cloud" and (kind is None or e.kind == kind)
    ]


# -- the plan and its spec language ------------------------------------------------


class TestFaultPlan:
    def test_none_is_inert(self):
        plan = FaultPlan.parse("none")
        assert plan.is_none
        assert plan == FaultPlan.none() == FaultPlan.parse("") == FaultPlan.parse("  ")

    def test_presets_are_active_and_valid(self):
        for name, plan in PRESETS.items():
            assert FaultPlan.parse(name) == plan
            if name != "none":
                assert not plan.is_none

    def test_preset_with_overrides(self):
        plan = FaultPlan.parse("mild,frame_drop_prob=0.2, cloud_rate_limit=7")
        assert plan.frame_drop_prob == 0.2
        assert plan.cloud_rate_limit == 7
        # Untouched fields keep the preset's values.
        assert plan.cloud_mean_up_s == PRESETS["mild"].cloud_mean_up_s

    def test_bare_override_list_starts_from_inert(self):
        plan = FaultPlan.parse("frame_drop_prob=0.1,crash_rate_per_day=2")
        assert plan.frame_drop_prob == 0.1
        assert plan.crash_rate_per_day == 2.0
        assert not plan.has_cloud_outages and not plan.has_cloud_gate

    def test_reboot_window_spec(self):
        plan = FaultPlan.parse("crash_rate_per_day=1,reboot_delay_s=5:20")
        assert plan.reboot_delay_s == (5.0, 20.0)

    @pytest.mark.parametrize("spec", [
        "gentle",                       # unknown preset
        "no_such_field=1",              # unknown field
        "frame_drop_prob=1.5",          # out of [0, 1]
        "frame_drop_prob=0.7,frame_corrupt_prob=0.7",  # sum > 1
        "cloud_mean_up_s=100",          # up without down
        "reboot_delay_s=30:10",         # inverted window
        "cloud_rate_limit=-1",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_activity_flags(self):
        assert FaultPlan.parse("cloud_timeout_prob=0.1").has_cloud_gate
        assert FaultPlan.parse("cloud_rate_limit=3").has_cloud_gate
        assert FaultPlan.parse("link_flap_rate_per_hour=1").has_link_flaps
        assert FaultPlan.parse("frame_corrupt_prob=0.1").has_frame_faults
        assert FaultPlan.parse("crash_rate_per_day=1").has_device_faults

    def test_sample_is_deterministic_and_active(self):
        assert FaultPlan.sample(5) == FaultPlan.sample(5)
        assert FaultPlan.sample(5) != FaultPlan.sample(6)
        plan = FaultPlan.sample(5)
        assert not plan.is_none
        assert plan.has_cloud_outages  # every sampled plan windows the cloud

    def test_retry_policy_carries_plan_fields(self):
        plan = FaultPlan.parse("retry_base_s=10,retry_cap_s=100,retry_jitter=0.5")
        policy = plan.retry_policy()
        assert (policy.base_s, policy.cap_s, policy.jitter) == (10.0, 100.0, 0.5)


class TestRetryPolicy:
    def test_exponential_growth_then_cap(self):
        policy = RetryPolicy(base_s=10.0, cap_s=100.0, jitter=0.0)
        assert [policy.delay(a) for a in range(6)] == [10, 20, 40, 80, 100, 100]

    def test_huge_attempt_does_not_overflow(self):
        policy = RetryPolicy(base_s=10.0, cap_s=100.0, jitter=0.0)
        assert policy.delay(10_000) == 100.0

    def test_jitter_is_multiplicative_and_bounded(self):
        policy = RetryPolicy(base_s=10.0, cap_s=100.0, jitter=0.25)
        assert policy.delay(0, 0.0) == 10.0
        assert policy.delay(0, 0.5) == pytest.approx(11.25)
        # u is strictly below 1, so the delay stays below base * (1 + jitter).
        assert policy.delay(0, 0.999999) < 10.0 * 1.25

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=10.0, cap_s=5.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        policy = RetryPolicy()
        with pytest.raises(ValueError):
            policy.delay(-1)
        with pytest.raises(ValueError):
            policy.delay(0, 1.0)

    def test_schedule_skips_the_draw_without_jitter(self):
        def forbidden():
            raise AssertionError("jitter-free schedule must not draw")

        assert RetryPolicy(jitter=0.0).schedule(2, forbidden) == 120.0
        draws = iter([0.5])
        assert RetryPolicy(base_s=10, cap_s=100, jitter=0.2).schedule(
            0, lambda: next(draws)
        ) == pytest.approx(11.0)


class TestFaultRandomness:
    def test_uniform_range_and_determinism(self):
        a, b = HmacDrbg.from_int(1), HmacDrbg.from_int(1)
        draws = [uniform(a) for _ in range(200)]
        assert draws == [uniform(b) for _ in range(200)]
        assert all(0.0 <= u < 1.0 for u in draws)

    def test_uniform_in_window(self):
        drbg = HmacDrbg.from_int(2)
        assert all(5.0 <= uniform_in(drbg, 5.0, 8.0) < 8.0 for _ in range(100))

    def test_expovariate_positive_with_sane_mean(self):
        drbg = HmacDrbg.from_int(3)
        draws = [expovariate(drbg, 100.0) for _ in range(400)]
        assert all(d > 0 for d in draws)
        assert 60.0 < sum(draws) / len(draws) < 160.0

    def test_choice_index_covers_range(self):
        drbg = HmacDrbg.from_int(4)
        picks = {choice_index(drbg, 5) for _ in range(200)}
        assert picks == {0, 1, 2, 3, 4}


# -- simulator event ownership ------------------------------------------------------


class TestEventOwnership:
    def test_cancel_owned_cancels_exactly_the_tagged_events(self):
        sim = Simulator(seed=1)
        fired = []
        owner = object()
        sim.schedule_in(10.0, lambda: fired.append("owned-1"), owner=owner)
        sim.schedule_in(20.0, lambda: fired.append("free"))
        sim.schedule_in(30.0, lambda: fired.append("owned-2"), owner=owner)
        sim.schedule_in(40.0, lambda: fired.append("other"), owner=object())
        assert sim.cancel_owned(owner) == 2
        # Idempotent: nothing left to cancel for this owner.
        assert sim.cancel_owned(owner) == 0
        sim.run(until=100.0)
        assert fired == ["free", "other"]


# -- forced link drops (medium) -----------------------------------------------------


class TestMediumForcedDrops:
    def _linked_world(self, world):
        alice = world.add_user("alice", position=Point(100, 100))
        bob = world.add_user("bob", position=Point(120, 100))
        world.start()
        world.run(60.0)
        assert world.medium.active_link_keys()  # in range, linked
        return alice, bob

    def test_force_drop_then_relink_next_tick(self, world):
        self._linked_world(world)
        (key,) = world.medium.active_link_keys()
        downs_before = sum(
            1 for e in world.sim.trace
            if e.category == "contact" and e.kind == "down"
        )
        assert world.medium.force_drop(*key) is True
        assert world.medium.active_link_keys() == []
        assert world.medium.force_drop(*key) is False  # nothing left to drop
        downs_after = sum(
            1 for e in world.sim.trace
            if e.category == "contact" and e.kind == "down"
        )
        assert downs_after == downs_before + 1
        # A flap: the pair is still in range, so the next sweep re-links.
        world.run(world.sim.now + 30.0)
        assert world.medium.active_link_keys() == [key]

    def test_drop_links_of_clears_every_link_of_a_device(self, world):
        world.add_user("alice", position=Point(100, 100))
        world.add_user("bob", position=Point(120, 100))
        world.add_user("carol", position=Point(140, 100))
        world.start()
        world.run(60.0)
        bob_dev = world.devices["bob"].device_id
        bob_links = [k for k in world.medium.active_link_keys() if bob_dev in k]
        assert len(bob_links) >= 2
        assert world.medium.drop_links_of(bob_dev) == len(bob_links)
        assert all(bob_dev not in k for k in world.medium.active_link_keys())


# -- cloud connectivity windows and the sync-fault gate -----------------------------


class TestConnectivityModel:
    def _run(self, seed):
        sim = Simulator(seed=1)
        cloud = CloudService()
        cloud.online = False
        plan = FaultPlan.parse("cloud_mean_up_s=600,cloud_mean_down_s=300")
        model = ConnectivityModel(sim, cloud, plan, HmacDrbg.from_int(seed))
        model.start()
        assert cloud.online  # the model owns the flag from the start
        sim.run(until=86_400.0)
        return sim, cloud, model

    def test_windows_alternate_and_trace(self):
        sim, cloud, model = self._run(seed=7)
        downs = fault_events(sim, "cloud_down")
        ups = fault_events(sim, "cloud_up")
        assert model.transitions == len(downs) + len(ups)
        assert model.transitions > 10
        # Strict alternation, starting with an outage.
        kinds = [e.kind for e in fault_events(sim)]
        assert kinds[0] == "cloud_down"
        assert all(a != b for a, b in zip(kinds, kinds[1:]))
        assert cloud.online == (kinds[-1] == "cloud_up")

    def test_same_stream_seed_same_schedule(self):
        lines_a = trace_lines(self._run(seed=7)[0])
        lines_b = trace_lines(self._run(seed=7)[0])
        assert lines_a == lines_b
        assert lines_a != trace_lines(self._run(seed=8)[0])

    def test_requires_windows_configured(self):
        with pytest.raises(ValueError, match="no connectivity windows"):
            ConnectivityModel(
                Simulator(seed=1), CloudService(), FaultPlan.none(),
                HmacDrbg.from_int(1),
            )


class TestCloudFaultGate:
    def _gate(self, spec, seed=1):
        sim = Simulator(seed=1)
        return sim, CloudFaultGate(sim, FaultPlan.parse(spec), HmacDrbg.from_int(seed))

    def _batch(self, n):
        log = ActionLog()
        for i in range(n):
            log.append(ActionKind.POST, actor="u", created_at=0.0, number=i + 1, text="x")
        return log.since(0)

    def test_certain_timeout(self):
        sim, gate = self._gate("cloud_timeout_prob=1.0")
        with pytest.raises(CloudError, match="transient timeout"):
            gate.admit("u1", self._batch(2))
        assert gate.stats["timeouts"] == 1
        assert fault_events(sim, "cloud_timeout")

    def test_rate_limit_window(self):
        sim, gate = self._gate("cloud_rate_limit=2,cloud_rate_window_s=60")
        batch = self._batch(1)
        gate.admit("u1", batch)
        gate.admit("u1", batch)
        with pytest.raises(CloudError, match="rate limited"):
            gate.admit("u1", batch)
        assert gate.stats["rate_limited"] == 1
        # A fresh accounting window admits again.
        sim.run(until=61.0)
        assert gate.admit("u1", batch) == batch

    def test_partial_acceptance_is_a_proper_prefix(self):
        _, gate = self._gate("cloud_partial_prob=1.0")
        batch = self._batch(5)
        kept = gate.admit("u1", batch)
        assert len(kept) < len(batch)
        assert kept == batch[: len(kept)]
        assert gate.stats["partial"] == 1

    def test_inert_gate_passes_batches_through(self):
        _, gate = self._gate("cloud_partial_prob=0.0,cloud_timeout_prob=0.0")
        batch = self._batch(3)
        assert gate.admit("u1", batch) == batch

    def test_partial_acceptance_replays_to_convergence_end_to_end(self):
        """The at-least-once contract: a cloud that keeps truncating
        batches still converges, each action applied exactly once."""
        sim = Simulator(seed=1)
        cloud = CloudService()
        account = cloud.create_account("zoe", now=0.0)
        gate = CloudFaultGate(
            sim, FaultPlan.parse("cloud_partial_prob=0.7"), HmacDrbg.from_int(3)
        )
        cloud.sync_faults = gate.admit
        log = ActionLog()
        for i in range(6):
            log.append(ActionKind.POST, actor=account.user_id,
                       created_at=0.0, number=i + 1, text="x")
        queue = SyncQueue(log)
        uplink = cloud.sync_uplink(account.user_id)
        for _ in range(100):
            if queue.pending_count == 0:
                break
            queue.sync(uplink)
        assert queue.pending_count == 0
        assert [a.seq for a in account.synced_actions] == [1, 2, 3, 4, 5, 6]
        assert gate.stats["partial"] > 0


# -- frame faults: drops and corruption ---------------------------------------------


class TestFrameFaults:
    def _injected_pair(self, world, spec, fault_seed=5):
        config = SosConfig(relay_request_grace=0.0)
        alice = world.add_user("alice", position=Point(100, 100), config=config)
        bob = world.add_user("bob", position=Point(120, 100), config=config)
        bob.follow(alice.user_id)
        injector = FaultInjector(world.sim, FaultPlan.parse(spec), seed=fault_seed)
        injector.install(
            world.cloud, world.medium, world.framework, list(world.apps.values())
        )
        world.start()
        return alice, bob, injector

    def test_certain_drop_starves_the_receiver_without_crashing(self, world):
        alice, bob, injector = self._injected_pair(world, "frame_drop_prob=1.0")
        alice.post("lost to the ether")
        world.run(600.0)
        assert bob.timeline() == []
        assert injector.stats["frames_dropped"] > 0
        assert fault_events(world.sim, "frame_drop")
        assert world.framework.stats["transfers_failed"] >= injector.stats["frames_dropped"]

    def test_corruption_surfaces_as_security_diagnostic(self, world):
        alice, bob, injector = self._injected_pair(world, "frame_corrupt_prob=1.0")
        alice.post("mangled in flight")
        world.run(600.0)
        # Every delivered frame was corrupted: the receivers log security
        # failures (bad MAC / bad handshake), nothing ever raises out of
        # the event loop, and no post goes through.
        assert bob.timeline() == []
        assert injector.stats["frames_corrupted"] > 0
        assert fault_events(world.sim, "frame_corrupt")
        failures = (
            alice.sos.adhoc.stats["security_failures"]
            + bob.sos.adhoc.stats["security_failures"]
        )
        assert failures > 0

    def test_quiesce_detaches_the_hook_and_traffic_recovers(self, world):
        alice, bob, injector = self._injected_pair(world, "frame_drop_prob=1.0")
        alice.post("one")
        world.run(600.0)
        assert bob.timeline() == []
        injector.quiesce()
        assert world.framework.frame_fault is None
        alice.post("two")
        world.run(1800.0)
        assert "two" in {e.post.text for e in bob.timeline()}


# -- device crash / reboot ----------------------------------------------------------


class TestCrashReboot:
    def _secured_pair(self, world, **add_user_kwargs):
        config = SosConfig(relay_request_grace=0.0)
        alice = world.add_user(
            "alice", position=Point(100, 100), config=config, **add_user_kwargs
        )
        bob = world.add_user(
            "bob", position=Point(120, 100), config=config, **add_user_kwargs
        )
        bob.follow(alice.user_id)
        world.start()
        alice.post("before the crash")
        world.run(120.0)
        assert bob.sos.adhoc.is_secured(alice.user_id)
        assert [e.post.text for e in bob.timeline()] == ["before the crash"]
        return alice, bob

    def test_volatile_lost_durable_survives(self, world):
        alice, bob = self._secured_pair(world)
        bob.follow_many([])  # no-op; keeps the log purely organic
        log_before = list(bob.actions)
        acked_before = bob.sync_queue.acked_seq
        seen_before = bob.sos.adhoc._seen_session_keys
        assert len(seen_before) >= 1
        bob.crash()
        # Volatile: the feed, the notifications, every secure channel.
        assert bob.timeline() == []
        assert bob.notifications == []
        assert bob.sos.adhoc._peers == {}
        assert not bob.sos.adhoc.is_secured(alice.user_id)
        # Durable: the action log, the acked prefix, the keystore and the
        # anti-replay fingerprint record (the same object, not a copy).
        assert list(bob.actions) == log_before
        assert bob.sync_queue.acked_seq == acked_before
        assert bob.sos.adhoc.keystore.private_key is not None
        assert bob.sos.adhoc._seen_session_keys is seen_before
        assert len(seen_before) >= 1

    def test_reboot_resecures_and_new_posts_flow(self, world):
        alice, bob = self._secured_pair(world)
        device = world.devices["bob"]
        world.medium.drop_links_of(device.device_id)
        device.power_off()
        bob.crash()
        world.run(world.sim.now + 60.0)
        device.power_on()
        bob.reboot()
        alice.post("after the reboot")
        world.run(world.sim.now + 600.0)
        assert bob.sos.adhoc.is_secured(alice.user_id)
        # The pre-crash feed is gone for good; the new post arrives.
        assert {e.post.text for e in bob.timeline()} == {"after the reboot"}

    def test_injector_crash_cycle_traces_and_restores(self, world):
        config = SosConfig(relay_request_grace=0.0)
        world.add_user("alice", position=Point(100, 100), config=config)
        world.add_user("bob", position=Point(120, 100), config=config)
        injector = FaultInjector(
            world.sim,
            FaultPlan.parse("crash_rate_per_day=50,reboot_delay_s=10:30"),
            seed=11,
        )
        injector.install(
            world.cloud, world.medium, world.framework, list(world.apps.values())
        )
        world.start()
        world.run(6 * 3600.0)
        assert injector.stats["crashes"] > 0
        crashes = fault_events(world.sim, "crash")
        reboots = fault_events(world.sim, "reboot")
        assert len(crashes) == injector.stats["crashes"]
        # Reboots trail crashes by at most the currently-down set.
        assert len(crashes) - len(reboots) in (0, 1, 2)
        injector.quiesce()
        assert injector._down == {}
        for device in world.devices.values():
            assert device.powered_on

    def test_install_is_single_shot(self, world):
        world.add_user("alice")
        world.add_user("bob")
        injector = FaultInjector(world.sim, FaultPlan.parse("mild"), seed=1)
        injector.install(
            world.cloud, world.medium, world.framework, list(world.apps.values())
        )
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install(
                world.cloud, world.medium, world.framework, list(world.apps.values())
            )


# -- resilient cloud sync (retry/backoff) -------------------------------------------


class TestResilientSync:
    def test_failure_counts_but_stays_silent_without_policy(self, world):
        alice = world.add_user("alice")
        world.add_user("bob")
        world.cloud.online = False
        world.start()
        alice.post("queued")
        assert alice.sync_failures == 1
        assert alice.sync_queue.pending_count > 0
        # Seed behaviour: no trace events, no retry machinery.
        assert cloud_events(world.sim) == []
        assert alice._retry_event is None

    def test_retry_backoff_until_cloud_returns(self, world):
        policy = RetryPolicy(base_s=10.0, cap_s=80.0, jitter=0.25)
        alice = world.add_user("alice", resilience=policy)
        world.add_user("bob", resilience=policy)
        world.cloud.online = False
        world.start()
        alice.post("will get there")
        assert alice.sync_failures == 1
        assert cloud_events(world.sim, "sync_failed")
        assert alice._retry_event is not None
        world.run(300.0)  # several retries fail against the offline cloud
        retries = cloud_events(world.sim, "sync_retry")
        assert len(retries) >= 3
        delays = [e.data["delay"] for e in retries]
        # Exponential growth (within jitter): every later delay exceeds
        # its predecessor until the cap region.
        assert delays[1] > delays[0]
        assert all(d <= 80.0 * 1.25 for d in delays)
        world.cloud.online = True
        world.run(world.sim.now + 2 * 80.0 * 1.25)
        assert alice.sync_queue.pending_count == 0
        assert alice._retry_event is None
        assert alice._sync_attempt == 0  # success resets the backoff
        account = world.cloud.account_by_user_id(alice.user_id)
        assert [a.seq for a in account.synced_actions] == [
            a.seq for a in alice.actions
        ]

    def test_single_outstanding_retry(self, world):
        policy = RetryPolicy(base_s=50.0, cap_s=400.0, jitter=0.0)
        alice = world.add_user("alice", resilience=policy)
        world.add_user("bob", resilience=policy)
        world.cloud.online = False
        world.start()
        alice.post("one")
        alice.post("two")
        alice.post("three")
        assert alice.sync_failures == 3
        # Three failures, but only the first scheduled a retry.
        assert len(cloud_events(world.sim, "sync_retry")) == 1

    def test_crash_resets_backoff_and_reboot_resyncs(self, world):
        policy = RetryPolicy(base_s=10.0, cap_s=80.0, jitter=0.0)
        alice = world.add_user("alice", resilience=policy)
        world.add_user("bob", resilience=policy)
        world.cloud.online = False
        world.start()
        alice.post("persisted")
        world.run(100.0)
        assert alice._sync_attempt > 1
        alice.crash()
        assert alice._retry_event is None
        assert alice._sync_attempt == 0
        world.cloud.online = True
        alice.reboot()
        # Reboot re-attempts the surviving unacked suffix immediately.
        assert alice.sync_queue.pending_count == 0

    def test_retry_schedule_is_seed_deterministic(self, ca, keypair_pool):
        def run_once():
            world = World(ca, keypair_pool, seed=3)
            policy = RetryPolicy(base_s=10.0, cap_s=80.0, jitter=0.25)
            alice = world.add_user("alice", resilience=policy)
            world.add_user("bob", resilience=policy)
            world.cloud.online = False
            world.start()
            alice.post("jittered")
            world.run(400.0)
            return [e.data["delay"] for e in cloud_events(world.sim, "sync_retry")]

        first = run_once()
        assert len(first) >= 3
        assert first == run_once()


# -- satellite regressions ----------------------------------------------------------


class TestKeyValueStoreRollback:
    def test_keyboard_interrupt_rolls_back(self):
        store = KeyValueStore()
        store.put("a", 1)
        with pytest.raises(KeyboardInterrupt):
            with store.transaction() as txn:
                txn.put("a", 2)
                txn.put("b", 3)
                raise KeyboardInterrupt()
        assert store.get("a") == 1
        assert "b" not in store

    def test_generator_exit_rolls_back(self):
        store = KeyValueStore()
        with pytest.raises(GeneratorExit):
            with store.transaction() as txn:
                txn.put("half", "applied")
                raise GeneratorExit()
        assert "half" not in store

    def test_plain_exception_still_rolls_back(self):
        store = KeyValueStore()
        with pytest.raises(RuntimeError):
            with store.transaction() as txn:
                txn.put("x", 1)
                raise RuntimeError("boom")
        assert "x" not in store


class TestSyncQueueExceptionSafety:
    def _queue(self, n=3):
        log = ActionLog()
        for i in range(n):
            log.append(ActionKind.POST, actor="u", created_at=0.0, number=i + 1, text="x")
        return SyncQueue(log)

    def test_uplink_raising_mid_batch_leaves_state_consistent(self):
        queue = self._queue(3)
        seen = []

        def exploding_uplink(batch):
            seen.append([a.seq for a in batch])
            raise RuntimeError("uplink died mid-batch")

        with pytest.raises(RuntimeError):
            queue.sync(exploding_uplink)
        # Nothing acknowledged, no round counted; max_batch records the
        # *attempted* batch (its documented meaning).
        assert queue.acked_seq == 0
        assert queue.sync_count == 0
        assert queue.max_batch == 3
        assert queue.pending_count == 3
        # The next opportunity replays the identical full batch.
        assert queue.sync(lambda batch: batch[-1].seq) == 3
        assert seen == [[1, 2, 3]]
        assert queue.acked_seq == 3
        assert queue.sync_count == 1
        assert queue.pending_count == 0

    def test_out_of_range_ack_rejected_without_state_change(self):
        queue = self._queue(2)
        with pytest.raises(ValueError, match="valid range"):
            queue.sync(lambda batch: 99)
        assert queue.acked_seq == 0
        assert queue.sync_count == 0
        assert queue.pending_count == 2


class TestControlSendDiagnostic:
    def test_failed_control_send_is_traced_not_swallowed(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        world.start()
        # Bob was never secured, so the send fails at the security layer;
        # the old code passed silently, now it leaves a diagnostic.
        alice.sos.messages.send_control(bob.user_id, b"advisory")
        events = [
            e for e in world.sim.trace
            if e.category == "router" and e.kind == "control_send_failed"
        ]
        assert len(events) == 1
        assert events[0].data["owner"] == alice.user_id
        assert events[0].data["peer"] == bob.user_id
        assert events[0].data["reason"]
