"""Integration tests of the SOS middleware stack (adhoc + message manager
+ routing) over the simulated MPC and radio substrates."""

import pytest

from repro.core.config import SosConfig
from repro.core.errors import NotSignedUpError
from repro.crypto.drbg import HmacDrbg
from repro.core.middleware import SOSMiddleware
from repro.geo.point import Point
from repro.pki.keystore import KeyStore
from tests.worldutil import World


@pytest.fixture()
def world(ca, keypair_pool):
    return World(ca, keypair_pool)


def two_users(world):
    alice = world.add_user("alice")
    bob = world.add_user("bob")
    bob.follow(alice.user_id)
    world.start()
    return alice, bob


class TestDelivery:
    def test_post_reaches_subscriber(self, world):
        alice, bob = two_users(world)
        alice.post("hello")
        world.run(120.0)
        assert [e.post.text for e in bob.timeline()] == ["hello"]
        assert bob.timeline()[0].hops == 1

    def test_multiple_posts_in_order(self, world):
        alice, bob = two_users(world)
        for i in range(4):
            alice.post(f"post {i}")
            world.run(world.sim.now + 60.0)
        numbers = sorted(e.number for e in bob.timeline())
        assert numbers == [1, 2, 3, 4]

    def test_non_subscriber_gets_nothing_with_ib(self, world):
        alice = world.add_user("alice")
        carol = world.add_user("carol")  # does not follow alice
        world.start()
        alice.post("private-ish")
        world.run(120.0)
        assert carol.timeline() == []
        assert len(carol.sos.store) == 0

    def test_epidemic_carries_even_without_interest(self, world):
        config = SosConfig(routing_protocol="epidemic", relay_request_grace=0.0)
        alice = world.add_user("alice", config=config)
        carol = world.add_user("carol", config=config)
        world.start()
        alice.post("spread me")
        world.run(120.0)
        # Carol stores (forwards) it but her feed stays empty.
        assert len(carol.sos.store) == 1
        assert carol.timeline() == []

    def test_two_hop_relay_through_common_subscriber(self, world, ca, keypair_pool):
        # alice at x=100, bob at x=140 (in range of both), carol at x=180
        # (out of alice's 60 m range but within bob's).
        alice = world.add_user("alice", position=Point(100, 100))
        bob = world.add_user("bob", position=Point(145, 100))
        carol = world.add_user("carol", position=Point(190, 100))
        bob.follow(alice.user_id)
        carol.follow(alice.user_id)
        world.start()
        alice.post("multi-hop")
        world.run(600.0)
        assert [e.hops for e in bob.timeline()] == [1]
        assert [e.hops for e in carol.timeline()] == [2]

    def test_store_and_forward_across_disconnection(self, world):
        """The DTN property: bob collects from alice, later meets carol."""
        from repro.mobility.base import MobilityModel

        class Ferry(MobilityModel):
            def position_at(self, now):
                # Near alice until t=300, then near carol.
                return Point(120, 100) if now < 300 else Point(480, 100)

        alice = world.add_user("alice", position=Point(100, 100))
        bob = world.add_user("bob", mobility=Ferry())
        carol = world.add_user("carol", position=Point(500, 100))
        bob.follow(alice.user_id)
        carol.follow(alice.user_id)
        world.start()
        alice.post("carried message")
        world.run(900.0)
        assert [e.hops for e in carol.timeline()] == [2]
        delay = carol.timeline()[0].delay
        assert delay > 250.0  # had to wait for the ferry


class TestSurroundingUsers:
    def test_discovery_notification(self, world):
        alice, bob = two_users(world)
        world.run(60.0)
        assert alice.user_id in bob.sos.surrounding_users()
        assert any("nearby" in n for n in bob.notifications)

    def test_verified_users_after_handshake(self, world):
        alice, bob = two_users(world)
        alice.post("x")
        world.run(120.0)
        assert alice.user_id in bob.sos.verified_users()


class TestProtocolToggle:
    def test_runtime_toggle_preserves_store(self, world):
        alice, bob = two_users(world)
        alice.post("first")
        world.run(120.0)
        bob.select_routing("epidemic")
        assert bob.sos.protocol_name == "epidemic"
        alice.post("second")
        world.run(240.0)
        assert sorted(e.post.text for e in bob.timeline()) == ["first", "second"]

    def test_unknown_protocol_rejected(self, world):
        alice = world.add_user("alice")
        with pytest.raises(KeyError):
            alice.select_routing("teleport")

    def test_available_protocols(self, world):
        alice = world.add_user("alice")
        names = alice.sos.available_protocols()
        assert {"epidemic", "interest", "direct", "first_contact", "spray_wait", "prophet"} <= set(names)


class TestMessageNumbers:
    def test_numbers_increment_from_one(self, world):
        alice = world.add_user("alice")
        world.start()
        m1 = alice.post("a")
        m2 = alice.post("b")
        assert (m1.number, m2.number) == (1, 2)

    def test_advertisement_reflects_highest(self, world):
        alice, bob = two_users(world)
        alice.post("a")
        alice.post("b")
        world.run(60.0)
        advert = bob.sos.adhoc.advert_of(alice.user_id)
        assert advert.get(alice.user_id) == 2


class TestProvisioningGuards:
    def test_unprovisioned_keystore_rejected(self, world):
        with pytest.raises(NotSignedUpError):
            SOSMiddleware(
                sim=world.sim,
                framework=world.framework,
                device_id="dev-x",
                user_id="u999999999",
                keystore=KeyStore(),
                rng=HmacDrbg.from_int(1),
            )


class TestTransferBookkeeping:
    def test_untransferred_recorded_on_link_drop(self, world):
        """Paper §III-C: the message manager knows what messages were not
        transferred when a connection is lost."""
        from repro.mobility.base import MobilityModel

        class Leaver(MobilityModel):
            def position_at(self, now):
                return Point(140, 100) if now < 50 else Point(5000, 5000)

        alice = world.add_user("alice", position=Point(100, 100))
        bob = world.add_user("bob", mobility=Leaver())
        bob.follow(alice.user_id)
        world.start()
        world.run(40.0)  # connection established
        # Huge payload cannot finish before bob leaves at t=50.
        alice.post("x" * 6000)
        world.run(300.0)
        if bob.timeline() == []:  # transfer really was cut
            assert alice.sos.messages.untransferred
