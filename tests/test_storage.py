"""Tests for the device-local storage substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import (
    Action,
    ActionKind,
    ActionLog,
    KeyValueStore,
    MessageStore,
    StoredMessage,
    SyncQueue,
)


def msg(author="u000000001", number=1, created=0.0, hops=0, body=b"x", received=None):
    return StoredMessage(
        author_id=author,
        number=number,
        created_at=created,
        body=body,
        signature=b"s",
        author_cert=b"c",
        hops=hops,
        received_at=received,
    )


class TestActionLog:
    def test_sequence_numbers_monotonic(self):
        log = ActionLog()
        a1 = log.append(ActionKind.POST, "u1", 0.0, text="hi")
        a2 = log.append(ActionKind.FOLLOW, "u1", 1.0, target="u2")
        assert (a1.seq, a2.seq) == (1, 2)

    def test_since(self):
        log = ActionLog()
        for i in range(5):
            log.append(ActionKind.POST, "u1", float(i))
        assert [a.seq for a in log.since(2)] == [3, 4, 5]
        assert log.since(5) == []

    def test_since_negative_rejected(self):
        with pytest.raises(ValueError):
            ActionLog().since(-1)

    def test_of_kind(self):
        log = ActionLog()
        log.append(ActionKind.POST, "u1", 0.0)
        log.append(ActionKind.FOLLOW, "u1", 1.0)
        log.append(ActionKind.POST, "u1", 2.0)
        assert len(log.of_kind(ActionKind.POST)) == 2

    def test_get(self):
        log = ActionLog()
        action = log.append(ActionKind.POST, "u1", 0.0)
        assert log.get(1) == action
        assert log.get(2) is None
        assert log.get(0) is None


class TestKeyValueStore:
    def test_put_get_delete(self):
        store = KeyValueStore()
        store.put("a", 1)
        assert store.get("a") == 1
        store.delete("a")
        assert store.get("a", "default") == "default"

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            KeyValueStore().put("", 1)

    def test_transaction_commits(self):
        store = KeyValueStore()
        with store.transaction() as txn:
            txn.put("a", 1)
            txn.put("b", 2)
        assert store.get("a") == 1 and store.get("b") == 2

    def test_transaction_rolls_back_on_error(self):
        store = KeyValueStore()
        store.put("a", "original")
        with pytest.raises(RuntimeError):
            with store.transaction() as txn:
                txn.put("a", "changed")
                raise RuntimeError("boom")
        assert store.get("a") == "original"

    def test_namespace_view(self):
        store = KeyValueStore()
        ns = store.namespace("routing")
        ns.put("protocol", "interest")
        assert store.get("routing:protocol") == "interest"
        assert "protocol" in ns
        ns.delete("protocol")
        assert "protocol" not in ns

    def test_keys_with_prefix(self):
        store = KeyValueStore()
        store.put("a:1", 1)
        store.put("a:2", 2)
        store.put("b:1", 3)
        assert store.keys_with_prefix("a:") == ["a:1", "a:2"]


class TestMessageStore:
    def test_add_and_get(self):
        store = MessageStore()
        assert store.add(msg(number=1))
        assert store.get("u000000001", 1) is not None
        assert store.has("u000000001", 1)

    def test_duplicate_rejected(self):
        store = MessageStore()
        store.add(msg(number=1))
        assert not store.add(msg(number=1))
        assert len(store) == 1

    def test_highest_number_and_marks(self):
        store = MessageStore()
        store.add(msg(number=3))
        store.add(msg(number=1))
        assert store.highest_number("u000000001") == 3
        assert store.advertisement_marks() == {"u000000001": 3}
        assert store.highest_number("unknown") == 0

    def test_missing_below_reports_gaps(self):
        store = MessageStore()
        store.add(msg(number=1))
        store.add(msg(number=4))
        assert store.missing_below("u000000001", 5) == [2, 3, 5]
        assert store.missing_below("u000000001", 1) == []

    def test_messages_for_skips_absent(self):
        store = MessageStore()
        store.add(msg(number=2))
        got = store.messages_for("u000000001", [1, 2, 3])
        assert [m.number for m in got] == [2]

    def test_forwarded_copy_increments_hops(self):
        original = msg(hops=1)
        copy = original.forwarded_copy(received_at=50.0)
        assert copy.hops == 2
        assert copy.received_at == 50.0
        assert copy.body == original.body

    def test_capacity_evicts_oldest_forwarded_first(self):
        size = msg(body=b"x" * 100).size_bytes
        store = MessageStore(capacity_bytes=3 * size)
        store.add(msg(author="u000000001", number=1, body=b"x" * 100, hops=0))
        store.add(msg(author="u000000002", number=1, body=b"x" * 100, hops=1, received=1.0))
        store.add(msg(author="u000000003", number=1, body=b"x" * 100, hops=1, received=2.0))
        store.add(msg(author="u000000004", number=1, body=b"x" * 100, hops=1, received=3.0))
        # Oldest forwarded (author 2) evicted; own message (hops=0) kept.
        assert not store.has("u000000002", 1)
        assert store.has("u000000001", 1)
        assert store.has("u000000004", 1)
        assert store.evicted == 1

    def test_own_messages_never_evicted(self):
        size = msg(body=b"x" * 100).size_bytes
        store = MessageStore(capacity_bytes=size)
        store.add(msg(number=1, body=b"x" * 100, hops=0))
        store.add(msg(number=2, body=b"x" * 100, hops=0))
        assert len(store) == 2  # over capacity but all own

    def test_authors_listing(self):
        store = MessageStore()
        store.add(msg(author="u000000002", number=1))
        store.add(msg(author="u000000001", number=1))
        assert store.authors() == ["u000000001", "u000000002"]

    @given(st.sets(st.integers(1, 50), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_missing_below_invariant(self, numbers):
        store = MessageStore()
        for n in numbers:
            store.add(msg(number=n))
        top = max(numbers)
        missing = store.missing_below("u000000001", top)
        assert set(missing) | numbers >= set(range(1, top + 1))
        assert not set(missing) & numbers


class TestSyncQueue:
    def test_sync_acknowledges_prefix(self):
        log = ActionLog()
        for i in range(3):
            log.append(ActionKind.POST, "u1", float(i))
        queue = SyncQueue(log)
        assert queue.pending_count == 3
        accepted = queue.sync(lambda batch: batch[-1].seq)
        assert accepted == 3
        assert queue.pending_count == 0

    def test_partial_acceptance(self):
        log = ActionLog()
        for i in range(4):
            log.append(ActionKind.POST, "u1", float(i))
        queue = SyncQueue(log)
        queue.sync(lambda batch: 2)  # cloud accepted only 2
        assert queue.pending_count == 2
        assert [a.seq for a in queue.pending] == [3, 4]

    def test_empty_sync_is_noop(self):
        queue = SyncQueue(ActionLog())
        assert queue.sync(lambda batch: 0) == 0
        assert queue.sync_count == 0

    def test_invalid_ack_rejected(self):
        log = ActionLog()
        log.append(ActionKind.POST, "u1", 0.0)
        queue = SyncQueue(log)
        with pytest.raises(ValueError):
            queue.sync(lambda batch: 99)

    def test_new_actions_after_sync_are_pending(self):
        log = ActionLog()
        log.append(ActionKind.POST, "u1", 0.0)
        queue = SyncQueue(log)
        queue.sync(lambda batch: 1)
        log.append(ActionKind.FOLLOW, "u1", 1.0, target="u2")
        assert queue.pending_count == 1


class TestSyncQueueBulkFlush:
    """Prefix acceptance during a bulk flush (the bootstrap path pushes a
    user's whole day-0 follow suffix in one round; if the uplink stops
    mid-batch, the suffix must survive for the next opportunity)."""

    def _queue(self, count):
        log = ActionLog()
        for i in range(count):
            log.append(ActionKind.FOLLOW, "u1", 0.0, target=f"u{i + 2}")
        return log, SyncQueue(log)

    def test_bulk_flush_is_one_round(self):
        _, queue = self._queue(100)
        seen_batches = []

        def uplink(batch):
            seen_batches.append(len(batch))
            return batch[-1].seq

        assert queue.sync(uplink) == 100
        assert seen_batches == [100]  # one round, not one per action
        assert queue.sync_count == 1
        assert queue.max_batch == 100

    def test_prefix_acceptance_resumes_at_suffix(self):
        _, queue = self._queue(10)
        queue.sync(lambda batch: 4)  # cloud stopped mid-batch
        assert queue.acked_seq == 4
        assert [a.seq for a in queue.pending] == list(range(5, 11))
        # The retry round replays exactly the unacknowledged suffix.
        replayed = []
        queue.sync(lambda batch: replayed.extend(a.seq for a in batch) or batch[-1].seq)
        assert replayed == list(range(5, 11))
        assert queue.pending_count == 0

    def test_zero_progress_round_keeps_everything_pending(self):
        _, queue = self._queue(5)
        assert queue.sync(lambda batch: queue.acked_seq) == 0
        assert queue.pending_count == 5

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=8))
    def test_any_prefix_schedule_eventually_drains(self, accepts):
        """Property: whatever prefix sizes the cloud accepts per round,
        repeated sync rounds never lose, reorder or duplicate actions."""
        log, queue = self._queue(30)
        delivered = []

        for accept in accepts + [30]:
            def uplink(batch, accept=accept):
                take = min(accept, len(batch))
                if take == 0:
                    return queue.acked_seq
                delivered.extend(a.seq for a in batch[:take])
                return batch[take - 1].seq

            queue.sync(uplink)
        assert delivered == list(range(1, 31))
        assert queue.pending_count == 0
