"""Tests for the multi-process fan-out primitives.

Covers the failure-surfacing contract (worker exceptions re-raised in
the parent with the original worker traceback attached — never silently
retried in-process) and the persistent :class:`WorkerPool` lifecycle
the sharded medium is built on.
"""

import multiprocessing
import threading

import pytest

from repro.sim.parallel import WorkerError, WorkerPool, parallel_map


# -- module-level worker functions (picklable by qualified name) -----------------


def _double(x):
    return x * 2


def _boom(x):
    raise ValueError(f"bad item {x}")


def _os_error(x):
    # Historically the dangerous case: OSError from a *worker* used to be
    # indistinguishable from "this platform cannot fork".
    raise OSError(f"disk on fire for {x}")


class _UnpicklableError(Exception):
    def __init__(self, message):
        super().__init__(message)
        self.lock = threading.Lock()  # cannot cross a process boundary


def _raise_unpicklable(x):
    raise _UnpicklableError(f"held a lock for {x}")


def _init_counter(start):
    return {"count": start}


def _init_boom(payload):
    raise RuntimeError(f"init refused payload {payload}")


def _bump(state, amount):
    state["count"] += amount
    return state["count"]


def _task_boom(state, task):
    raise KeyError(f"no such task {task}")


class TestParallelMap:
    def test_maps_in_order(self):
        assert parallel_map(_double, [3, 1, 2], workers=2) == [6, 2, 4]

    def test_single_worker_stays_in_process(self):
        assert parallel_map(_double, [5, 6], workers=1) == [10, 12]

    @pytest.mark.parametrize("workers", [1, 3])
    def test_worker_exception_propagates_with_traceback(self, workers):
        with pytest.raises(ValueError, match="bad item 5") as excinfo:
            parallel_map(_boom, [5, 7, 9], workers=workers)
        notes = "\n".join(getattr(excinfo.value, "__notes__", []))
        assert "worker traceback" in notes
        assert "_boom" in notes  # the original frame, not a re-raise site

    def test_worker_oserror_is_not_mistaken_for_fork_failure(self):
        # Regression: the old implementation caught OSError around the
        # whole pool block, so a worker raising OSError was silently
        # re-run in-process.  It must propagate, with worker context.
        with pytest.raises(OSError, match="disk on fire") as excinfo:
            parallel_map(_os_error, [1, 2, 3], workers=2)
        notes = "\n".join(getattr(excinfo.value, "__notes__", []))
        assert "_os_error" in notes

    def test_unpicklable_exception_becomes_worker_error(self):
        with pytest.raises(WorkerError, match="held a lock for 1") as excinfo:
            parallel_map(_raise_unpicklable, [1, 2], workers=2)
        assert "_raise_unpicklable" in str(excinfo.value)


class TestWorkerPool:
    def test_states_persist_across_dispatches(self):
        with WorkerPool(_init_counter, [100, 200]) as pool:
            assert pool.dispatch(_bump, [1, 2]) == [101, 202]
            assert pool.dispatch(_bump, [10, 20]) == [111, 222]
            assert pool.workers == 2

    def test_task_count_must_match_workers(self):
        with WorkerPool(_init_counter, [0, 0]) as pool:
            with pytest.raises(ValueError, match="exactly 2 tasks"):
                pool.dispatch(_bump, [1])

    def test_dispatch_error_carries_worker_traceback(self):
        with WorkerPool(_init_counter, [0, 0]) as pool:
            with pytest.raises(KeyError, match="no such task") as excinfo:
                pool.dispatch(_task_boom, ["t0", "t1"])
            notes = "\n".join(getattr(excinfo.value, "__notes__", []))
            assert "_task_boom" in notes
            # The pool survives a failed round: every worker answered
            # its envelope, so the pipes stay in lockstep.
            assert pool.dispatch(_bump, [1, 1]) == [1, 1]

    def test_init_failure_surfaces(self):
        with pytest.raises(RuntimeError, match="init refused payload"):
            WorkerPool(_init_boom, ["p0", "p1"])

    def test_close_is_idempotent_and_final(self):
        pool = WorkerPool(_init_counter, [0])
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed WorkerPool"):
            pool.dispatch(_bump, [1])

    def test_needs_at_least_one_payload(self):
        with pytest.raises(ValueError):
            WorkerPool(_init_counter, [])

    def test_serial_fallback_matches_forked(self, monkeypatch):
        forked = WorkerPool(_init_counter, [10, 20])
        forked_results = [
            forked.dispatch(_bump, [1, 2]),
            forked.dispatch(_bump, [3, 4]),
        ]
        forked.close()
        # Forbid forking: the pool must degrade to serial mode and
        # produce bit-identical results.
        monkeypatch.setattr(
            multiprocessing,
            "get_context",
            lambda method: (_ for _ in ()).throw(ValueError(method)),
        )
        serial = WorkerPool(_init_counter, [10, 20])
        assert not serial.forked
        assert [
            serial.dispatch(_bump, [1, 2]),
            serial.dispatch(_bump, [3, 4]),
        ] == forked_results
        serial.close()

    def test_serial_mode_surfaces_errors_identically(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing,
            "get_context",
            lambda method: (_ for _ in ()).throw(ValueError(method)),
        )
        with WorkerPool(_init_counter, [0]) as pool:
            assert not pool.forked
            with pytest.raises(KeyError, match="no such task"):
                pool.dispatch(_task_boom, ["t"])
