"""Golden-file test for the cross-PR trajectory report.

The fixtures under ``tests/data/bench/`` are three hand-written
artifacts (two PRs of suite ``alpha``, one of suite ``beta`` with
deliberately shuffled run order) plus one schema-invalid file; the
golden markdown pins ordering, formatting and the skipped-file section
byte for byte.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.report import consolidate, render_json, render_markdown
from repro.cli import main

FIXTURES = Path(__file__).parent / "data" / "bench"
GOLDEN = FIXTURES / "report_golden.md"


class TestGolden:
    def test_markdown_matches_golden_byte_for_byte(self):
        rendered = render_markdown(consolidate(FIXTURES))
        assert rendered == GOLDEN.read_text(encoding="utf-8")

    def test_ordering_is_stable(self):
        first = consolidate(FIXTURES)
        second = consolidate(FIXTURES)
        assert first == second
        # Artifacts sort by (suite, filename)...
        assert [item["path"] for item in first["artifacts"]] == [
            "BENCH_alpha_pr1.json",
            "BENCH_alpha_pr2.json",
            "BENCH_beta.json",
        ]
        # ...and runs by (name, repetition) even though BENCH_beta.json
        # lists them shuffled on disk.
        beta = first["artifacts"][2]
        assert [(run["name"], run["repetition"]) for run in beta["runs"]] == [
            ("a_ratio", 0),
            ("z_sparse", 0),
            ("z_sparse", 1),
        ]

    def test_invalid_file_lands_in_skipped_not_silently_dropped(self):
        skipped = consolidate(FIXTURES)["skipped"]
        assert [entry["path"] for entry in skipped] == ["BENCH_broken.json"]
        assert "unsupported schema" in skipped[0]["error"]


class TestSuiteSelection:
    def test_missing_suite_is_reported(self):
        consolidated = consolidate(FIXTURES, suites=["beta", "gamma"])
        assert consolidated["missing_suites"] == ["gamma"]
        assert [item["suite"] for item in consolidated["artifacts"]] == ["beta"]
        rendered = render_markdown(consolidated)
        assert "## suite `gamma` — missing" in rendered
        assert "alpha" not in rendered

    def test_no_filter_reports_nothing_missing(self):
        assert consolidate(FIXTURES)["missing_suites"] == []

    def test_empty_directory_renders_placeholder(self, tmp_path):
        rendered = render_markdown(consolidate(tmp_path))
        assert "No benchmark artifacts found." in rendered


class TestJsonRendering:
    def test_json_round_trips_and_is_terminated(self):
        rendered = render_json(consolidate(FIXTURES))
        assert rendered.endswith("\n")
        parsed = json.loads(rendered)
        assert {item["suite"] for item in parsed["artifacts"]} == {"alpha", "beta"}


class TestReportCli:
    def test_cli_markdown_matches_golden(self, capsys):
        assert main(["bench", "report", "--dir", str(FIXTURES)]) == 0
        assert capsys.readouterr().out == GOLDEN.read_text(encoding="utf-8")

    def test_cli_suites_flag_and_out_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            [
                "bench", "report",
                "--dir", str(FIXTURES),
                "--suites", "beta,gamma",
                "--out", str(out),
            ]
        )
        assert code == 0
        text = out.read_text(encoding="utf-8")
        assert "## suite `gamma` — missing" in text
        assert capsys.readouterr().out == ""  # report went to the file

    def test_cli_json_format(self, capsys):
        assert main(["bench", "report", "--dir", str(FIXTURES), "--format", "json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["missing_suites"] == []
