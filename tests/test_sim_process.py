"""Tests for timers and generator processes."""

import pytest

from repro.sim import PeriodicTimer, Process, Simulator, Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(5.0)
        sim.run()
        assert fired == [5.0]

    def test_restart_supersedes_previous(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(5.0)
        timer.start(10.0)
        sim.run()
        assert fired == [10.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(5.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_pending_reflects_state(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.pending
        timer.start(1.0)
        assert timer.pending
        sim.run()
        assert not timer.pending


class TestPeriodicTimer:
    def test_fires_at_fixed_period(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 10.0, lambda: times.append(sim.now))
        timer.start()
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 10.0, lambda: times.append(sim.now))
        timer.start()
        sim.schedule_at(25.0, timer.stop)
        sim.run(until=100.0)
        assert times == [10.0, 20.0]

    def test_initial_delay_override(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 10.0, lambda: times.append(sim.now))
        timer.start(initial_delay=1.0)
        sim.run(until=12.0)
        assert times == [1.0, 11.0]

    def test_jitter_stays_within_bounds(self):
        sim = Simulator(seed=5)
        times = []
        timer = PeriodicTimer(sim, 10.0, lambda: times.append(sim.now), jitter=2.0)
        timer.start()
        sim.run(until=200.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(8.0 <= g <= 12.0 for g in gaps)
        assert len(set(gaps)) > 1  # actually jittered

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)

    def test_start_is_idempotent(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 10.0, lambda: times.append(sim.now))
        timer.start()
        timer.start()
        sim.run(until=15.0)
        assert times == [10.0]


class TestProcess:
    def test_generator_advances_by_yielded_delays(self):
        sim = Simulator()
        log = []

        def script():
            log.append(("start", sim.now))
            yield 5.0
            log.append(("mid", sim.now))
            yield 10.0
            log.append(("end", sim.now))

        Process(sim, script()).start()
        sim.run()
        assert log == [("start", 0.0), ("mid", 5.0), ("end", 15.0)]

    def test_finished_flag_set(self):
        sim = Simulator()

        def script():
            yield 1.0

        process = Process(sim, script())
        process.start()
        sim.run()
        assert process.finished

    def test_cancel_stops_process(self):
        sim = Simulator()
        log = []

        def script():
            yield 5.0
            log.append("never")

        process = Process(sim, script())
        process.start()
        sim.schedule_at(1.0, process.cancel)
        sim.run()
        assert log == []

    def test_negative_yield_raises(self):
        sim = Simulator()

        def script():
            yield -1.0

        Process(sim, script()).start()
        with pytest.raises(ValueError):
            sim.run()
