"""Tests for HKDF and the HMAC-DRBG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg, SystemRandomSource
from repro.crypto.hashes import constant_time_equal, fingerprint, sha256, sha256_hex
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract


class TestHkdfRfc5869:
    """RFC 5869 Appendix A test case 1 (SHA-256)."""

    def test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_empty_salt_defaults(self):
        assert hkdf(b"ikm", salt=b"", info=b"x", length=32) == hkdf(
            b"ikm", salt=b"\x00" * 32, info=b"x", length=32
        )


class TestHkdfProperties:
    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=32))
    @settings(max_examples=100)
    def test_deterministic(self, ikm, info):
        assert hkdf(ikm, info=info) == hkdf(ikm, info=info)

    def test_info_separates_keys(self):
        master = b"m" * 32
        assert hkdf(master, info=b"enc") != hkdf(master, info=b"mac")

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"p" * 32, b"", 0)
        with pytest.raises(ValueError):
            hkdf_expand(b"p" * 32, b"", 255 * 32 + 1)

    def test_long_output(self):
        out = hkdf(b"ikm", length=1000)
        assert len(out) == 1000


class TestHmacDrbg:
    def test_deterministic(self):
        assert HmacDrbg.from_int(1).read(64) == HmacDrbg.from_int(1).read(64)

    def test_seeds_separate(self):
        assert HmacDrbg.from_int(1).read(32) != HmacDrbg.from_int(2).read(32)

    def test_sequential_reads_differ(self):
        drbg = HmacDrbg.from_int(3)
        assert drbg.read(32) != drbg.read(32)

    def test_reseed_changes_stream(self):
        a = HmacDrbg.from_int(4)
        b = HmacDrbg.from_int(4)
        b.reseed(b"fresh")
        assert a.read(32) != b.read(32)

    def test_read_int_bit_length(self):
        drbg = HmacDrbg.from_int(5)
        for bits in (8, 64, 256):
            value = drbg.read_int(bits)
            assert value.bit_length() == bits

    def test_read_int_below_bounds(self):
        drbg = HmacDrbg.from_int(6)
        for _ in range(200):
            assert 0 <= drbg.read_int_below(17) < 17

    def test_read_int_below_invalid(self):
        with pytest.raises(ValueError):
            HmacDrbg.from_int(1).read_int_below(0)

    def test_empty_seed_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"")

    def test_zero_read(self):
        assert HmacDrbg.from_int(1).read(0) == b""

    def test_system_source_length(self):
        assert len(SystemRandomSource().read(16)) == 16


class TestHashes:
    def test_sha256_known_vector(self):
        assert sha256_hex(b"abc") == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )
        assert sha256(b"abc").hex() == sha256_hex(b"abc")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"same", b"same")
        assert not constant_time_equal(b"same", b"diff")
        assert not constant_time_equal(b"same", b"samelonger")

    def test_fingerprint_length(self):
        assert len(fingerprint(b"data", length=8)) == 16

    def test_fingerprint_bounds(self):
        with pytest.raises(ValueError):
            fingerprint(b"data", length=0)
        with pytest.raises(ValueError):
            fingerprint(b"data", length=33)
