"""Tests for certificates, CSRs, the CA, validation and revocation."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.pki import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    CertificateSigningRequest,
    CertificateValidator,
    DistinguishedName,
    KeyStore,
    ValidationResult,
)
from tests.conftest import make_keystore


@pytest.fixture()
def user_csr(keypair_pool):
    return CertificateSigningRequest.create(
        DistinguishedName("alice"), keypair_pool[0].private, "user-alice1"
    )


class TestCsr:
    def test_self_signature_verifies(self, user_csr):
        assert user_csr.verify()

    def test_encode_decode_roundtrip(self, user_csr):
        decoded = CertificateSigningRequest.decode(user_csr.encode())
        assert decoded.user_id == "user-alice1"
        assert decoded.verify()

    def test_tampered_user_id_fails_verification(self, user_csr, keypair_pool):
        forged = CertificateSigningRequest(
            subject=user_csr.subject,
            public_key=user_csr.public_key,
            user_id="user-mallor",
            signature=user_csr.signature,
        )
        assert not forged.verify()

    def test_substituted_key_fails_verification(self, user_csr, keypair_pool):
        forged = CertificateSigningRequest(
            subject=user_csr.subject,
            public_key=keypair_pool[1].public,
            user_id=user_csr.user_id,
            signature=user_csr.signature,
        )
        assert not forged.verify()


class TestIssuance:
    def test_issue_and_verify_chain(self, ca, user_csr):
        cert = ca.issue(user_csr, now=0.0)
        assert cert.verify_signature(ca.root_certificate.public_key)
        assert cert.user_id == "user-alice1"
        assert not cert.is_ca

    def test_user_id_cross_check_rejects_mismatch(self, ca, user_csr):
        with pytest.raises(CertificateError, match="mismatch"):
            ca.issue(user_csr, now=0.0, expected_user_id="user-bobbb1")

    def test_unsigned_csr_rejected(self, ca, keypair_pool):
        unsigned = CertificateSigningRequest(
            subject=DistinguishedName("x"),
            public_key=keypair_pool[2].public,
            user_id="user-x",
        )
        with pytest.raises(CertificateError, match="possession"):
            ca.issue(unsigned, now=0.0)

    def test_serials_increment(self, ca, keypair_pool):
        csr_a = CertificateSigningRequest.create(
            DistinguishedName("a"), keypair_pool[3].private, "user-aaaaa1"
        )
        csr_b = CertificateSigningRequest.create(
            DistinguishedName("b"), keypair_pool[4].private, "user-bbbbb1"
        )
        cert_a = ca.issue(csr_a, now=0.0)
        cert_b = ca.issue(csr_b, now=0.0)
        assert cert_b.serial == cert_a.serial + 1
        assert ca.get_issued(cert_a.serial) == cert_a

    def test_root_is_self_signed_ca(self, ca):
        assert ca.root_certificate.is_ca
        assert ca.root_certificate.is_self_signed()


class TestCertificateEncoding:
    def test_roundtrip_preserves_everything(self, ca, user_csr):
        cert = ca.issue(user_csr, now=10.0)
        decoded = Certificate.decode(cert.encode())
        assert decoded == cert
        assert decoded.fingerprint() == cert.fingerprint()

    def test_truncated_encoding_raises(self, ca, user_csr):
        cert = ca.issue(user_csr, now=0.0)
        with pytest.raises(CertificateError):
            Certificate.decode(cert.encode()[:30])

    def test_bad_magic_raises(self, ca, user_csr):
        cert = ca.issue(user_csr, now=0.0)
        blob = bytearray(cert.encode())
        blob[4:9] = b"XXXX\x01"
        with pytest.raises(CertificateError):
            Certificate.decode(bytes(blob))

    def test_extensions_roundtrip(self, ca, keypair_pool):
        base = Certificate(
            subject=DistinguishedName("e"),
            issuer=DistinguishedName("e"),
            public_key=keypair_pool[5].public,
            serial=99,
            not_before=0.0,
            not_after=100.0,
            user_id="user-exts1",
            extensions={"role": "tester", "device": "iphone"},
        )
        signed = base.with_signature(keypair_pool[5].private.sign(base.tbs_bytes()))
        decoded = Certificate.decode(signed.encode())
        assert decoded.extensions == {"role": "tester", "device": "iphone"}


class TestValidation:
    def test_valid_certificate(self, ca, user_csr):
        cert = ca.issue(user_csr, now=0.0)
        validator = CertificateValidator(root=ca.root_certificate)
        assert validator.validate(cert, now=1.0) is ValidationResult.VALID

    def test_expired(self, ca, user_csr):
        cert = ca.issue(user_csr, now=0.0, validity=100.0)
        validator = CertificateValidator(root=ca.root_certificate)
        assert validator.validate(cert, now=101.0) is ValidationResult.EXPIRED

    def test_not_yet_valid(self, ca, user_csr):
        cert = ca.issue(user_csr, now=50.0)
        validator = CertificateValidator(root=ca.root_certificate)
        assert validator.validate(cert, now=10.0) is ValidationResult.NOT_YET_VALID

    def test_tampered_signature(self, ca, user_csr):
        cert = ca.issue(user_csr, now=0.0)
        tampered = cert.with_signature(b"\x00" * len(cert.signature))
        validator = CertificateValidator(root=ca.root_certificate)
        assert validator.validate(tampered, now=1.0) is ValidationResult.BAD_SIGNATURE

    def test_untrusted_issuer(self, ca, keypair_pool, user_csr):
        other_ca = CertificateAuthority(
            name="Rogue CA", rng=HmacDrbg.from_int(999), now=0.0
        )
        cert = other_ca.issue(user_csr, now=0.0)
        validator = CertificateValidator(root=ca.root_certificate)
        assert validator.validate(cert, now=1.0) is ValidationResult.UNTRUSTED_ISSUER

    def test_same_name_rogue_ca_fails_signature(self, ca, user_csr):
        """A rogue CA mimicking the real CA's name still fails: the
        signature does not verify against the trusted root's key."""
        mimic = CertificateAuthority(rng=HmacDrbg.from_int(998), now=0.0)
        cert = mimic.issue(user_csr, now=0.0)
        validator = CertificateValidator(root=ca.root_certificate)
        assert validator.validate(cert, now=1.0) is ValidationResult.BAD_SIGNATURE

    def test_user_id_pinning(self, ca, user_csr):
        cert = ca.issue(user_csr, now=0.0)
        validator = CertificateValidator(root=ca.root_certificate)
        assert (
            validator.validate(cert, now=1.0, expected_user_id="user-bobbb1")
            is ValidationResult.USER_ID_MISMATCH
        )

    def test_revocation(self, ca, keypair_pool):
        csr = CertificateSigningRequest.create(
            DistinguishedName("r"), keypair_pool[6].private, "user-rrrrr1"
        )
        cert = ca.issue(csr, now=0.0)
        ca.revoke(cert.serial, now=5.0, reason="compromised")
        validator = CertificateValidator(
            root=ca.root_certificate, revocations=ca.revocations
        )
        assert validator.validate(cert, now=6.0) is ValidationResult.REVOKED

    def test_stale_crl_still_trusts(self, ca, keypair_pool):
        """The §IV exposure window: a device that never syncs keeps
        trusting a revoked certificate."""
        csr = CertificateSigningRequest.create(
            DistinguishedName("s"), keypair_pool[7].private, "user-sssss1"
        )
        cert = ca.issue(csr, now=0.0)
        stale = ca.revocations.snapshot()
        validator = CertificateValidator(root=ca.root_certificate, revocations=stale)
        ca.revoke(cert.serial, now=5.0)
        assert validator.validate(cert, now=6.0) is ValidationResult.VALID
        validator.update_revocations(ca.revocations)
        assert validator.validate(cert, now=6.0) is ValidationResult.REVOKED

    def test_non_ca_anchor_rejected(self, ca, user_csr):
        cert = ca.issue(user_csr, now=0.0)
        with pytest.raises(ValueError):
            CertificateValidator(root=cert)


class TestKeyStore:
    def test_provision_and_validate(self, ca, keypair_pool):
        store = make_keystore(ca, keypair_pool[8], "user-kst001")
        assert store.provisioned
        peer_store = make_keystore(ca, keypair_pool[9], "user-kst002")
        result = store.validate_and_cache(
            peer_store.own_certificate, now=1.0, expected_user_id="user-kst002"
        )
        assert result.ok
        assert store.peer_certificate("user-kst002") is not None
        assert "user-kst002" in store.known_peers()

    def test_mismatched_key_rejected(self, ca, keypair_pool):
        csr = CertificateSigningRequest.create(
            DistinguishedName("m"), keypair_pool[10].private, "user-mmmmm1"
        )
        cert = ca.issue(csr, now=0.0)
        store = KeyStore()
        with pytest.raises(ValueError):
            store.provision(keypair_pool[11].private, cert, ca.root_certificate)

    def test_unprovisioned_validation_raises(self, ca, keypair_pool):
        store = KeyStore()
        peer = make_keystore(ca, keypair_pool[9], "user-kst003")
        with pytest.raises(RuntimeError):
            store.validate_and_cache(peer.own_certificate, now=0.0)

    def test_revocation_sync_evicts_cached_peer(self, ca, keypair_pool):
        store = make_keystore(ca, keypair_pool[8], "user-kst004")
        peer = make_keystore(ca, keypair_pool[9], "user-kst005")
        store.validate_and_cache(peer.own_certificate, now=0.0)
        assert store.peer_certificate("user-kst005") is not None
        ca.revoke(peer.own_certificate.serial, now=1.0)
        store.sync_revocations(ca.revocations)
        assert store.peer_certificate("user-kst005") is None

    def test_forget_peer(self, ca, keypair_pool):
        store = make_keystore(ca, keypair_pool[8], "user-kst006")
        peer = make_keystore(ca, keypair_pool[9], "user-kst007")
        store.validate_and_cache(peer.own_certificate, now=0.0)
        store.forget_peer("user-kst007")
        assert store.peer_certificate("user-kst007") is None
