"""Tests for §V follow-action dissemination (subscription gossip)."""

import pytest

from repro.alleyoop.post import Post
from repro.core.config import SosConfig
from repro.storage.messagestore import StoredMessage
from tests.worldutil import World


@pytest.fixture()
def world(ca, keypair_pool):
    return World(ca, keypair_pool)


def gossip_config(protocol="epidemic"):
    return SosConfig(routing_protocol=protocol, relay_request_grace=0.0,
                     gossip_follows=True)


def gossip_message(author_id, action, followee, number, created_at):
    """A subscription-gossip message as it reaches the app layer (the
    middleware has already verified originator signature and cert, so the
    app never inspects those fields)."""
    body = Post(
        text="", topic="sys:subscription",
        attributes={"action": action, "followee": followee},
    ).encode()
    return StoredMessage(
        author_id=author_id, number=number, created_at=created_at,
        body=body, signature=b"", author_cert=b"", hops=1,
        received_at=created_at,
    )


class TestFollowGossip:
    def test_follow_action_disseminates(self, world):
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        carol = world.add_user("carol", config=gossip_config())
        world.start()
        # bob follows carol; the action is a system message epidemic
        # carries to everyone in range.
        bob.follow(carol.user_id)
        world.run(120.0)
        assert alice.social_map.get(carol.user_id) == {bob.user_id}

    def test_unfollow_retracts(self, world):
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        carol = world.add_user("carol", config=gossip_config())
        world.start()
        bob.follow(carol.user_id)
        world.run(120.0)
        bob.unfollow(carol.user_id)
        world.run(240.0)
        assert alice.social_map.get(carol.user_id) == set()

    def test_gossip_never_reaches_the_feed(self, world):
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        carol = world.add_user("carol", config=gossip_config())
        # alice follows bob, so she'd see bob's regular posts...
        alice.follow(bob.user_id)
        world.start()
        bob.follow(carol.user_id)  # ...but this is gossip, not content
        world.run(120.0)
        assert alice.timeline() == []

    def test_gossip_off_by_default(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        carol = world.add_user("carol")
        world.start()
        bob.follow(carol.user_id)
        world.run(120.0)
        assert alice.social_map == {}
        assert bob.own_post_count() == 0  # no system message was created

    def test_hints_reach_destination_aware_protocol(self, world):
        alice = world.add_user("alice", config=gossip_config("bubble"))
        bob = world.add_user("bob", config=gossip_config("bubble"))
        carol = world.add_user("carol", config=gossip_config("bubble"))
        world.start()
        bob.follow(carol.user_id)
        world.run(120.0)
        hints = alice.sos.messages.protocol.subscriber_hints
        assert hints.get(carol.user_id) == {bob.user_id}

    def test_stale_unfollow_cannot_clobber_newer_follow(self, world):
        """Regression: DTN delivery reorders freely, so the unfollow from
        t=5 may arrive *after* the re-follow from t=10.  Arrival-order
        application used to regress the social map; action-order
        application must not."""
        alice = world.add_user("alice", config=gossip_config("bubble"))
        bob = world.add_user("bob", config=gossip_config("bubble"))
        carol = world.add_user("carol", config=gossip_config("bubble"))
        # bob: follow (msg 1, t=1), unfollow (msg 2, t=5), follow (msg 3, t=10).
        # alice hears 1 and 3 first; the stale unfollow straggles in last.
        alice.sos_message_received(
            gossip_message(bob.user_id, "follow", carol.user_id, 1, 1.0), "relay"
        )
        alice.sos_message_received(
            gossip_message(bob.user_id, "follow", carol.user_id, 3, 10.0), "relay"
        )
        alice.sos_message_received(
            gossip_message(bob.user_id, "unfollow", carol.user_id, 2, 5.0), "relay"
        )
        assert alice.social_map.get(carol.user_id) == {bob.user_id}
        hints = alice.sos.messages.protocol.subscriber_hints
        assert hints.get(carol.user_id) == {bob.user_id}

    def test_stale_follow_cannot_resurrect_newer_unfollow(self, world):
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        carol = world.add_user("carol", config=gossip_config())
        alice.sos_message_received(
            gossip_message(bob.user_id, "unfollow", carol.user_id, 2, 8.0), "relay"
        )
        alice.sos_message_received(
            gossip_message(bob.user_id, "follow", carol.user_id, 1, 2.0), "relay"
        )
        assert alice.social_map.get(carol.user_id) == set()

    def test_gossip_ordering_is_per_pair(self, world):
        """A newer action about one followee must not shadow older gossip
        about a different followee by the same author."""
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        carol = world.add_user("carol", config=gossip_config())
        dave = world.add_user("dave", config=gossip_config())
        alice.sos_message_received(
            gossip_message(bob.user_id, "follow", carol.user_id, 2, 9.0), "relay"
        )
        alice.sos_message_received(
            gossip_message(bob.user_id, "follow", dave.user_id, 1, 3.0), "relay"
        )
        assert alice.social_map.get(carol.user_id) == {bob.user_id}
        assert alice.social_map.get(dave.user_id) == {bob.user_id}

    def test_malformed_payload_emits_diagnostic(self, world):
        """A verified message whose body does not decode as a Post is
        evidence of a malformed sender: it must be traced, not silently
        swallowed (and it must never reach the feed)."""
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        alice.follow(bob.user_id)
        junk = StoredMessage(
            author_id=bob.user_id, number=1, created_at=0.0,
            body=b"\xff\xfenot json", signature=b"", author_cert=b"",
            hops=1, received_at=0.0,
        )
        alice.sos_message_received(junk, "relay")
        # Well-formed JSON with a misshapen attrs field must take the
        # same diagnostic path, not crash the delivery callback.
        misshapen = StoredMessage(
            author_id=bob.user_id, number=2, created_at=0.0,
            body=b'{"v": 1, "text": "x", "attrs": "zz"}',
            signature=b"", author_cert=b"", hops=1, received_at=0.0,
        )
        alice.sos_message_received(misshapen, "relay")
        events = alice.sim.trace.select(category="app", kind="malformed_payload")
        assert len(events) == 2
        assert events[0].data["author"] == bob.user_id
        assert alice.timeline() == []

    def test_misshapen_gossip_attributes_are_ignored(self, world):
        """Attribute values are sender-controlled: a non-string followee
        (unhashable or not) or action must neither crash the delivery
        callback nor pollute the social map."""
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        for attributes in (
            {"action": "follow", "followee": ["x"]},
            {"action": "follow", "followee": 7},
            {"action": ["follow"], "followee": "u000000099"},
        ):
            body = Post(text="", topic="sys:subscription", attributes=attributes).encode()
            message = StoredMessage(
                author_id=bob.user_id, number=1, created_at=0.0, body=body,
                signature=b"", author_cert=b"", hops=1, received_at=0.0,
            )
            alice.sos_message_received(message, "relay")
        assert alice.social_map in ({}, {"u000000099": set()})
        assert alice.timeline() == []

    def test_regular_posts_still_flow_with_gossip_on(self, world):
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        bob.follow(alice.user_id)
        world.start()
        alice.post("real content")
        world.run(180.0)
        assert [e.post.text for e in bob.timeline()] == ["real content"]
