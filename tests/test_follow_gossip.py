"""Tests for §V follow-action dissemination (subscription gossip)."""

import pytest

from repro.core.config import SosConfig
from tests.worldutil import World


@pytest.fixture()
def world(ca, keypair_pool):
    return World(ca, keypair_pool)


def gossip_config(protocol="epidemic"):
    return SosConfig(routing_protocol=protocol, relay_request_grace=0.0,
                     gossip_follows=True)


class TestFollowGossip:
    def test_follow_action_disseminates(self, world):
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        carol = world.add_user("carol", config=gossip_config())
        world.start()
        # bob follows carol; the action is a system message epidemic
        # carries to everyone in range.
        bob.follow(carol.user_id)
        world.run(120.0)
        assert alice.social_map.get(carol.user_id) == {bob.user_id}

    def test_unfollow_retracts(self, world):
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        carol = world.add_user("carol", config=gossip_config())
        world.start()
        bob.follow(carol.user_id)
        world.run(120.0)
        bob.unfollow(carol.user_id)
        world.run(240.0)
        assert alice.social_map.get(carol.user_id) == set()

    def test_gossip_never_reaches_the_feed(self, world):
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        carol = world.add_user("carol", config=gossip_config())
        # alice follows bob, so she'd see bob's regular posts...
        alice.follow(bob.user_id)
        world.start()
        bob.follow(carol.user_id)  # ...but this is gossip, not content
        world.run(120.0)
        assert alice.timeline() == []

    def test_gossip_off_by_default(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        carol = world.add_user("carol")
        world.start()
        bob.follow(carol.user_id)
        world.run(120.0)
        assert alice.social_map == {}
        assert bob.own_post_count() == 0  # no system message was created

    def test_hints_reach_destination_aware_protocol(self, world):
        alice = world.add_user("alice", config=gossip_config("bubble"))
        bob = world.add_user("bob", config=gossip_config("bubble"))
        carol = world.add_user("carol", config=gossip_config("bubble"))
        world.start()
        bob.follow(carol.user_id)
        world.run(120.0)
        hints = alice.sos.messages.protocol.subscriber_hints
        assert hints.get(carol.user_id) == {bob.user_id}

    def test_regular_posts_still_flow_with_gossip_on(self, world):
        alice = world.add_user("alice", config=gossip_config())
        bob = world.add_user("bob", config=gossip_config())
        bob.follow(alice.user_id)
        world.start()
        alice.post("real content")
        world.run(180.0)
        assert [e.post.text for e in bob.timeline()] == ["real content"]
