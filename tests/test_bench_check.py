"""The regression gate: synthetic baselines vs slowed/diverged runs."""

from __future__ import annotations

import pytest

from repro.bench.check import DEFAULT_THRESHOLD, compare_artifacts
from repro.bench.schema import dump_artifact, make_run_entry, new_artifact
from repro.cli import main

SHA_A = "ab" * 32
SHA_B = "cd" * 32


def _artifact(points, suite="synthetic"):
    """points: list of (name, rep, cpu_s, sha) or (name, rep, cpu_s, sha, config)."""
    runs = []
    for point in points:
        name, rep, cpu_s, sha = point[:4]
        config = point[4] if len(point) > 4 else {"duration_days": 1}
        runs.append(
            make_run_entry(name, rep, config, {"wall_s": cpu_s, "cpu_s": cpu_s}, sha)
        )
    return new_artifact(suite, runs=runs, sampler="proc")


BASELINE = [("a", 0, 2.0, SHA_A), ("a", 1, 2.1, SHA_A), ("b", 0, 4.0, SHA_B)]


class TestGateVerdicts:
    def test_equal_run_passes(self):
        report = compare_artifacts(_artifact(BASELINE), _artifact(BASELINE))
        assert report.ok
        assert report.compared == 3
        assert report.failures == []
        assert "PASS: 3 compared, 0 regressed" in report.render()

    def test_artificially_slowed_run_fails(self):
        slowed = [("a", 0, 2.0, SHA_A), ("a", 1, 2.1, SHA_A), ("b", 0, 7.0, SHA_B)]
        report = compare_artifacts(_artifact(slowed), _artifact(BASELINE))
        assert not report.ok
        assert [entry.name for entry in report.failures] == ["b"]
        assert report.failures[0].status == "slow"
        assert "FAIL" in report.render()

    def test_threshold_knob_moves_the_bar(self):
        # b: 4.0 -> 5.4 is a 35% slowdown.
        current = _artifact([("b", 0, 5.4, SHA_B)])
        baseline = _artifact([("b", 0, 4.0, SHA_B)])
        assert compare_artifacts(current, baseline, threshold=0.5).ok
        assert not compare_artifacts(current, baseline, threshold=0.2).ok
        with pytest.raises(ValueError, match="non-negative"):
            compare_artifacts(current, baseline, threshold=-0.1)

    def test_min_seconds_skips_noise_floor_points(self):
        # A 3x slowdown on a 5ms point is noise, not a regression...
        current = _artifact([("fast", 0, 0.015, SHA_A)])
        baseline = _artifact([("fast", 0, 0.005, SHA_A)])
        report = compare_artifacts(current, baseline)
        assert report.entries[0].status == "skipped-small"
        # ...but a skip-only comparison still counts as compared work.
        assert report.compared == 1 and report.ok
        # Lowering the floor judges the point again.
        assert not compare_artifacts(current, baseline, min_seconds=0.001).ok

    def test_trace_mismatch_fails_even_when_faster(self):
        current = _artifact([("a", 0, 1.0, SHA_B)])
        baseline = _artifact([("a", 0, 2.0, SHA_A)])
        report = compare_artifacts(current, baseline)
        assert not report.ok
        assert report.failures[0].status == "trace-mismatch"
        # The escape hatch for deliberate re-baselines:
        assert compare_artifacts(current, baseline, check_traces=False).ok

    def test_null_trace_sides_skip_the_trace_check(self):
        # Recorder-style entries carry no sha; only timing is judged.
        current = _artifact([("ratio", 0, 2.0, None)])
        baseline = _artifact([("ratio", 0, 2.0, SHA_A)])
        assert compare_artifacts(current, baseline).ok

    def test_config_drift_is_not_comparable(self):
        current = _artifact([("a", 0, 2.0, SHA_A, {"duration_days": 2})])
        baseline = _artifact([("a", 0, 2.0, SHA_A, {"duration_days": 1})])
        report = compare_artifacts(current, baseline)
        assert report.entries[0].status == "config-drift"
        # Drift was the only shared key, so nothing was compared: FAIL.
        assert report.compared == 0 and not report.ok

    def test_no_shared_runs_is_a_failure(self):
        report = compare_artifacts(
            _artifact([("only_current", 0, 1.0, SHA_A)]),
            _artifact([("only_baseline", 0, 1.0, SHA_A)]),
        )
        assert not report.ok
        assert "no comparable runs" in report.render()

    def test_disjoint_extra_runs_do_not_disturb_shared_ones(self):
        # The CI shape: smoke artifact vs the default baseline, which
        # additionally holds the full-study point.
        current = _artifact([("a", 0, 2.0, SHA_A)])
        baseline = _artifact(BASELINE + [("full_study", 0, 20.0, SHA_B)])
        report = compare_artifacts(current, baseline)
        assert report.ok and report.compared == 1

    def test_cross_host_note_is_reported(self):
        current = _artifact(BASELINE)
        baseline = _artifact(BASELINE)
        baseline["host"]["fingerprint"] = "0" * 16
        report = compare_artifacts(current, baseline)
        assert report.ok  # informational, not a failure
        assert any("fingerprints differ" in note for note in report.notes)
        assert "note:" in report.render()

    def test_missing_metric_is_skipped_not_crashed(self):
        current = _artifact([("a", 0, 2.0, SHA_A)])
        baseline = _artifact([("a", 0, 2.0, SHA_A)])
        del baseline["runs"][0]["metrics"]["cpu_s"]
        report = compare_artifacts(current, baseline)
        assert report.entries[0].status == "skipped-small"
        assert "absent" in report.entries[0].detail

    def test_default_threshold_is_the_documented_one(self):
        assert DEFAULT_THRESHOLD == 0.5


class TestCheckCli:
    def _write(self, tmp_path, name, artifact):
        path = tmp_path / name
        dump_artifact(artifact, path)
        return str(path)

    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _artifact(BASELINE))
        same = self._write(tmp_path, "same.json", _artifact(BASELINE))
        slowed = self._write(
            tmp_path,
            "slow.json",
            _artifact([("a", 0, 9.0, SHA_A), ("a", 1, 2.1, SHA_A), ("b", 0, 4.0, SHA_B)]),
        )
        assert main(["bench", "check", same, "--against", base]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["bench", "check", slowed, "--against", base]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "a#0" in out

    def test_threshold_flag_reaches_the_gate(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _artifact([("b", 0, 4.0, SHA_B)]))
        cur = self._write(tmp_path, "cur.json", _artifact([("b", 0, 5.4, SHA_B)]))
        assert main(["bench", "check", cur, "--against", base]) == 0
        capsys.readouterr()
        assert (
            main(["bench", "check", cur, "--against", base, "--threshold", "0.2"]) == 1
        )

    def test_schema_errors_exit_2(self, tmp_path, capsys):
        good = self._write(tmp_path, "good.json", _artifact(BASELINE))
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert main(["bench", "check", str(broken), "--against", good]) == 2
        assert main(["bench", "check", good, "--against", str(tmp_path / "nope")]) == 2
