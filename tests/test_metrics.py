"""Tests for CDFs, the trace collector, delay/delivery analyses and the
map overlay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.point import Point
from repro.geo.region import Region
from repro.metrics import (
    DelayAnalysis,
    DeliveryAnalysis,
    EmpiricalCdf,
    MapOverlay,
    TraceCollector,
)
from repro.sim.trace import TraceRecorder

H = 3600.0


class TestEmpiricalCdf:
    def test_at(self):
        cdf = EmpiricalCdf([1, 2, 3, 4])
        assert cdf.at(0) == 0.0
        assert cdf.at(2) == 0.5
        assert cdf.at(4) == 1.0
        assert cdf.at(100) == 1.0

    def test_empty(self):
        cdf = EmpiricalCdf([])
        assert cdf.at(5) == 0.0
        assert cdf.fraction_greater(5) == 0.0
        with pytest.raises(ValueError):
            cdf.quantile(0.5)

    def test_fraction_greater_and_at_least(self):
        cdf = EmpiricalCdf([0.5, 0.8, 0.8, 1.0])
        assert cdf.fraction_greater(0.8) == 0.25
        assert cdf.fraction_at_least(0.8) == 0.75

    def test_quantile(self):
        cdf = EmpiricalCdf([10, 20, 30, 40])
        assert cdf.quantile(0.0) == 10
        assert cdf.quantile(0.5) == 20
        assert cdf.quantile(1.0) == 40
        assert cdf.median() == 20

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([1]).quantile(1.5)

    def test_curve_collapses_ties(self):
        cdf = EmpiricalCdf([1, 1, 2])
        assert cdf.curve() == [(1, 2 / 3), (2, 1.0)]

    def test_series(self):
        cdf = EmpiricalCdf([1, 2, 3])
        assert cdf.series([0, 2]) == [(0.0, 0.0), (2.0, 2 / 3)]

    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_monotonicity(self, samples):
        cdf = EmpiricalCdf(samples)
        xs = sorted(set(samples))
        values = [cdf.at(x) for x in xs]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] == 1.0

    # -- edge cases the medium-scale bench reads rely on ---------------------
    def test_empty_everything(self):
        cdf = EmpiricalCdf([])
        assert cdf.n == 0
        assert cdf.samples == ()
        assert cdf.fraction_at_least(0.0) == 0.0
        assert cdf.curve() == []
        assert cdf.series([1, 2]) == [(1.0, 0.0), (2.0, 0.0)]
        with pytest.raises(ValueError):
            cdf.mean()
        with pytest.raises(ValueError):
            cdf.median()

    def test_quantile_extremes_with_ties(self):
        cdf = EmpiricalCdf([5.0, 5.0, 5.0, 9.0])
        assert cdf.quantile(0.0) == 5.0  # smallest sample, not an interpolation
        assert cdf.quantile(1.0) == 9.0  # largest sample exactly
        assert cdf.quantile(0.75) == 5.0
        assert cdf.median() == 5.0

    def test_quantile_rejects_out_of_range_low(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([1]).quantile(-0.1)

    def test_all_tied_samples(self):
        cdf = EmpiricalCdf([7.0] * 5)
        assert cdf.at(7.0) == 1.0
        assert cdf.at(6.999) == 0.0
        assert cdf.fraction_at_least(7.0) == 1.0
        assert cdf.fraction_greater(7.0) == 0.0
        assert cdf.quantile(0.0) == cdf.quantile(1.0) == 7.0
        assert cdf.curve() == [(7.0, 1.0)]

    def test_single_sample(self):
        cdf = EmpiricalCdf([42.0])
        assert cdf.n == 1
        assert cdf.at(41.9) == 0.0
        assert cdf.at(42.0) == 1.0
        assert cdf.quantile(0.5) == 42.0
        assert cdf.mean() == 42.0


def build_trace():
    """A tiny hand-built study trace.

    alice posts m1 at t=0 and m2 at t=10h; bob (subscribed at t=0)
    receives m1 at 2h (1 hop) and m2 at 40h (2 hops); carol (subscribed
    at t=5h) receives m1 at 30h (2 hops) and never gets m2.
    """
    trace = TraceRecorder()
    trace.emit(0.0, "social", "follow", follower="bob", followee="alice")
    trace.emit(0.0, "message", "created", owner="alice", author="alice", number=1, size=5)
    trace.emit(2 * H, "message", "received", owner="bob", author="alice", number=1,
               hops=1, created_at=0.0, from_user="alice", interested=True)
    trace.emit(5 * H, "social", "follow", follower="carol", followee="alice")
    trace.emit(10 * H, "message", "created", owner="alice", author="alice", number=2, size=5)
    trace.emit(30 * H, "message", "received", owner="carol", author="alice", number=1,
               hops=2, created_at=0.0, from_user="bob", interested=True)
    trace.emit(40 * H, "message", "received", owner="bob", author="alice", number=2,
               hops=2, created_at=10 * H, from_user="carol", interested=True)
    return trace


class TestTraceCollector:
    def test_counts(self):
        collector = TraceCollector(build_trace())
        assert collector.unique_message_count == 2
        assert collector.dissemination_count == 3

    def test_first_deliveries(self):
        collector = TraceCollector(build_trace())
        firsts = collector.first_deliveries()
        assert firsts[("bob", "alice", 1)].hops == 1
        assert firsts[("carol", "alice", 1)].delay == 30 * H

    def test_duplicate_keeps_earliest(self):
        trace = build_trace()
        trace.emit(50 * H, "message", "received", owner="bob", author="alice", number=1,
                   hops=3, created_at=0.0, from_user="x", interested=True)
        collector = TraceCollector(trace)
        assert collector.first_deliveries()[("bob", "alice", 1)].hops == 1

    def test_subscription_windows(self):
        collector = TraceCollector(build_trace())
        windows = {(w.follower, w.followee): w for w in collector.subscription_windows}
        assert windows[("carol", "alice")].start == 5 * H
        assert windows[("bob", "alice")].active_at(100 * H)

    def test_unfollow_closes_window(self):
        trace = build_trace()
        trace.emit(60 * H, "social", "unfollow", follower="bob", followee="alice")
        collector = TraceCollector(trace)
        window = [w for w in collector.subscription_windows if w.follower == "bob"][0]
        assert window.end == 60 * H
        assert not window.active_at(61 * H)


class TestDelayAnalysis:
    def test_cdf_points(self):
        analysis = DelayAnalysis.from_collector(TraceCollector(build_trace()))
        # Delays: 2h (1hop), 30h (2hop), 30h... wait: 40h-10h = 30h (2hop).
        assert analysis.all_hops.n == 3
        assert analysis.one_hop.n == 1
        assert analysis.fraction_within_hours(24) == pytest.approx(1 / 3)
        assert analysis.fraction_within_hours(24, one_hop=True) == 1.0
        assert analysis.fraction_within_hours(94) == 1.0

    def test_paper_points_keys(self):
        analysis = DelayAnalysis.from_collector(TraceCollector(build_trace()))
        points = analysis.paper_points()
        assert set(points) == {
            "all_within_24h", "all_within_94h",
            "one_hop_within_24h", "one_hop_within_94h",
        }

    def test_curve_rows(self):
        analysis = DelayAnalysis.from_collector(TraceCollector(build_trace()))
        rows = analysis.curve_hours([1, 24, 94])
        assert len(rows) == 3
        assert rows[1][1] == pytest.approx(1 / 3)


class TestDeliveryAnalysis:
    def test_per_subscription_ratios(self):
        collector = TraceCollector(build_trace())
        analysis = DeliveryAnalysis.from_collector(
            collector, [("bob", "alice"), ("carol", "alice")]
        )
        by_pair = {(r.follower, r.followee): r for r in analysis.ratios}
        bob = by_pair[("bob", "alice")]
        assert bob.messages_posted == 2
        assert bob.ratio_all == 1.0
        assert bob.ratio_one_hop == 0.5
        carol = by_pair[("carol", "alice")]
        # carol subscribed at 5h: m1 (t=0) predates the subscription, m2 counts.
        assert carol.messages_posted == 1
        assert carol.ratio_all == 0.0

    def test_window_end_truncates_denominator(self):
        collector = TraceCollector(build_trace())
        analysis = DeliveryAnalysis.from_collector(
            collector, [("bob", "alice")], window_end=5 * H
        )
        assert analysis.ratios[0].messages_posted == 1

    def test_fraction_reads(self):
        collector = TraceCollector(build_trace())
        analysis = DeliveryAnalysis.from_collector(
            collector, [("bob", "alice"), ("carol", "alice")]
        )
        assert analysis.fraction_of_subscriptions_above(0.80) == 0.5
        assert analysis.fraction_of_subscriptions_above(0.70) == 0.5
        assert analysis.overall_delivery_ratio() == pytest.approx(2 / 3)

    def test_unmeasurable_subscription_excluded(self):
        collector = TraceCollector(build_trace())
        analysis = DeliveryAnalysis.from_collector(
            collector, [("bob", "nobody")]
        )
        assert analysis.ratios[0].ratio_all is None
        assert analysis.cdf_all().n == 0


class TestMapOverlay:
    def test_coverage_and_centroid(self):
        overlay = MapOverlay(Region(0, 0, 1000, 1000), cell_size=100)
        overlay.add("created", 0.0, Point(50, 50), "a")
        overlay.add("created", 1.0, Point(850, 850), "b")
        overlay.add("disseminated", 2.0, Point(450, 450), "c")
        assert overlay.coverage_km2("created") == pytest.approx(0.02)
        assert overlay.centroid("created") == Point(450, 450)
        assert len(overlay.points("disseminated")) == 1

    def test_unknown_kind_rejected(self):
        overlay = MapOverlay(Region(0, 0, 100, 100))
        with pytest.raises(ValueError):
            overlay.add("teleported", 0.0, Point(1, 1), "x")

    def test_hot_cells_ranked(self):
        overlay = MapOverlay(Region(0, 0, 1000, 1000), cell_size=100)
        for _ in range(3):
            overlay.add("disseminated", 0.0, Point(50, 50), "x")
        overlay.add("disseminated", 0.0, Point(950, 950), "y")
        hot = overlay.hot_cells("disseminated", top=1)
        assert hot[0] == ((0, 0), 3)

    def test_ascii_map_dimensions_and_markers(self):
        overlay = MapOverlay(Region(0, 0, 1000, 1000))
        overlay.add("created", 0.0, Point(10, 10), "a")
        overlay.add("disseminated", 0.0, Point(990, 990), "b")
        art = overlay.ascii_map(width=20, height=10)
        lines = art.splitlines()
        assert len(lines) == 10 and all(len(l) == 20 for l in lines)
        assert "b" in art and "r" in art

    def test_empty_centroid_raises(self):
        overlay = MapOverlay(Region(0, 0, 100, 100))
        with pytest.raises(ValueError):
            overlay.centroid("created")
