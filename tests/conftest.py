"""Shared fixtures for the test suite.

Key-generation is the slowest primitive, so a module-scoped pool of
deterministic key pairs and a pre-provisioned PKI are shared by every test
that does not specifically exercise key generation.
"""

from __future__ import annotations

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaKeyPair, generate_keypair
from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import DistinguishedName
from repro.pki.csr import CertificateSigningRequest
from repro.pki.keystore import KeyStore


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "chaos_smoke: miniature chaos-convergence property checks, cheap "
        "enough for their own CI lane (select with -m chaos_smoke)",
    )


@pytest.fixture(scope="session")
def keypair_pool():
    """Twelve deterministic 1024-bit key pairs, generated once."""
    return [generate_keypair(1024, rng=HmacDrbg.from_int(7000 + i)) for i in range(12)]


@pytest.fixture(scope="session")
def ca():
    """A session-wide certificate authority."""
    return CertificateAuthority(rng=HmacDrbg.from_int(424242), now=0.0)


def make_keystore(ca: CertificateAuthority, keypair: RsaKeyPair, user_id: str, now: float = 0.0) -> KeyStore:
    """Provision a keystore through the full CSR flow."""
    csr = CertificateSigningRequest.create(
        DistinguishedName(common_name=user_id), keypair.private, user_id
    )
    cert = ca.issue(csr, now=now, expected_user_id=user_id)
    store = KeyStore()
    store.provision(private_key=keypair.private, certificate=cert, root=ca.root_certificate)
    return store


@pytest.fixture()
def provisioned_keystores(ca, keypair_pool):
    """Factory: keystores for user ids 'u000000000'...'u000000009'."""

    def _factory(count: int = 2):
        return {
            f"u{i:09d}": make_keystore(ca, keypair_pool[i], f"u{i:09d}")
            for i in range(count)
        }

    return _factory
