"""Tests for the social digraph, metrics and the Fig. 4a reconstruction.

Every §VI-A statistic the paper publishes is asserted here, and our
from-scratch metric implementations are cross-validated against networkx.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.social import (
    FIGURE_4A_EDGES,
    INITIAL_SUBSCRIPTIONS,
    LATE_FOLLOWS,
    SocialDigraph,
    average_shortest_path_length,
    center,
    degree_bounded_digraph,
    density_directed,
    density_undirected,
    diameter,
    eccentricities,
    figure_4a_graph,
    hub_and_cluster_digraph,
    make_social_graph,
    powerlaw_cluster_digraph,
    radius,
    random_digraph,
    reciprocity,
    resolve_social_graph_kind,
    transitivity_undirected,
)
from repro.social.metrics import degree_histogram, degree_summary


class TestDigraphBasics:
    def test_add_edge_and_queries(self):
        g = SocialDigraph()
        g.add_edge("a", "b")
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")
        assert g.following("a") == {"b"}
        assert g.followers("b") == {"a"}
        assert g.out_degree("a") == 1 and g.in_degree("b") == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            SocialDigraph().add_edge("a", "a")

    def test_remove_edge(self):
        g = SocialDigraph.from_edges([("a", "b")])
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.edge_count == 0

    def test_undirected_projection(self):
        g = SocialDigraph.from_edges([("a", "b"), ("b", "a"), ("b", "c")])
        adj = g.undirected_adjacency()
        assert adj["a"] == {"b"}
        assert adj["c"] == {"b"}
        assert g.undirected_edge_count() == 2

    def test_copy_is_independent(self):
        g = SocialDigraph.from_edges([("a", "b")])
        clone = g.copy()
        clone.add_edge("b", "a")
        assert not g.has_edge("b", "a")

    def test_weak_connectivity(self):
        connected = SocialDigraph.from_edges([("a", "b"), ("c", "b")])
        assert connected.is_weakly_connected()
        disconnected = SocialDigraph.from_edges([("a", "b")], nodes=["z"])
        assert not disconnected.is_weakly_connected()


class TestFigure4aReconstruction:
    """Every number §VI-A publishes, asserted against our reconstruction."""

    @pytest.fixture(scope="class")
    def graph(self):
        return figure_4a_graph()

    def test_ten_nodes(self, graph):
        assert graph.node_count == 10

    def test_density_is_0_64(self, graph):
        assert round(density_directed(graph), 2) == 0.64

    def test_average_shortest_path_is_1_3(self, graph):
        assert round(average_shortest_path_length(graph), 1) == 1.3

    def test_diameter_is_2(self, graph):
        assert diameter(graph) == 2

    def test_radius_is_1_with_centers_6_and_7(self, graph):
        assert radius(graph) == 1
        assert center(graph) == [6, 7]

    def test_transitivity_is_0_80(self, graph):
        assert round(transitivity_undirected(graph), 2) == 0.80

    def test_node1_follows_node3_unreciprocated(self, graph):
        """The one adjacency fact the paper states explicitly."""
        assert graph.has_edge(1, 3)
        assert not graph.has_edge(3, 1)

    def test_46_initial_subscriptions(self):
        assert len(INITIAL_SUBSCRIPTIONS) == 46

    def test_late_follows_complete_the_graph(self):
        assert len(LATE_FOLLOWS) == 12
        assert set(INITIAL_SUBSCRIPTIONS) | set(LATE_FOLLOWS) == set(FIGURE_4A_EDGES)
        assert not set(INITIAL_SUBSCRIPTIONS) & set(LATE_FOLLOWS)

    def test_day0_graph_has_46_edges(self):
        assert figure_4a_graph(include_late_follows=False).edge_count == 46

    def test_weakly_connected(self, graph):
        assert graph.is_weakly_connected()


class TestCrossValidationWithNetworkx:
    """Our from-scratch metrics must agree with networkx exactly."""

    def _nx_pair(self, graph):
        nx_graph = nx.DiGraph(list(graph.edges()))
        nx_graph.add_nodes_from(graph.nodes)
        return nx_graph, nx.Graph(nx_graph)

    @pytest.fixture(scope="class")
    def graphs(self):
        rng = random.Random(31)
        out = [figure_4a_graph()]
        for i in range(5):
            out.append(random_digraph(range(8 + i), density=0.4, rng=rng))
        return out

    def test_density(self, graphs):
        for g in graphs:
            nx_dir, _ = self._nx_pair(g)
            assert density_directed(g) == pytest.approx(nx.density(nx_dir))

    def test_transitivity(self, graphs):
        for g in graphs:
            _, nx_und = self._nx_pair(g)
            assert transitivity_undirected(g) == pytest.approx(nx.transitivity(nx_und))

    def test_average_shortest_path(self, graphs):
        for g in graphs:
            _, nx_und = self._nx_pair(g)
            if not nx.is_connected(nx_und):
                continue
            assert average_shortest_path_length(g) == pytest.approx(
                nx.average_shortest_path_length(nx_und)
            )

    def test_eccentricity_diameter_radius_center(self, graphs):
        for g in graphs:
            _, nx_und = self._nx_pair(g)
            if not nx.is_connected(nx_und):
                continue
            assert eccentricities(g) == nx.eccentricity(nx_und)
            assert diameter(g) == nx.diameter(nx_und)
            assert radius(g) == nx.radius(nx_und)
            assert center(g) == sorted(nx.center(nx_und), key=repr)

    def test_reciprocity(self, graphs):
        for g in graphs:
            nx_dir, _ = self._nx_pair(g)
            if g.edge_count == 0:
                continue
            assert reciprocity(g) == pytest.approx(nx.reciprocity(nx_dir))


class TestMetricsEdgeCases:
    def test_empty_graph(self):
        g = SocialDigraph()
        assert density_directed(g) == 0.0
        assert transitivity_undirected(g) == 0.0
        assert reciprocity(g) == 0.0

    def test_single_node(self):
        g = SocialDigraph()
        g.add_node("only")
        assert average_shortest_path_length(g) == 0.0
        assert degree_summary(g)["in_max"] == 0

    def test_disconnected_raises_for_path_metrics(self):
        g = SocialDigraph.from_edges([("a", "b")], nodes=["z"])
        with pytest.raises(ValueError):
            average_shortest_path_length(g)
        with pytest.raises(ValueError):
            diameter(g)

    def test_density_undirected(self):
        g = SocialDigraph.from_edges([("a", "b"), ("b", "a"), ("b", "c")])
        # 2 undirected pairs of 3 possible
        assert density_undirected(g) == pytest.approx(2 / 3)


class TestGenerators:
    def test_random_digraph_hits_target_density(self):
        rng = random.Random(11)
        g = random_digraph(range(20), density=0.3, rng=rng)
        assert density_directed(g) == pytest.approx(0.3, abs=0.05)

    def test_random_digraph_invalid_density(self):
        with pytest.raises(ValueError):
            random_digraph(range(5), density=1.5, rng=random.Random(1))

    def test_hub_and_cluster_centers(self):
        rng = random.Random(12)
        g = hub_and_cluster_digraph(range(1, 13), rng, hub_count=2)
        assert radius(g) == 1
        assert set(center(g)) >= {1, 2}

    def test_hub_count_bound(self):
        with pytest.raises(ValueError):
            hub_and_cluster_digraph(range(3), random.Random(1), hub_count=3)

    @given(st.integers(6, 16), st.floats(0.2, 0.8))
    @settings(max_examples=25, deadline=None)
    def test_random_digraph_properties(self, n, density):
        g = random_digraph(range(n), density=density, rng=random.Random(n))
        assert g.node_count == n
        assert g.edge_count <= n * (n - 1)
        for a, b in g.edges():
            assert a != b


class TestSparseGenerators:
    """The large-N generator family: hard degree bounds, reciprocity,
    determinism and connectivity, independent of population size."""

    @given(st.integers(6, 60), st.integers(2, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_degree_bound_is_hard(self, n, out_degree, seed):
        g = degree_bounded_digraph(range(n), random.Random(seed), out_degree=out_degree)
        cap = min(out_degree, n - 1)
        assert g.node_count == n
        assert all(g.out_degree(node) <= cap for node in g.nodes)
        assert all(g.out_degree(node) >= 1 for node in g.nodes)  # ring backbone
        assert g.edge_count <= n * cap

    @given(st.integers(6, 60), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_degree_bounded_weakly_connected(self, n, seed):
        g = degree_bounded_digraph(range(n), random.Random(seed), out_degree=3)
        assert g.is_weakly_connected()

    def test_degree_bounded_deterministic_under_fixed_rng(self):
        a = degree_bounded_digraph(range(40), random.Random(99))
        b = degree_bounded_digraph(range(40), random.Random(99))
        c = degree_bounded_digraph(range(40), random.Random(100))
        assert sorted(a.edges()) == sorted(b.edges())
        assert sorted(a.edges()) != sorted(c.edges())

    def test_degree_bounded_reciprocity_tracks_knob(self):
        lo = degree_bounded_digraph(range(200), random.Random(5), reciprocity=0.0)
        hi = degree_bounded_digraph(range(200), random.Random(5), reciprocity=1.0)
        assert reciprocity(lo) < 0.2
        assert reciprocity(hi) > reciprocity(lo) + 0.2

    def test_powerlaw_cluster_degree_independent_of_n(self):
        """The whole point of the family: mean degree must not grow with
        N (hub degree does — hubs are the power-law tail — but hubs are
        a vanishing fraction)."""
        small = powerlaw_cluster_digraph(range(300), random.Random(7))
        large = powerlaw_cluster_digraph(range(1200), random.Random(7))
        mean_small = small.edge_count / small.node_count
        mean_large = large.edge_count / large.node_count
        assert mean_large < mean_small * 1.5
        # ...unlike hub_and_cluster, whose density is fixed per pair.
        dense = hub_and_cluster_digraph(range(300), random.Random(7))
        assert small.edge_count < dense.edge_count / 5

    @given(st.integers(8, 80), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_powerlaw_cluster_weakly_connected(self, n, seed):
        g = powerlaw_cluster_digraph(range(n), random.Random(seed))
        assert g.node_count == n
        assert g.is_weakly_connected()

    def test_powerlaw_cluster_reciprocity_in_field_study_band(self):
        g = powerlaw_cluster_digraph(range(500), random.Random(3))
        # Fig. 4a's reciprocity is 0.90; the generated family should sit
        # in the strongly-but-not-fully-reciprocal band.
        assert 0.6 < reciprocity(g) < 1.0

    def test_powerlaw_cluster_hubs_are_the_tail(self):
        g = powerlaw_cluster_digraph(range(1000), random.Random(13))
        in_degrees = sorted((g.in_degree(n) for n in g.nodes), reverse=True)
        # The top node dwarfs the median: a power-law popularity tail.
        median = in_degrees[len(in_degrees) // 2]
        assert in_degrees[0] > 10 * max(1, median)

    def test_powerlaw_cluster_deterministic_under_fixed_rng(self):
        a = powerlaw_cluster_digraph(range(100), random.Random(21))
        b = powerlaw_cluster_digraph(range(100), random.Random(21))
        assert sorted(a.edges()) == sorted(b.edges())


class TestSocialGraphFactory:
    def test_auto_resolves_to_figure4a_at_ten_users(self):
        assert resolve_social_graph_kind("auto", 10) == "figure4a"
        assert resolve_social_graph_kind("auto", 11) == "hub_and_cluster"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            resolve_social_graph_kind("smallworld", 10)

    def test_figure4a_requires_ten_users(self):
        with pytest.raises(ValueError):
            make_social_graph("figure4a", 12, random.Random(1))

    def test_factory_builds_each_family(self):
        rng = random.Random(2)
        assert make_social_graph("auto", 10, rng).edge_count == 58
        for kind in ("hub_and_cluster", "degree_bounded", "powerlaw_cluster"):
            g = make_social_graph(kind, 24, random.Random(2))
            assert g.node_count == 24
            assert g.is_weakly_connected()

    def test_degree_histogram_sums_to_population(self):
        g = make_social_graph("degree_bounded", 50, random.Random(4))
        for direction in ("out", "in", "total"):
            histogram = degree_histogram(g, direction=direction)
            assert sum(histogram.values()) == 50
        assert g.edge_count == sum(
            degree * count for degree, count in degree_histogram(g, "out").items()
        )
        with pytest.raises(ValueError):
            degree_histogram(g, direction="sideways")
