"""Tests for the social digraph, metrics and the Fig. 4a reconstruction.

Every §VI-A statistic the paper publishes is asserted here, and our
from-scratch metric implementations are cross-validated against networkx.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.social import (
    FIGURE_4A_EDGES,
    INITIAL_SUBSCRIPTIONS,
    LATE_FOLLOWS,
    SocialDigraph,
    average_shortest_path_length,
    center,
    density_directed,
    density_undirected,
    diameter,
    eccentricities,
    figure_4a_graph,
    hub_and_cluster_digraph,
    radius,
    random_digraph,
    reciprocity,
    transitivity_undirected,
)
from repro.social.metrics import degree_summary


class TestDigraphBasics:
    def test_add_edge_and_queries(self):
        g = SocialDigraph()
        g.add_edge("a", "b")
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")
        assert g.following("a") == {"b"}
        assert g.followers("b") == {"a"}
        assert g.out_degree("a") == 1 and g.in_degree("b") == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            SocialDigraph().add_edge("a", "a")

    def test_remove_edge(self):
        g = SocialDigraph.from_edges([("a", "b")])
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.edge_count == 0

    def test_undirected_projection(self):
        g = SocialDigraph.from_edges([("a", "b"), ("b", "a"), ("b", "c")])
        adj = g.undirected_adjacency()
        assert adj["a"] == {"b"}
        assert adj["c"] == {"b"}
        assert g.undirected_edge_count() == 2

    def test_copy_is_independent(self):
        g = SocialDigraph.from_edges([("a", "b")])
        clone = g.copy()
        clone.add_edge("b", "a")
        assert not g.has_edge("b", "a")

    def test_weak_connectivity(self):
        connected = SocialDigraph.from_edges([("a", "b"), ("c", "b")])
        assert connected.is_weakly_connected()
        disconnected = SocialDigraph.from_edges([("a", "b")], nodes=["z"])
        assert not disconnected.is_weakly_connected()


class TestFigure4aReconstruction:
    """Every number §VI-A publishes, asserted against our reconstruction."""

    @pytest.fixture(scope="class")
    def graph(self):
        return figure_4a_graph()

    def test_ten_nodes(self, graph):
        assert graph.node_count == 10

    def test_density_is_0_64(self, graph):
        assert round(density_directed(graph), 2) == 0.64

    def test_average_shortest_path_is_1_3(self, graph):
        assert round(average_shortest_path_length(graph), 1) == 1.3

    def test_diameter_is_2(self, graph):
        assert diameter(graph) == 2

    def test_radius_is_1_with_centers_6_and_7(self, graph):
        assert radius(graph) == 1
        assert center(graph) == [6, 7]

    def test_transitivity_is_0_80(self, graph):
        assert round(transitivity_undirected(graph), 2) == 0.80

    def test_node1_follows_node3_unreciprocated(self, graph):
        """The one adjacency fact the paper states explicitly."""
        assert graph.has_edge(1, 3)
        assert not graph.has_edge(3, 1)

    def test_46_initial_subscriptions(self):
        assert len(INITIAL_SUBSCRIPTIONS) == 46

    def test_late_follows_complete_the_graph(self):
        assert len(LATE_FOLLOWS) == 12
        assert set(INITIAL_SUBSCRIPTIONS) | set(LATE_FOLLOWS) == set(FIGURE_4A_EDGES)
        assert not set(INITIAL_SUBSCRIPTIONS) & set(LATE_FOLLOWS)

    def test_day0_graph_has_46_edges(self):
        assert figure_4a_graph(include_late_follows=False).edge_count == 46

    def test_weakly_connected(self, graph):
        assert graph.is_weakly_connected()


class TestCrossValidationWithNetworkx:
    """Our from-scratch metrics must agree with networkx exactly."""

    def _nx_pair(self, graph):
        nx_graph = nx.DiGraph(list(graph.edges()))
        nx_graph.add_nodes_from(graph.nodes)
        return nx_graph, nx.Graph(nx_graph)

    @pytest.fixture(scope="class")
    def graphs(self):
        rng = random.Random(31)
        out = [figure_4a_graph()]
        for i in range(5):
            out.append(random_digraph(range(8 + i), density=0.4, rng=rng))
        return out

    def test_density(self, graphs):
        for g in graphs:
            nx_dir, _ = self._nx_pair(g)
            assert density_directed(g) == pytest.approx(nx.density(nx_dir))

    def test_transitivity(self, graphs):
        for g in graphs:
            _, nx_und = self._nx_pair(g)
            assert transitivity_undirected(g) == pytest.approx(nx.transitivity(nx_und))

    def test_average_shortest_path(self, graphs):
        for g in graphs:
            _, nx_und = self._nx_pair(g)
            if not nx.is_connected(nx_und):
                continue
            assert average_shortest_path_length(g) == pytest.approx(
                nx.average_shortest_path_length(nx_und)
            )

    def test_eccentricity_diameter_radius_center(self, graphs):
        for g in graphs:
            _, nx_und = self._nx_pair(g)
            if not nx.is_connected(nx_und):
                continue
            assert eccentricities(g) == nx.eccentricity(nx_und)
            assert diameter(g) == nx.diameter(nx_und)
            assert radius(g) == nx.radius(nx_und)
            assert center(g) == sorted(nx.center(nx_und), key=repr)

    def test_reciprocity(self, graphs):
        for g in graphs:
            nx_dir, _ = self._nx_pair(g)
            if g.edge_count == 0:
                continue
            assert reciprocity(g) == pytest.approx(nx.reciprocity(nx_dir))


class TestMetricsEdgeCases:
    def test_empty_graph(self):
        g = SocialDigraph()
        assert density_directed(g) == 0.0
        assert transitivity_undirected(g) == 0.0
        assert reciprocity(g) == 0.0

    def test_single_node(self):
        g = SocialDigraph()
        g.add_node("only")
        assert average_shortest_path_length(g) == 0.0
        assert degree_summary(g)["in_max"] == 0

    def test_disconnected_raises_for_path_metrics(self):
        g = SocialDigraph.from_edges([("a", "b")], nodes=["z"])
        with pytest.raises(ValueError):
            average_shortest_path_length(g)
        with pytest.raises(ValueError):
            diameter(g)

    def test_density_undirected(self):
        g = SocialDigraph.from_edges([("a", "b"), ("b", "a"), ("b", "c")])
        # 2 undirected pairs of 3 possible
        assert density_undirected(g) == pytest.approx(2 / 3)


class TestGenerators:
    def test_random_digraph_hits_target_density(self):
        rng = random.Random(11)
        g = random_digraph(range(20), density=0.3, rng=rng)
        assert density_directed(g) == pytest.approx(0.3, abs=0.05)

    def test_random_digraph_invalid_density(self):
        with pytest.raises(ValueError):
            random_digraph(range(5), density=1.5, rng=random.Random(1))

    def test_hub_and_cluster_centers(self):
        rng = random.Random(12)
        g = hub_and_cluster_digraph(range(1, 13), rng, hub_count=2)
        assert radius(g) == 1
        assert set(center(g)) >= {1, 2}

    def test_hub_count_bound(self):
        with pytest.raises(ValueError):
            hub_and_cluster_digraph(range(3), random.Random(1), hub_count=3)

    @given(st.integers(6, 16), st.floats(0.2, 0.8))
    @settings(max_examples=25, deadline=None)
    def test_random_digraph_properties(self, n, density):
        g = random_digraph(range(n), density=density, rng=random.Random(n))
        assert g.node_count == n
        assert g.edge_count <= n * (n - 1)
        for a, b in g.edges():
            assert a != b
