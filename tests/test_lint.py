"""Fixture tests for the determinism / simulation-hygiene linter.

One bad snippet that must flag and one good (or justified-suppressed)
snippet that must pass, per rule family, plus the framework mechanics
(suppressions, strict hygiene, domains) and the tree-level contract:
``repro lint --strict`` over ``src/`` returns zero findings.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.analysis import default_rules, lint_source
from repro.analysis.core import LintConfig, lint_paths
from repro.analysis.runner import run_lint
from repro.analysis.trace_registry import TRACE_EVENTS, render_markdown

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(findings):
    return [finding.rule for finding in findings]


# -- family 1: nondeterminism hazards ------------------------------------------


class TestNondetEntropy:
    def test_module_level_random_flags(self):
        bad = "import random\ndef jitter():\n    return random.random()\n"
        assert rules_of(lint_source(bad)) == ["nondet-entropy"]

    def test_from_import_draw_flags(self):
        bad = "from random import choice\ndef pick(xs):\n    return choice(xs)\n"
        assert rules_of(lint_source(bad)) == ["nondet-entropy"]

    def test_urandom_and_uuid_flag(self):
        bad = (
            "import os, uuid\n"
            "def ids():\n"
            "    return os.urandom(8), uuid.uuid4()\n"
        )
        assert rules_of(lint_source(bad)) == ["nondet-entropy", "nondet-entropy"]

    def test_seeded_stream_passes(self):
        good = (
            "import random\n"
            "def jitter(rng: random.Random):\n"
            "    return rng.random()\n"
        )
        assert lint_source(good) == []

    def test_drbg_module_is_exempt(self):
        bad = "import os\ndef read(n):\n    return os.urandom(n)\n"
        assert lint_source(bad, rel_path="src/repro/crypto/drbg.py") == []

    def test_tooling_domain_is_exempt(self):
        bad = "import random\ndef jitter():\n    return random.random()\n"
        assert lint_source(bad, rel_path="benchmarks/bench_thing.py") == []


class TestNondetWallclock:
    def test_time_time_flags(self):
        bad = "import time\ndef stamp():\n    return time.time()\n"
        assert rules_of(lint_source(bad)) == ["nondet-wallclock"]

    def test_perf_counter_from_import_flags(self):
        bad = (
            "from time import perf_counter\n"
            "def stamp():\n"
            "    return perf_counter()\n"
        )
        assert rules_of(lint_source(bad)) == ["nondet-wallclock"]

    def test_datetime_now_flags(self):
        bad = (
            "from datetime import datetime\n"
            "def stamp():\n"
            "    return datetime.now()\n"
        )
        assert rules_of(lint_source(bad)) == ["nondet-wallclock"]

    def test_sim_now_passes(self):
        good = "def stamp(sim):\n    return sim.now\n"
        assert lint_source(good) == []


class TestNondetIter:
    BAD = (
        "class Medium:\n"
        "    def tick(self):\n"
        "        for key in self.links.keys():\n"
        '            self.sim.trace.emit(0.0, "contact", "up", a=key, b=key)\n'
    )

    def test_unsorted_dict_view_on_emit_path_flags(self):
        assert "nondet-iter" in rules_of(lint_source(self.BAD))

    def test_sorted_wrapper_passes(self):
        good = self.BAD.replace("self.links.keys()", "sorted(self.links.keys())")
        assert "nondet-iter" not in rules_of(lint_source(good))

    def test_set_iteration_into_schedule_flags(self):
        bad = (
            "def arm(sim, ids):\n"
            "    for device in set(ids):\n"
            "        sim.schedule_in(5.0, print, device)\n"
        )
        assert "nondet-iter" in rules_of(lint_source(bad))

    def test_set_iteration_into_rng_draw_flags(self):
        bad = (
            "def sample(rng, ids):\n"
            "    for device in set(ids):\n"
            "        rng.random()\n"
        )
        assert "nondet-iter" in rules_of(lint_source(bad))

    def test_iteration_off_the_trace_path_passes(self):
        good = (
            "def summarise(d):\n"
            "    total = 0\n"
            "    for v in d.values():\n"
            "        total += v\n"
            "    return total\n"
        )
        assert lint_source(good) == []

    def test_helper_called_by_emitting_tick_flags(self):
        # The Medium._mobility_groups shape: the helper never emits, but
        # the tick that calls it does.
        bad = (
            "class Medium:\n"
            "    def _groups(self):\n"
            "        out = []\n"
            "        for device in self.devices.values():\n"
            "            out.append(device)\n"
            "        return out\n"
            "    def tick(self):\n"
            "        for group in self._groups():\n"
            '            self.sim.trace.emit(0.0, "contact", "up", a=1, b=2)\n'
        )
        findings = [f for f in lint_source(bad) if f.rule == "nondet-iter"]
        assert any(f.line == 4 for f in findings)

    def test_order_insensitive_comprehension_passes(self):
        good = (
            "class A:\n"
            "    def tick(self):\n"
            "        n = sum(x for x in self.d.values())\n"
            '        self.sim.trace.emit(0.0, "contact", "up", a=n, b=n)\n'
        )
        assert "nondet-iter" not in rules_of(lint_source(good))


class TestHashSortKey:
    def test_hash_in_sort_key_flags(self):
        bad = "def order(xs):\n    return sorted(xs, key=lambda x: hash(x))\n"
        assert rules_of(lint_source(bad)) == ["nondet-hash-key"]

    def test_id_passed_as_key_flags(self):
        bad = "def order(xs):\n    xs.sort(key=id)\n"
        assert rules_of(lint_source(bad)) == ["nondet-hash-key"]

    def test_stable_key_passes(self):
        good = "def order(xs):\n    return sorted(xs, key=lambda x: x.device_id)\n"
        assert lint_source(good) == []


# -- family 2: trace-event registry --------------------------------------------


class TestTraceRegistry:
    def test_typoed_event_flags(self):
        bad = (
            "class A:\n"
            "    def f(self):\n"
            '        self.sim.trace.emit(self.sim.now, "contact", "upp", a=1, b=2)\n'
        )
        assert rules_of(lint_source(bad)) == ["trace-unknown-event"]

    def test_uncatalogued_category_flags(self):
        bad = (
            "class A:\n"
            "    def f(self):\n"
            '        self.sim.trace.emit(self.sim.now, "telemetry", "ping")\n'
        )
        assert rules_of(lint_source(bad)) == ["trace-unknown-event"]

    def test_dynamic_kind_flags(self):
        bad = (
            "class A:\n"
            "    def f(self, kind):\n"
            '        self.sim.trace.emit(self.sim.now, "contact", kind, a=1)\n'
        )
        assert rules_of(lint_source(bad)) == ["trace-dynamic-event"]

    def test_catalogued_event_passes(self):
        good = (
            "class A:\n"
            "    def f(self):\n"
            '        self.sim.trace.emit(self.sim.now, "contact", "up", '
            'a="a", b="b", radio="bt")\n'
        )
        assert lint_source(good) == []

    def test_every_catalogued_event_has_an_emitting_site(self):
        # The tree-level half of the registry contract: a full-src scan
        # reports no trace-unemitted-event (and no unknown emits).
        config = LintConfig(root=REPO_ROOT)
        report = lint_paths([REPO_ROOT / "src"], config, default_rules())
        assert not [
            f for f in report.findings if f.rule.startswith("trace-")
        ], [f.render() for f in report.findings]

    def test_registry_is_nonempty_and_covers_collector_counters(self):
        assert len(TRACE_EVENTS) >= 20
        categories = {category for category, _ in TRACE_EVENTS}
        # TraceCollector counts these categories wholesale; the registry
        # must describe them or the counters could never tick.
        assert {"fault", "cloud"} <= categories

    def test_rendered_docs_match_docs_file(self):
        target = REPO_ROOT / "docs" / "TRACE_EVENTS.md"
        assert target.is_file(), "run scripts/gen_trace_docs.py"
        assert target.read_text() == render_markdown() + "\n", (
            "docs/TRACE_EVENTS.md is stale — run scripts/gen_trace_docs.py"
        )


# -- family 3: fork safety ------------------------------------------------------


class TestForkSafety:
    def test_lambda_worker_flags(self):
        bad = (
            "from repro.sim.parallel import parallel_map\n"
            "def run(items):\n"
            "    return parallel_map(lambda x: x + 1, items, 4)\n"
        )
        assert rules_of(lint_source(bad)) == ["fork-unsafe"]

    def test_nested_worker_flags(self):
        bad = (
            "from repro.sim.parallel import parallel_map\n"
            "def run(items, scale):\n"
            "    def worker(x):\n"
            "        return x * scale\n"
            "    return parallel_map(worker, items, 4)\n"
        )
        assert rules_of(lint_source(bad)) == ["fork-unsafe"]

    def test_bound_method_worker_flags(self):
        bad = (
            "from repro.sim.parallel import parallel_map\n"
            "class Runner:\n"
            "    def run(self, items):\n"
            "        return parallel_map(self.step, items, 4)\n"
        )
        assert rules_of(lint_source(bad)) == ["fork-unsafe"]

    def test_worker_mutating_module_global_flags(self):
        bad = (
            "from repro.sim.parallel import parallel_map\n"
            "COUNTER = 0\n"
            "def worker(x):\n"
            "    global COUNTER\n"
            "    COUNTER += 1\n"
            "    return x\n"
            "def run(items):\n"
            "    return parallel_map(worker, items, 4)\n"
        )
        assert rules_of(lint_source(bad)) == ["fork-unsafe"]

    def test_worker_closing_over_lock_flags(self):
        bad = (
            "import threading\n"
            "from repro.sim.parallel import parallel_map\n"
            "LOCK = threading.Lock()\n"
            "def worker(x):\n"
            "    with LOCK:\n"
            "        return x\n"
            "def run(items):\n"
            "    return parallel_map(worker, items, 4)\n"
        )
        assert rules_of(lint_source(bad)) == ["fork-unsafe"]

    def test_module_level_pure_worker_passes(self):
        good = (
            "from repro.sim.parallel import parallel_map\n"
            "def worker(item):\n"
            "    bits, seed = item\n"
            "    return bits * seed\n"
            "def run(items):\n"
            "    return parallel_map(worker, items, 4)\n"
        )
        assert lint_source(good) == []

    # -- shard-pool task patterns (WorkerPool / dispatch) ------------------------

    def test_worker_pool_lambda_init_flags(self):
        bad = (
            "from repro.sim.parallel import WorkerPool\n"
            "def build(models):\n"
            "    return WorkerPool(lambda payload: dict(payload), models)\n"
        )
        assert rules_of(lint_source(bad)) == ["fork-unsafe"]

    def test_dispatch_nested_worker_flags(self):
        bad = (
            "from repro.sim.parallel import WorkerPool\n"
            "def tick(pool, sim):\n"
            "    def advance(state, task):\n"
            "        return state, sim.now\n"
            "    return pool.dispatch(advance, [1, 2])\n"
        )
        assert rules_of(lint_source(bad)) == ["fork-unsafe"]

    def test_dispatch_bound_method_worker_flags(self):
        # The canonical shard-task hazard: dispatching a Medium/Simulator
        # bound method drags the whole live object through the fork.
        bad = (
            "from repro.sim.parallel import WorkerPool\n"
            "class Engine:\n"
            "    def tick(self, pool, tasks):\n"
            "        return pool.dispatch(self.medium.sweep, tasks)\n"
        )
        assert rules_of(lint_source(bad)) == ["fork-unsafe"]

    def test_dispatch_worker_touching_module_medium_flags(self):
        bad = (
            "from repro.net.medium import Medium\n"
            "from repro.sim.parallel import WorkerPool\n"
            "MEDIUM = Medium(object())\n"
            "def sweep(state, task):\n"
            "    return MEDIUM.active_links\n"
            "def tick(pool, tasks):\n"
            "    return pool.dispatch(sweep, tasks)\n"
        )
        assert rules_of(lint_source(bad)) == ["fork-unsafe"]

    def test_imported_shard_workers_pass(self):
        # The sharded engine's own shape: workers imported by name are
        # vouched for where they are defined.
        good = (
            "from repro.net.medium_engines.shard_worker import advance_shard, build_state\n"
            "from repro.sim.parallel import WorkerPool\n"
            "def tick(payloads, tasks):\n"
            "    pool = WorkerPool(build_state, payloads)\n"
            "    return pool.dispatch(advance_shard, tasks)\n"
        )
        assert lint_source(good) == []

    def test_unrelated_dispatch_method_not_policed(self):
        # dispatch() is a generic name; without the parallel API imported
        # it belongs to someone else's protocol.
        good = (
            "def route(bus, handler, message):\n"
            "    return bus.dispatch(handler, message)\n"
        )
        assert lint_source(good) == []


# -- family 4: exception hygiene ------------------------------------------------


class TestExceptSwallow:
    def test_bare_except_pass_flags(self):
        bad = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        pass\n"
        )
        assert rules_of(lint_source(bad)) == ["except-swallow"]

    def test_broad_except_swallow_flags(self):
        bad = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert rules_of(lint_source(bad)) == ["except-swallow"]

    def test_broad_except_reraise_passes(self):
        good = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except BaseException:\n"
            "        rollback()\n"
            "        raise\n"
        )
        assert lint_source(good) == []

    def test_broad_except_with_trace_diagnostic_passes(self):
        good = (
            "class A:\n"
            "    def f(self):\n"
            "        try:\n"
            "            self.g()\n"
            "        except Exception as exc:\n"
            "            self.sim.trace.emit(\n"
            '                self.sim.now, "app", "malformed_payload", error=str(exc)\n'
            "            )\n"
        )
        assert lint_source(good) == []

    def test_narrow_except_passes(self):
        good = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        return None\n"
        )
        assert lint_source(good) == []


# -- family 5: seeded-stream discipline ----------------------------------------


class TestRngDiscipline:
    def test_unseeded_random_flags(self):
        bad = "import random\ndef f():\n    return random.Random()\n"
        assert rules_of(lint_source(bad)) == ["rng-unseeded"]

    def test_system_random_flags(self):
        bad = "import random\ndef f():\n    return random.SystemRandom()\n"
        assert rules_of(lint_source(bad)) == ["rng-unseeded"]

    def test_wallclock_seed_flags(self):
        bad = (
            "import random, time\n"
            "def f():\n"
            "    return random.Random(time.time())\n"
        )
        findings = rules_of(lint_source(bad))
        assert "rng-unseeded" in findings and "nondet-wallclock" in findings

    def test_seeded_random_passes(self):
        good = "import random\ndef f(seed):\n    return random.Random(seed)\n"
        assert lint_source(good) == []

    def test_unseeded_numpy_default_rng_flags(self):
        bad = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng()\n"
        )
        assert rules_of(lint_source(bad)) == ["rng-unseeded"]

    def test_seeded_numpy_default_rng_passes(self):
        good = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert lint_source(good) == []


# -- framework mechanics ---------------------------------------------------------


class TestSuppressions:
    BAD = "import random\ndef f():\n    return random.random()\n"

    def test_inline_suppression_silences(self):
        src = self.BAD.replace(
            "return random.random()",
            "return random.random()  "
            "# repro: ignore[nondet-entropy] -- fixture: justified",
        )
        assert lint_source(src) == []

    def test_comment_line_above_silences(self):
        src = (
            "import random\n"
            "def f():\n"
            "    # repro: ignore[nondet-entropy] -- fixture: justified\n"
            "    return random.random()\n"
        )
        assert lint_source(src) == []

    def test_wrong_rule_name_does_not_silence(self):
        src = self.BAD.replace(
            "return random.random()",
            "return random.random()  "
            "# repro: ignore[nondet-wallclock] -- fixture: wrong rule",
        )
        assert "nondet-entropy" in rules_of(lint_source(src))

    def test_docstring_example_is_not_a_suppression(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        target = tmp_path / "src" / "repro" / "mod.py"
        target.write_text(
            '"""Docs showing # repro: ignore[nondet-entropy] -- example."""\n'
            "X = 1\n"
        )
        config = LintConfig(root=tmp_path)
        report = lint_paths([target], config, default_rules())
        assert report.suppressions == []

    def test_strict_flags_suppression_without_reason(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        target = tmp_path / "src" / "repro" / "mod.py"
        target.write_text(
            "import random\n"
            "def f():\n"
            "    return random.random()  # repro: ignore[nondet-entropy]\n"
        )
        config = LintConfig(root=tmp_path)
        report = lint_paths([target], config, default_rules())
        assert report.findings == []  # suppression works...
        strict = rules_of(report.all_findings(strict=True))
        assert "suppression-no-reason" in strict  # ...but strict wants a why

    def test_strict_flags_stale_suppression(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        target = tmp_path / "src" / "repro" / "mod.py"
        target.write_text(
            "X = 1  # repro: ignore[nondet-entropy] -- nothing here to silence\n"
        )
        config = LintConfig(root=tmp_path)
        report = lint_paths([target], config, default_rules())
        assert "suppression-unused" in rules_of(report.all_findings(strict=True))


class TestTreeContract:
    """The acceptance gate: the shipped tree lints clean, strictly."""

    def test_full_src_tree_is_clean_in_strict_mode(self):
        stream = io.StringIO()
        exit_code = run_lint(
            ["src"], strict=True, root=REPO_ROOT, stream=stream
        )
        assert exit_code == 0, stream.getvalue()

    def test_every_tree_suppression_is_justified(self):
        config = LintConfig(root=REPO_ROOT)
        report = lint_paths([REPO_ROOT / "src"], config, default_rules())
        assert report.suppressions, "expected justified suppressions in tree"
        for suppression in report.suppressions:
            assert suppression.reason, (
                f"{suppression.path}:{suppression.line} suppression has no "
                "justification"
            )

    def test_cli_reports_findings_with_nonzero_exit(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        bad = tmp_path / "src" / "repro" / "mod.py"
        bad.write_text("import random\ndef f():\n    return random.random()\n")
        stream = io.StringIO()
        exit_code = run_lint(["src"], strict=True, root=tmp_path, stream=stream)
        assert exit_code == 1
        assert "nondet-entropy" in stream.getvalue()

    def test_cli_json_format(self, tmp_path):
        import json

        (tmp_path / "src" / "repro").mkdir(parents=True)
        bad = tmp_path / "src" / "repro" / "mod.py"
        bad.write_text("import time\ndef f():\n    return time.time()\n")
        stream = io.StringIO()
        run_lint(["src"], output_format="json", root=tmp_path, stream=stream)
        payload = json.loads(stream.getvalue())
        # A full src/ scan of this toy tree also reports the registry's
        # events as unemitted; the wallclock finding must be among them.
        assert "nondet-wallclock" in {f["rule"] for f in payload["findings"]}

    def test_cli_missing_path_is_usage_error(self, tmp_path):
        assert run_lint(["no/such/dir"], root=tmp_path) == 2
