"""Focused tests of ad hoc manager and message manager internals."""

import pytest

from repro.core.config import SosConfig
from repro.core.errors import SecurityError
from repro.core.wire import SosPacket
from repro.geo.point import Point
from repro.mobility.base import MobilityModel
from tests.worldutil import World


@pytest.fixture()
def world(ca, keypair_pool):
    return World(ca, keypair_pool)


def secured_pair(world, **config_kwargs):
    config = SosConfig(relay_request_grace=0.0, **config_kwargs)
    alice = world.add_user("alice", config=config)
    bob = world.add_user("bob", config=config)
    bob.follow(alice.user_id)
    world.start()
    alice.post("seed")
    world.run(60.0)
    assert bob.sos.adhoc.is_secured(alice.user_id)
    return alice, bob


class TestAdhocState:
    def test_secured_users_listed(self, world):
        alice, bob = secured_pair(world)
        assert bob.sos.adhoc.secured_users() == [alice.user_id]
        assert alice.sos.adhoc.is_secured(bob.user_id)

    def test_advert_of_unknown_peer_empty(self, world):
        alice = world.add_user("alice")
        assert alice.sos.adhoc.advert_of("u999999999") == {}

    def test_connect_unknown_peer_false(self, world):
        alice = world.add_user("alice")
        assert alice.sos.adhoc.connect("u999999999") is False

    def test_connect_already_connected_false(self, world):
        alice, bob = secured_pair(world)
        assert bob.sos.adhoc.connect(alice.user_id) is False

    def test_send_to_unsecured_raises(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        world.start()
        packet = SosPacket.request(alice.user_id, bob.user_id, [1])
        with pytest.raises(SecurityError):
            alice.sos.adhoc.send_packet(bob.user_id, packet)

    def test_blacklist_blocks_connect(self, world):
        alice, bob = secured_pair(world)
        bob.sos.adhoc._security_failure(alice.user_id, "test-injected")
        assert bob.sos.adhoc.connect(alice.user_id) is False
        # After the backoff expires the peer is reachable again.
        world.run(world.sim.now + bob.sos.config.reconnect_backoff + 60.0)
        # peer must be rediscovered by then (link is still up; state kept)
        assert bob.sos.adhoc._blacklist_until[alice.user_id] <= world.sim.now

    def test_stats_track_traffic(self, world):
        alice, bob = secured_pair(world)
        stats = alice.sos.adhoc.stats
        assert stats["packets_sent"] > 0
        assert stats["bytes_sent"] > 0
        assert stats["connections_secured"] == 1


class TestPeerLossAndReconnect:
    class Wanderer(MobilityModel):
        """Near alice, away, then back."""

        def position_at(self, now):
            if now < 200 or now >= 600:
                return Point(130, 100)
            return Point(5000, 5000)

    def test_reconnect_after_separation(self, world):
        config = SosConfig(relay_request_grace=0.0)
        alice = world.add_user("alice", position=Point(100, 100), config=config)
        bob = world.add_user("bob", mobility=self.Wanderer(), config=config)
        bob.follow(alice.user_id)
        world.start()
        alice.post("first")
        world.run(150.0)
        assert len(bob.timeline()) == 1
        world.run(400.0)  # bob away
        assert not bob.sos.adhoc.is_secured(alice.user_id)
        alice.post("second")
        world.run(900.0)  # bob back: re-handshake + catch-up
        assert sorted(e.post.text for e in bob.timeline()) == ["first", "second"]
        # Two distinct secured connections happened on bob's side.
        assert bob.sos.adhoc.stats["connections_secured"] == 2


class TestMessageManagerDetails:
    def test_request_dedup_suppresses_repeats(self, world):
        alice, bob = secured_pair(world)
        manager = bob.sos.messages
        sent_before = alice.sos.messages.stats["requests_served"]
        manager.request_messages(alice.user_id, alice.user_id, [99])
        manager.request_messages(alice.user_id, alice.user_id, [99])  # deduped
        world.run(world.sim.now + 30.0)
        served_after = alice.sos.messages.stats["requests_served"]
        assert served_after - sent_before == 1

    def test_request_dedup_expires(self, world):
        alice, bob = secured_pair(world)
        manager = bob.sos.messages
        manager.request_messages(alice.user_id, alice.user_id, [99])
        world.run(world.sim.now + manager.request_timeout + 1.0)
        before = alice.sos.messages.stats["requests_served"]
        manager.request_messages(alice.user_id, alice.user_id, [99])
        world.run(world.sim.now + 30.0)
        assert alice.sos.messages.stats["requests_served"] == before + 1

    def test_already_stored_numbers_not_rerequested(self, world):
        alice, bob = secured_pair(world)
        before = alice.sos.messages.stats["requests_served"]
        bob.sos.messages.request_messages(alice.user_id, alice.user_id, [1])  # already has
        world.run(world.sim.now + 30.0)
        assert alice.sos.messages.stats["requests_served"] == before

    def test_duplicate_data_dropped(self, world):
        alice, bob = secured_pair(world)
        copy = alice.sos.store.get(alice.user_id, 1)
        packet = SosPacket.data(alice.user_id, copy)
        before = bob.sos.messages.stats["duplicates_dropped"]
        bob.sos.messages._packet_received(packet, alice.user_id)
        assert bob.sos.messages.stats["duplicates_dropped"] == before + 1

    def test_control_for_other_protocol_ignored(self, world):
        alice, bob = secured_pair(world)
        packet = SosPacket.control(alice.user_id, "some-other-protocol", b"x")
        bob.sos.messages._packet_received(packet, alice.user_id)  # no crash

    def test_set_protocol_replays_secured_peers(self, world):
        alice, bob = secured_pair(world)
        alice.post("while-connected")
        # Toggle while connected: new protocol must learn about alice and
        # fetch the post it missed during the swap.
        bob.select_routing("epidemic")
        world.run(world.sim.now + 60.0)
        texts = sorted(e.post.text for e in bob.timeline())
        assert "while-connected" in texts


class TestAdvertisementBudget:
    def test_advertisement_respects_limit(self, world):
        config = SosConfig(advertisement_limit=2, relay_request_grace=0.0,
                           routing_protocol="epidemic")
        alice = world.add_user("alice", config=config)
        world.start()
        # Three authors in the store; only 2 may be advertised.
        from repro.storage.messagestore import StoredMessage

        for i, author in enumerate(["u111111111", "u222222222"]):
            alice.sos.store.add(StoredMessage(
                author_id=author, number=5 + i, created_at=0.0, body=b"x",
                signature=b"s", author_cert=b"c", hops=1, received_at=0.0,
            ))
        alice.post("own")
        advert = alice.sos.adhoc.advertiser.discovery_info
        assert len(advert) <= 2
