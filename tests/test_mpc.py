"""Tests for the simulated Multipeer Connectivity framework."""

import pytest

from repro.geo.point import Point
from repro.mobility.base import MobilityModel, StationaryModel
from repro.mpc import (
    Invitation,
    MpcFramework,
    NotConnectedError,
    PeerID,
    ServiceAdvertiser,
    ServiceBrowser,
    Session,
    SessionState,
)
from repro.mpc.advertiser import AdvertiserDelegate
from repro.mpc.browser import BrowserDelegate
from repro.mpc.session import SessionDelegate
from repro.net import Device, Medium
from repro.sim import Simulator


class _Script(MobilityModel):
    def __init__(self, waypoints):
        self._waypoints = sorted(waypoints)

    def position_at(self, now):
        position = self._waypoints[0][1]
        for t, p in self._waypoints:
            if t <= now:
                position = p
        return position


class _RecordingBrowserDelegate(BrowserDelegate):
    def __init__(self):
        self.found = []
        self.lost = []

    def browser_found_peer(self, browser, peer, info):
        self.found.append((peer, dict(info)))

    def browser_lost_peer(self, browser, peer):
        self.lost.append(peer)


class _AcceptingAdvertiserDelegate(AdvertiserDelegate):
    def __init__(self, session):
        self.session = session
        self.invitations = []

    def advertiser_received_invitation(self, advertiser, invitation):
        self.invitations.append(invitation)
        invitation.accept(self.session)


class _DecliningAdvertiserDelegate(AdvertiserDelegate):
    def advertiser_received_invitation(self, advertiser, invitation):
        invitation.decline()


class _RecordingSessionDelegate(SessionDelegate):
    def __init__(self):
        self.connected = []
        self.disconnected = []
        self.received = []

    def session_peer_connected(self, session, peer):
        self.connected.append(peer)

    def session_peer_disconnected(self, session, peer):
        self.disconnected.append(peer)

    def session_received_data(self, session, data, from_peer):
        self.received.append((data, from_peer))


def two_device_world(distance=30.0, tick=10.0):
    sim = Simulator(seed=9)
    medium = Medium(sim, tick_interval=tick)
    framework = MpcFramework(sim, medium)
    dev_a = Device("dev-a", StationaryModel(Point(0, 0)))
    dev_b = Device("dev-b", StationaryModel(Point(distance, 0)))
    medium.add_device(dev_a)
    medium.add_device(dev_b)
    return sim, medium, framework, dev_a, dev_b


class TestDiscovery:
    def test_browser_finds_matching_advertiser(self):
        sim, medium, fw, dev_a, dev_b = two_device_world()
        peer_a = PeerID("alice", "dev-a")
        peer_b = PeerID("bob", "dev-b")
        delegate = _RecordingBrowserDelegate()
        browser = ServiceBrowser(fw, peer_a, "svc", delegate)
        advertiser = ServiceAdvertiser(fw, peer_b, "svc", {"k": "1"})
        browser.start()
        advertiser.start()
        medium.start()
        sim.run(until=20.0)
        assert delegate.found and delegate.found[0][0] == peer_b
        assert delegate.found[0][1] == {"k": "1"}

    def test_service_type_isolation(self):
        sim, medium, fw, dev_a, dev_b = two_device_world()
        delegate = _RecordingBrowserDelegate()
        ServiceBrowser(fw, PeerID("a", "dev-a"), "svc-one", delegate).start()
        ServiceAdvertiser(fw, PeerID("b", "dev-b"), "svc-two", {"k": "1"}).start()
        medium.start()
        sim.run(until=20.0)
        assert delegate.found == []

    def test_lost_peer_on_range_exit(self):
        sim = Simulator(seed=9)
        medium = Medium(sim, tick_interval=10.0)
        fw = MpcFramework(sim, medium)
        medium.add_device(Device("dev-a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("dev-b", _Script([(0.0, Point(30, 0)), (50.0, Point(900, 0))])))
        delegate = _RecordingBrowserDelegate()
        ServiceBrowser(fw, PeerID("a", "dev-a"), "svc", delegate).start()
        ServiceAdvertiser(fw, PeerID("b", "dev-b"), "svc", {"k": "1"}).start()
        medium.start()
        sim.run(until=100.0)
        assert delegate.lost and delegate.lost[0].display_name == "b"

    def test_discovery_info_refresh_reannounces(self):
        sim, medium, fw, dev_a, dev_b = two_device_world()
        delegate = _RecordingBrowserDelegate()
        ServiceBrowser(fw, PeerID("a", "dev-a"), "svc", delegate).start()
        advertiser = ServiceAdvertiser(fw, PeerID("b", "dev-b"), "svc", {"n": "1"})
        advertiser.start()
        medium.start()
        sim.run(until=20.0)
        advertiser.set_discovery_info({"n": "2"})
        sim.run(until=40.0)
        assert delegate.found[-1][1] == {"n": "2"}

    def test_oversized_discovery_info_rejected(self):
        sim, medium, fw, dev_a, dev_b = two_device_world()
        advertiser = ServiceAdvertiser(fw, PeerID("b", "dev-b"), "svc")
        with pytest.raises(ValueError):
            advertiser.set_discovery_info({"k": "v" * 5000})

    def test_stopped_advertiser_not_found(self):
        sim, medium, fw, dev_a, dev_b = two_device_world()
        delegate = _RecordingBrowserDelegate()
        ServiceBrowser(fw, PeerID("a", "dev-a"), "svc", delegate).start()
        advertiser = ServiceAdvertiser(fw, PeerID("b", "dev-b"), "svc", {"k": "1"})
        # never started
        medium.start()
        sim.run(until=20.0)
        assert delegate.found == []


def connected_pair(distance=30.0):
    sim, medium, fw, dev_a, dev_b = two_device_world(distance)
    peer_a, peer_b = PeerID("alice", "dev-a"), PeerID("bob", "dev-b")
    del_a, del_b = _RecordingSessionDelegate(), _RecordingSessionDelegate()
    session_a = Session(fw, peer_a, del_a)
    session_b = Session(fw, peer_b, del_b)
    browser_delegate = _RecordingBrowserDelegate()
    browser = ServiceBrowser(fw, peer_a, "svc", browser_delegate)
    adv_delegate = _AcceptingAdvertiserDelegate(session_b)
    advertiser = ServiceAdvertiser(fw, peer_b, "svc", {"k": "1"}, adv_delegate)
    browser.start()
    advertiser.start()
    medium.start()
    sim.run(until=5.0)
    assert browser_delegate.found
    browser.invite_peer(peer_b, session_a, b"hello")
    sim.run(until=20.0)
    return sim, medium, fw, session_a, session_b, peer_a, peer_b, del_a, del_b


class TestInvitationAndSession:
    def test_invitation_accept_connects_both(self):
        sim, medium, fw, sa, sb, pa, pb, da, db = connected_pair()
        assert sa.state_of(pb) is SessionState.CONNECTED
        assert sb.state_of(pa) is SessionState.CONNECTED
        assert da.connected == [pb]
        assert db.connected == [pa]

    def test_invitation_decline_leaves_disconnected(self):
        sim, medium, fw, dev_a, dev_b = two_device_world()
        peer_a, peer_b = PeerID("a", "dev-a"), PeerID("b", "dev-b")
        session_a = Session(fw, peer_a)
        Session(fw, peer_b)
        browser = ServiceBrowser(fw, peer_a, "svc")
        ServiceAdvertiser(fw, peer_b, "svc", {"k": "1"}, _DecliningAdvertiserDelegate()).start()
        browser.start()
        medium.start()
        sim.run(until=5.0)
        browser.invite_peer(peer_b, session_a)
        sim.run(until=20.0)
        assert session_a.state_of(peer_b) is SessionState.NOT_CONNECTED

    def test_double_answer_rejected(self):
        sim, medium, fw, dev_a, dev_b = two_device_world()
        invitation = Invitation(fw, PeerID("a", "dev-a"), PeerID("b", "dev-b"), b"", Session(fw, PeerID("a", "dev-a")))
        invitation.decline()
        with pytest.raises(RuntimeError):
            invitation.decline()

    def test_data_transfer(self):
        sim, medium, fw, sa, sb, pa, pb, da, db = connected_pair()
        results = []
        sa.send(b"payload", pb, on_complete=results.append)
        sim.run(until=30.0)
        assert results == [True]
        assert db.received == [(b"payload", pa)]
        assert fw.stats["transfers_completed"] == 1

    def test_send_to_unconnected_raises(self):
        sim, medium, fw, dev_a, dev_b = two_device_world()
        session = Session(fw, PeerID("a", "dev-a"))
        with pytest.raises(NotConnectedError):
            session.send(b"x", PeerID("b", "dev-b"))

    def test_transfer_fails_when_link_drops_midflight(self):
        sim = Simulator(seed=9)
        medium = Medium(sim, tick_interval=5.0)
        fw = MpcFramework(sim, medium)
        medium.add_device(Device("dev-a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("dev-b", _Script([(0.0, Point(30, 0)), (40.0, Point(900, 0))])))
        peer_a, peer_b = PeerID("a", "dev-a"), PeerID("b", "dev-b")
        del_b = _RecordingSessionDelegate()
        session_a = Session(fw, peer_a)
        session_b = Session(fw, peer_b, del_b)
        browser = ServiceBrowser(fw, peer_a, "svc")
        ServiceAdvertiser(fw, peer_b, "svc", {"k": "1"}, _AcceptingAdvertiserDelegate(session_b)).start()
        browser.start()
        medium.start()
        sim.run(until=10.0)
        browser.invite_peer(peer_b, session_a)
        sim.run(until=35.0)
        assert session_a.state_of(peer_b) is SessionState.CONNECTED
        results = []
        # 50 MB over P2P WiFi takes ~16s; the link dies at t=40-45.
        session_a.send(b"\x00" * 50_000_000, peer_b, on_complete=results.append)
        sim.run(until=120.0)
        assert results == [False]
        assert del_b.received == []
        assert fw.stats["transfers_failed"] >= 1

    def test_sessions_disconnect_on_link_drop(self):
        sim = Simulator(seed=9)
        medium = Medium(sim, tick_interval=5.0)
        fw = MpcFramework(sim, medium)
        medium.add_device(Device("dev-a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("dev-b", _Script([(0.0, Point(30, 0)), (60.0, Point(900, 0))])))
        peer_a, peer_b = PeerID("a", "dev-a"), PeerID("b", "dev-b")
        del_a = _RecordingSessionDelegate()
        session_a = Session(fw, peer_a, del_a)
        session_b = Session(fw, peer_b)
        browser = ServiceBrowser(fw, peer_a, "svc")
        ServiceAdvertiser(fw, peer_b, "svc", {"k": "1"}, _AcceptingAdvertiserDelegate(session_b)).start()
        browser.start()
        medium.start()
        sim.run(until=10.0)
        browser.invite_peer(peer_b, session_a)
        sim.run(until=120.0)
        assert session_a.state_of(peer_b) is SessionState.NOT_CONNECTED
        assert del_a.disconnected == [peer_b]

    def test_explicit_disconnect(self):
        sim, medium, fw, sa, sb, pa, pb, da, db = connected_pair()
        sa.disconnect()
        assert sa.connected_peers == []
        assert sb.state_of(pa) is SessionState.NOT_CONNECTED
        assert db.disconnected == [pa]

    def test_transfers_serialised_per_pair(self):
        sim, medium, fw, sa, sb, pa, pb, da, db = connected_pair()
        order = []
        sa.send(b"\x00" * 1_000_000, pb, on_complete=lambda ok: order.append("first"))
        sa.send(b"\x01" * 10, pb, on_complete=lambda ok: order.append("second"))
        sim.run(until=60.0)
        assert order == ["first", "second"]
        assert [d for d, _ in db.received] == [b"\x00" * 1_000_000, b"\x01" * 10]


class TestPeerID:
    def test_validation(self):
        with pytest.raises(ValueError):
            PeerID("", "dev")
        with pytest.raises(ValueError):
            PeerID("name", "")

    def test_str(self):
        assert str(PeerID("alice", "dev-1")) == "alice@dev-1"
