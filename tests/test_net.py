"""Tests for radios, devices, the medium and contact tracking."""

import pytest

from repro.geo.point import Point
from repro.mobility.base import MobilityModel, StationaryModel
from repro.net import (
    BLUETOOTH,
    Contact,
    ContactTracker,
    Device,
    INFRA_WIFI,
    Medium,
    P2P_WIFI,
    transfer_duration,
)
from repro.net.bandwidth import transfers_possible
from repro.net.radio import best_common_radio
from repro.sim import Simulator


class _Script(MobilityModel):
    """Position follows a scripted piecewise table."""

    def __init__(self, waypoints):
        self._waypoints = sorted(waypoints)

    def position_at(self, now):
        position = self._waypoints[0][1]
        for t, p in self._waypoints:
            if t <= now:
                position = p
        return position


def make_world(tick=10.0):
    sim = Simulator(seed=1)
    medium = Medium(sim, tick_interval=tick)
    return sim, medium


class TestRadios:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            BLUETOOTH.__class__(
                technology=BLUETOOTH.technology, range_m=-1,
                throughput_bps=1, setup_latency_s=0,
            )

    def test_best_common_radio_prefers_throughput(self):
        assert best_common_radio([BLUETOOTH, P2P_WIFI], [P2P_WIFI, BLUETOOTH]) is P2P_WIFI

    def test_no_common_radio(self):
        assert best_common_radio([BLUETOOTH], [INFRA_WIFI]) is None

    def test_single_common(self):
        assert best_common_radio([BLUETOOTH, P2P_WIFI], [BLUETOOTH]) is BLUETOOTH


class TestBandwidth:
    def test_transfer_duration_scales_with_size(self):
        small = transfer_duration(1_000, BLUETOOTH)
        large = transfer_duration(1_000_000, BLUETOOTH)
        assert large > small > 0

    def test_faster_radio_is_faster(self):
        assert transfer_duration(10_000, P2P_WIFI) < transfer_duration(10_000, BLUETOOTH)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            transfer_duration(-1, BLUETOOTH)

    def test_transfers_possible(self):
        per = transfer_duration(10_000, BLUETOOTH)
        assert transfers_possible(per * 3.5, 10_000, BLUETOOTH) == 3
        assert transfers_possible(0.0, 10_000, BLUETOOTH) == 0


class TestDevice:
    def test_duplicate_id_rejected(self):
        sim, medium = make_world()
        medium.add_device(Device("d", StationaryModel(Point(0, 0))))
        with pytest.raises(ValueError):
            medium.add_device(Device("d", StationaryModel(Point(1, 1))))

    def test_requires_radio(self):
        with pytest.raises(ValueError):
            Device("d", StationaryModel(Point(0, 0)), radios=())

    def test_equality_by_id(self):
        a = Device("d", StationaryModel(Point(0, 0)))
        b = Device("d", StationaryModel(Point(9, 9)))
        assert a == b and hash(a) == hash(b)


class TestMediumLinks:
    def test_link_up_within_range(self):
        sim, medium = make_world()
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", StationaryModel(Point(30, 0))))
        ups = []
        medium.on_link_up(lambda a, b, r: ups.append((a.device_id, b.device_id, r.technology)))
        medium.start()
        sim.run(until=20.0)
        assert len(ups) == 1
        assert medium.link_between("a", "b") is P2P_WIFI

    def test_no_link_out_of_range(self):
        sim, medium = make_world()
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", StationaryModel(Point(100, 0))))
        medium.start()
        sim.run(until=20.0)
        assert medium.link_between("a", "b") is None

    def test_link_down_when_separating(self):
        sim, medium = make_world()
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(
            Device("b", _Script([(0.0, Point(30, 0)), (50.0, Point(500, 0))]))
        )
        downs = []
        medium.on_link_down(lambda a, b, r: downs.append((a.device_id, b.device_id)))
        medium.start()
        sim.run(until=100.0)
        assert downs
        assert medium.link_between("a", "b") is None

    def test_hysteresis_keeps_marginal_link(self):
        sim, medium = make_world()
        # b moves from 50m to 64m: beyond P2P range (60) but within the
        # 1.1 hysteresis margin (66) -> link must survive.
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", _Script([(0.0, Point(50, 0)), (30.0, Point(64, 0))])))
        medium.start()
        sim.run(until=100.0)
        assert medium.link_between("a", "b") is P2P_WIFI

    def test_powered_off_device_has_no_links(self):
        sim, medium = make_world()
        a = Device("a", StationaryModel(Point(0, 0)))
        b = Device("b", StationaryModel(Point(30, 0)))
        medium.add_device(a)
        medium.add_device(b)
        b.power_off()
        medium.start()
        sim.run(until=20.0)
        assert medium.link_between("a", "b") is None

    def test_power_off_drops_existing_link(self):
        sim, medium = make_world()
        a = Device("a", StationaryModel(Point(0, 0)))
        b = Device("b", StationaryModel(Point(30, 0)))
        medium.add_device(a)
        medium.add_device(b)
        medium.start()
        sim.schedule_at(30.0, b.power_off)
        sim.run(until=60.0)
        assert medium.link_between("a", "b") is None

    def test_bluetooth_only_pair_uses_bluetooth_range(self):
        sim, medium = make_world()
        medium.add_device(Device("a", StationaryModel(Point(0, 0)), radios=(BLUETOOTH,)))
        medium.add_device(Device("b", StationaryModel(Point(30, 0)), radios=(BLUETOOTH,)))
        medium.start()
        sim.run(until=20.0)
        assert medium.link_between("a", "b") is None  # 30m > 10m BT range

    def test_neighbours_of(self):
        sim, medium = make_world()
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", StationaryModel(Point(30, 0))))
        medium.add_device(Device("c", StationaryModel(Point(0, 30))))
        medium.start()
        sim.run(until=20.0)
        assert sorted(medium.neighbours_of("a")) == ["b", "c"]

    def test_remove_device_drops_links(self):
        sim, medium = make_world()
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", StationaryModel(Point(30, 0))))
        medium.start()
        sim.run(until=20.0)
        medium.remove_device("b")
        assert medium.link_between("a", "b") is None
        assert medium.active_links == 0

    def test_trace_records_contacts(self):
        sim, medium = make_world()
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", StationaryModel(Point(30, 0))))
        medium.start()
        sim.run(until=20.0)
        medium.stop()
        assert sim.trace.count("contact", "up") == 1
        assert sim.trace.count("contact", "down") == 1  # closed by stop()


class TestContactTracker:
    def test_contact_lifecycle(self):
        tracker = ContactTracker()
        tracker.contact_up("a", "b", P2P_WIFI, now=10.0)
        assert tracker.is_active("a", "b")
        contact = tracker.contact_down("b", "a", now=25.0)  # order-insensitive
        assert contact.duration == 15.0
        assert not tracker.is_active("a", "b")

    def test_idempotent_up(self):
        tracker = ContactTracker()
        first = tracker.contact_up("a", "b", P2P_WIFI, now=10.0)
        second = tracker.contact_up("a", "b", P2P_WIFI, now=12.0)
        assert first is second

    def test_down_without_up_is_none(self):
        assert ContactTracker().contact_down("a", "b", now=1.0) is None

    def test_statistics(self):
        tracker = ContactTracker()
        tracker.contact_up("a", "b", P2P_WIFI, 0.0)
        tracker.contact_down("a", "b", 10.0)
        tracker.contact_up("a", "b", P2P_WIFI, 30.0)
        tracker.contact_down("a", "b", 50.0)
        tracker.contact_up("a", "c", P2P_WIFI, 5.0)
        tracker.contact_down("a", "c", 6.0)
        assert tracker.total_contacts() == 3
        assert tracker.mean_contact_duration() == pytest.approx((10 + 20 + 1) / 3)
        assert tracker.contacts_per_pair()[("a", "b")] == 2
        assert tracker.inter_contact_times() == [20.0]

    def test_close_all(self):
        tracker = ContactTracker()
        tracker.contact_up("a", "b", P2P_WIFI, 0.0)
        tracker.contact_up("a", "c", P2P_WIFI, 0.0)
        tracker.close_all(now=9.0)
        assert tracker.active_count == 0
        assert all(c.duration == 9.0 for c in tracker.completed)


class TestInterContactTimes:
    """Edge cases the medium-scale bench reads rely on."""

    def test_empty_tracker(self):
        assert ContactTracker().inter_contact_times() == []

    def test_single_contact_has_no_gap(self):
        tracker = ContactTracker()
        tracker.contact_up("a", "b", P2P_WIFI, 0.0)
        tracker.contact_down("a", "b", 10.0)
        assert tracker.inter_contact_times() == []

    def test_active_contact_excluded_from_gaps(self):
        tracker = ContactTracker()
        tracker.contact_up("a", "b", P2P_WIFI, 0.0)
        tracker.contact_down("a", "b", 10.0)
        tracker.contact_up("a", "b", P2P_WIFI, 25.0)  # still active
        assert tracker.inter_contact_times() == []

    def test_back_to_back_contacts_yield_zero_gap(self):
        tracker = ContactTracker()
        tracker.contact_up("a", "b", P2P_WIFI, 0.0)
        tracker.contact_down("a", "b", 10.0)
        tracker.contact_up("a", "b", P2P_WIFI, 10.0)  # same tick re-up
        tracker.contact_down("a", "b", 20.0)
        assert tracker.inter_contact_times() == [0.0]

    def test_gaps_are_per_pair_and_sorted_by_start(self):
        tracker = ContactTracker()
        # Pair (a,b): deliberately recorded out of order.
        tracker.contact_up("a", "b", P2P_WIFI, 100.0)
        tracker.contact_down("a", "b", 110.0)
        tracker.contact_up("b", "a", P2P_WIFI, 0.0)  # order-insensitive key
        tracker.contact_down("b", "a", 10.0)
        # Pair (a,c): one contact, no gap.
        tracker.contact_up("a", "c", P2P_WIFI, 50.0)
        tracker.contact_down("a", "c", 60.0)
        assert tracker.inter_contact_times() == [90.0]

    def test_tied_starts_do_not_crash_or_double_count(self):
        tracker = ContactTracker()
        tracker.contact_up("a", "b", P2P_WIFI, 0.0)
        tracker.contact_down("a", "b", 0.0)  # zero-length contact
        tracker.contact_up("a", "b", P2P_WIFI, 0.0)
        tracker.contact_down("a", "b", 5.0)
        gaps = tracker.inter_contact_times()
        assert gaps == [0.0]
