"""Tier-1 guard for the CI docs lane: the doc checker must pass locally
too, so a broken doctest or dead link fails fast instead of at CI."""

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_doc_checks_pass():
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_docs.py")],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(ROOT),
    )
    assert proc.returncode == 0, f"doc checks failed:\n{proc.stdout}\n{proc.stderr}"
