"""Tests for the SOS wire protocol and advertisements."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.advertisement import (
    AdvertisementError,
    build_advertisement,
    interesting_entries,
    parse_advertisement,
    validate_user_id,
)
from repro.core.wire import PacketKind, SosPacket, WireError, canonical_message_bytes
from repro.storage.messagestore import StoredMessage

UID = "u000000001"
UID2 = "u000000002"


def sample_message():
    return StoredMessage(
        author_id=UID,
        number=7,
        created_at=123.5,
        body=b"hello world",
        signature=b"\x01" * 128,
        author_cert=b"\x02" * 64,
        hops=2,
    )


class TestPacketEncoding:
    def test_cert_roundtrip(self):
        packet = SosPacket.cert(UID, b"certificate-bytes", forwarded=True)
        decoded = SosPacket.decode(packet.encode())
        assert decoded.kind is PacketKind.CERT
        assert decoded.sender == UID
        assert decoded.fields["certificate"] == b"certificate-bytes"
        assert decoded.fields["forwarded"] is True

    def test_request_roundtrip(self):
        packet = SosPacket.request(UID, UID2, [1, 5, 9])
        decoded = SosPacket.decode(packet.encode())
        assert decoded.kind is PacketKind.REQUEST
        assert decoded.fields["author_id"] == UID2
        assert decoded.fields["numbers"] == [1, 5, 9]

    def test_data_roundtrip(self):
        packet = SosPacket.data(UID2, sample_message())
        decoded = SosPacket.decode(packet.encode())
        message = decoded.fields["message"]
        assert message.author_id == UID
        assert message.number == 7
        assert message.created_at == 123.5
        assert message.body == b"hello world"
        assert message.hops == 2

    def test_control_roundtrip(self):
        packet = SosPacket.control(UID, "prophet", b"\x00\x01payload")
        decoded = SosPacket.decode(packet.encode())
        assert decoded.fields["protocol"] == "prophet"
        assert decoded.fields["payload"] == b"\x00\x01payload"

    def test_empty_frame_rejected(self):
        with pytest.raises(WireError):
            SosPacket.decode(b"")

    def test_unknown_kind_rejected(self):
        with pytest.raises(WireError):
            SosPacket.decode(b"\xff" + b"rest")

    def test_truncated_frame_rejected(self):
        encoded = SosPacket.request(UID, UID2, [1, 2, 3]).encode()
        with pytest.raises(WireError):
            SosPacket.decode(encoded[:10])

    def test_absurd_request_count_rejected(self):
        # Craft a request header claiming 2**30 numbers.
        good = SosPacket.request(UID, UID2, [1]).encode()
        # count field sits right after the author string
        idx = good.rfind((1).to_bytes(4, "big") + (1).to_bytes(4, "big"))
        bad = good[:idx] + (2**30).to_bytes(4, "big") + good[idx + 4 :]
        with pytest.raises(WireError):
            SosPacket.decode(bad)

    @given(st.binary(max_size=200), st.integers(1, 1000), st.integers(0, 100))
    @settings(max_examples=50)
    def test_data_roundtrip_property(self, body, number, hops):
        message = StoredMessage(
            author_id=UID, number=number, created_at=1.0, body=body,
            signature=b"s", author_cert=b"c", hops=hops,
        )
        decoded = SosPacket.decode(SosPacket.data(UID, message).encode())
        got = decoded.fields["message"]
        assert (got.body, got.number, got.hops) == (body, number, hops)


class TestCanonicalBytes:
    def test_deterministic(self):
        a = canonical_message_bytes(UID, 1, 5.0, b"body")
        b = canonical_message_bytes(UID, 1, 5.0, b"body")
        assert a == b

    def test_sensitive_to_every_field(self):
        base = canonical_message_bytes(UID, 1, 5.0, b"body")
        assert canonical_message_bytes(UID2, 1, 5.0, b"body") != base
        assert canonical_message_bytes(UID, 2, 5.0, b"body") != base
        assert canonical_message_bytes(UID, 1, 6.0, b"body") != base
        assert canonical_message_bytes(UID, 1, 5.0, b"bodz") != base


class TestUserIdValidation:
    def test_exactly_ten_bytes_required(self):
        assert validate_user_id("u000000001") == "u000000001"
        with pytest.raises(AdvertisementError):
            validate_user_id("short")
        with pytest.raises(AdvertisementError):
            validate_user_id("u0000000012")

    def test_multibyte_utf8_counted_in_bytes(self):
        # é is 2 bytes in UTF-8: 9 ASCII chars + one é = 11 bytes -> invalid;
        # 8 ASCII chars + one é = 10 bytes -> valid.
        assert validate_user_id("util-usé1") == "util-usé1"
        with pytest.raises(AdvertisementError):
            validate_user_id("é" * 10)  # 20 bytes


class TestAdvertisements:
    def test_build_and_parse_roundtrip(self):
        marks = {UID: 3, UID2: 10}
        info = build_advertisement(marks)
        assert parse_advertisement(info) == marks

    def test_limit_keeps_freshest(self):
        marks = {f"u{i:09d}": i + 1 for i in range(10)}
        info = build_advertisement(marks, limit=3)
        parsed = parse_advertisement(info)
        assert len(parsed) == 3
        assert min(parsed.values()) == 8  # the three highest numbers win

    def test_zero_number_rejected_on_build(self):
        with pytest.raises(AdvertisementError):
            build_advertisement({UID: 0})

    def test_parse_drops_malformed_entries(self):
        info = {UID: "5", "bad": "7", UID2: "not-a-number", "u000000009": "-3"}
        assert parse_advertisement(info) == {UID: 5}

    def test_interesting_entries_filters_known(self):
        advert = {UID: 5, UID2: 2}
        own = {UID: 5, UID2: 1}
        assert interesting_entries(advert, own) == {UID2: 2}

    def test_interesting_entries_respects_interests(self):
        advert = {UID: 5, UID2: 5}
        assert interesting_entries(advert, {}, interests=frozenset([UID])) == {UID: 5}

    def test_interesting_entries_empty_when_uptodate(self):
        advert = {UID: 5}
        assert interesting_entries(advert, {UID: 9}) == {}
