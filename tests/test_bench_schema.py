"""Schema round-trip and validation for ``BENCH_*.json`` artifacts."""

from __future__ import annotations

import pytest

from repro.bench import schema
from repro.bench.schema import (
    BenchSchemaError,
    dump_artifact,
    load_artifact,
    new_artifact,
    validate_artifact,
)


def _artifact(**overrides):
    data = new_artifact(
        "unit",
        runs=[
            schema.make_run_entry(
                "point_a", 0, {"duration_days": 1}, {"wall_s": 1.5, "cpu_s": 1.2},
                "ab" * 32,
            ),
            schema.make_run_entry(
                "point_a", 1, {"duration_days": 1}, {"wall_s": 1.6, "cpu_s": 1.3},
                "ab" * 32,
            ),
            schema.make_run_entry("ratio", 0, {}, {"speedup_x": 3.5}, None),
        ],
        sampler="proc",
    )
    data.update(overrides)
    return data


class TestRoundTrip:
    def test_emit_load_validate(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        original = _artifact()
        dump_artifact(original, path)
        loaded = load_artifact(path)
        assert loaded == original

    def test_dump_is_byte_stable_for_identical_content(self, tmp_path):
        artifact = _artifact()
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        dump_artifact(artifact, first)
        dump_artifact(artifact, second)
        assert first.read_bytes() == second.read_bytes()
        assert first.read_text().endswith("\n")

    def test_environment_blocks_are_filled(self):
        artifact = _artifact()
        assert artifact["schema"] == schema.SCHEMA_VERSION
        assert len(artifact["host"]["fingerprint"]) == 16
        assert artifact["host"]["sampler"] == "proc"
        # Inside this repo the git rev resolves to a 40-hex commit.
        rev = schema.git_revision()
        if rev is not None:
            assert len(rev) == 40

    def test_fingerprint_is_stable_within_process(self):
        assert schema.host_fingerprint() == schema.host_fingerprint()


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(BenchSchemaError, match="JSON object"):
            validate_artifact([1, 2])

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(BenchSchemaError, match="unsupported schema"):
            validate_artifact(_artifact(schema="repro-bench/999"))

    @pytest.mark.parametrize("key", ["suite", "host", "runs"])
    def test_rejects_missing_required_key(self, key):
        artifact = _artifact()
        del artifact[key]
        with pytest.raises(BenchSchemaError, match=key):
            validate_artifact(artifact)

    def test_rejects_non_numeric_metric(self):
        artifact = _artifact()
        artifact["runs"][0]["metrics"]["wall_s"] = "fast"
        with pytest.raises(BenchSchemaError, match="must be a number"):
            validate_artifact(artifact)

    def test_rejects_boolean_metric(self):
        artifact = _artifact()
        artifact["runs"][0]["metrics"]["ok"] = True
        with pytest.raises(BenchSchemaError, match="must be a number"):
            validate_artifact(artifact)

    def test_rejects_empty_metrics(self):
        artifact = _artifact()
        artifact["runs"][0]["metrics"] = {}
        with pytest.raises(BenchSchemaError, match="metrics"):
            validate_artifact(artifact)

    def test_rejects_duplicate_run_key(self):
        artifact = _artifact()
        artifact["runs"].append(dict(artifact["runs"][0]))
        with pytest.raises(BenchSchemaError, match="duplicates run key"):
            validate_artifact(artifact)

    def test_rejects_malformed_trace_sha(self):
        artifact = _artifact()
        artifact["runs"][0]["trace_sha256"] = "abc123"
        with pytest.raises(BenchSchemaError, match="64-hex"):
            validate_artifact(artifact)

    def test_null_trace_sha_is_legal(self):
        # Recorder entries (ratio measurements) carry no trace.
        validate_artifact(_artifact())

    def test_rejects_negative_repetition(self):
        artifact = _artifact()
        artifact["runs"][0]["repetition"] = -1
        with pytest.raises(BenchSchemaError, match="repetition"):
            validate_artifact(artifact)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="not valid JSON"):
            load_artifact(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="cannot read"):
            load_artifact(tmp_path / "BENCH_absent.json")

    def test_dump_refuses_invalid_artifact(self, tmp_path):
        artifact = _artifact()
        artifact["runs"][0]["metrics"] = {}
        with pytest.raises(BenchSchemaError):
            dump_artifact(artifact, tmp_path / "BENCH_bad.json")
        assert not (tmp_path / "BENCH_bad.json").exists()


class TestRunsByKey:
    def test_indexes_by_name_and_repetition(self):
        indexed = schema.runs_by_key(_artifact())
        assert set(indexed) == {("point_a", 0), ("point_a", 1), ("ratio", 0)}
        assert indexed[("ratio", 0)]["metrics"]["speedup_x"] == 3.5
