"""World-building helpers for middleware/application tests.

Builds N AlleyOop apps on stationary (or scripted) devices, reusing the
session-scoped key pool so tests do not pay RSA key generation per case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.alleyoop import AlleyOopApp, CloudService
from repro.core.config import SosConfig
from repro.crypto.drbg import HmacDrbg
from repro.geo.point import Point
from repro.mobility.base import MobilityModel, StationaryModel
from repro.mpc.framework import MpcFramework
from repro.net.device import Device
from repro.net.medium import Medium
from repro.pki.csr import CertificateSigningRequest
from repro.pki.certificate import DistinguishedName
from repro.pki.keystore import KeyStore
from repro.sim.engine import Simulator


def trace_lines(sim: Simulator, exclude_category: Optional[str] = None) -> List[str]:
    """Render a trace stream as comparable lines (the byte-identity
    oracle used by the equivalence tests and benches)."""
    return [
        f"{event.time!r}|{event.category}|{event.kind}|{sorted(event.data.items())!r}"
        for event in sim.trace
        if event.category != exclude_category
    ]


def subscription_windows(sim: Simulator) -> List[tuple]:
    """The collector-derived subscription windows, as comparable tuples."""
    from repro.metrics.collector import TraceCollector

    return [
        (w.follower, w.followee, w.start, w.end)
        for w in TraceCollector(sim.trace).subscription_windows
    ]


def followed_sequences(apps) -> Dict[object, List[str]]:
    """Expand each app's logged follow actions (per-edge FOLLOW or the
    bulk path's compact FOLLOW_MANY) to the ordered followee sequence
    they record — the wiring-mode equivalence oracle for action logs."""
    from repro.storage.actionlog import ActionKind

    out: Dict[object, List[str]] = {}
    for key, app in apps.items():
        expanded: List[str] = []
        for action in app.actions:
            if action.kind is ActionKind.FOLLOW:
                expanded.append(action.payload["target"])
            elif action.kind is ActionKind.FOLLOW_MANY:
                expanded.extend(action.payload["targets"])
        out[key] = expanded
    return out


class World:
    """A small in-memory deployment for tests."""

    def __init__(
        self,
        ca,
        keypair_pool,
        tick: float = 10.0,
        seed: int = 1,
        session_crypto: bool = True,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.medium = Medium(self.sim, tick_interval=tick)
        self.framework = MpcFramework(self.sim, self.medium)
        self.cloud = CloudService(ca=ca)
        self._keypair_pool = keypair_pool
        #: Default packet-crypto mode for users added without an explicit
        #: config (tests parametrise this to cover both wire formats).
        self.session_crypto = session_crypto
        self.apps: Dict[str, AlleyOopApp] = {}
        self.devices: Dict[str, Device] = {}

    def add_user(
        self,
        name: str,
        position: Point = None,
        mobility: Optional[MobilityModel] = None,
        config: Optional[SosConfig] = None,
        start: bool = True,
        resilience=None,
    ) -> AlleyOopApp:
        index = len(self.apps)
        account = self.cloud.create_account(name, now=self.sim.now)
        keypair = self._keypair_pool[index % len(self._keypair_pool)]
        csr = CertificateSigningRequest.create(
            DistinguishedName(common_name=name), keypair.private, account.user_id
        )
        certificate = self.cloud.request_certificate(name, csr, now=self.sim.now)
        keystore = KeyStore()
        keystore.provision(keypair.private, certificate, self.cloud.root_certificate)
        model = mobility or StationaryModel(position or Point(100.0 + 20.0 * index, 100.0))
        device = Device(f"dev-{name}", model)
        self.medium.add_device(device)
        self.devices[name] = device
        app = AlleyOopApp(
            sim=self.sim,
            framework=self.framework,
            device_id=device.device_id,
            user_id=account.user_id,
            username=name,
            keystore=keystore,
            cloud=self.cloud,
            rng=HmacDrbg.from_int(9000 + index),
            config=config
            or SosConfig(
                routing_protocol="interest",
                relay_request_grace=0.0,
                session_crypto=self.session_crypto,
            ),
            resilience=resilience,
        )
        self.apps[name] = app
        if start:
            app.start()
        return app

    def start(self) -> None:
        self.medium.start()

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    def uid(self, name: str) -> str:
        return self.apps[name].user_id
