"""Tests for geometry: points, regions, spatial index, places."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import Place, PlaceKind, Point, Region, SpatialHashIndex, distance, midpoint
from repro.geo.region import GAINESVILLE_AREA
from repro.geo.spatial_index import (
    BAND_SENTINEL,
    cell_x_of,
    partition_cell_bands,
    span_cells,
)

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    @given(coords, coords, coords, coords)
    @settings(max_examples=100)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert distance(a, b) == pytest.approx(distance(b, a))

    def test_moved_towards_partial(self):
        p = Point(0, 0).moved_towards(Point(10, 0), 4)
        assert p == Point(4, 0)

    def test_moved_towards_clamps_at_target(self):
        assert Point(0, 0).moved_towards(Point(1, 0), 100) == Point(1, 0)

    def test_moved_towards_zero_distance(self):
        assert Point(2, 2).moved_towards(Point(2, 2), 5) == Point(2, 2)

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(4, 6)) == Point(2, 3)


class TestRegion:
    def test_gainesville_area_matches_paper(self):
        assert GAINESVILLE_AREA.width == 11_000
        assert GAINESVILLE_AREA.height == 8_000
        assert GAINESVILLE_AREA.area_km2 == pytest.approx(88.0)

    def test_contains(self):
        r = Region(0, 0, 10, 10)
        assert r.contains(Point(5, 5))
        assert r.contains(Point(0, 0))
        assert not r.contains(Point(11, 5))

    def test_clamp(self):
        r = Region(0, 0, 10, 10)
        assert r.clamp(Point(-5, 20)) == Point(0, 10)
        assert r.clamp(Point(5, 5)) == Point(5, 5)

    def test_random_point_inside(self):
        r = Region(0, 0, 100, 50)
        rng = random.Random(1)
        for _ in range(100):
            assert r.contains(r.random_point(rng))

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 0, 0, 10)

    def test_subregion(self):
        r = Region(0, 0, 100, 100)
        q = r.subregion(0, 0, 0.5, 0.5)
        assert (q.x1, q.y1) == (50, 50)

    def test_center(self):
        assert Region(0, 0, 10, 20).center == Point(5, 10)


class TestSpatialHashIndex:
    def test_within_radius(self):
        index = SpatialHashIndex(cell_size=10)
        index.update("a", Point(0, 0))
        index.update("b", Point(5, 0))
        index.update("c", Point(50, 50))
        assert sorted(index.within(Point(0, 0), 10)) == ["a", "b"]

    def test_exclude(self):
        index = SpatialHashIndex(cell_size=10)
        index.update("a", Point(0, 0))
        index.update("b", Point(1, 0))
        assert index.within(Point(0, 0), 10, exclude="a") == ["b"]

    def test_update_moves_item(self):
        index = SpatialHashIndex(cell_size=10)
        index.update("a", Point(0, 0))
        index.update("a", Point(100, 100))
        assert index.within(Point(0, 0), 5) == []
        assert index.within(Point(100, 100), 5) == ["a"]
        assert len(index) == 1

    def test_remove(self):
        index = SpatialHashIndex(cell_size=10)
        index.update("a", Point(0, 0))
        index.remove("a")
        assert "a" not in index
        assert index.within(Point(0, 0), 10) == []

    def test_matches_brute_force(self):
        rng = random.Random(7)
        index = SpatialHashIndex(cell_size=37.0)
        points = {}
        for i in range(200):
            p = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            points[i] = p
            index.update(i, p)
        for _ in range(20):
            center = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            radius = rng.uniform(10, 300)
            expected = sorted(
                i for i, p in points.items() if p.distance_to(center) <= radius
            )
            assert sorted(index.within(center, radius)) == expected

    def test_boundary_inclusive(self):
        index = SpatialHashIndex(cell_size=10)
        index.update("edge", Point(10, 0))
        assert index.within(Point(0, 0), 10) == ["edge"]

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            SpatialHashIndex(cell_size=0)


def _brute_force_pairs(points, radius, reach_of=None):
    """All unordered pairs within radius (and within min mutual reach)."""
    expected = set()
    ids = sorted(points)
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            limit = radius if reach_of is None else min(reach_of[a], reach_of[b])
            if points[a].distance_to(points[b]) <= limit:
                expected.add((a, b) if a <= b else (b, a))
    return expected


class TestSpatialIndexBoundaries:
    """Edge geometry the sharded engine leans on: items exactly on cell
    boundaries, sweep radius equal to the cell size, cell churn."""

    def test_pairs_on_exact_cell_edges(self):
        # Items sitting exactly on cell corners land in the cell whose
        # index is floor(x / size); the sweep must still see every pair
        # exactly once, wherever the pair straddles a boundary.
        size = 10.0
        index = SpatialHashIndex(cell_size=size)
        points = {
            "corner00": Point(0.0, 0.0),
            "corner10": Point(10.0, 0.0),
            "corner01": Point(0.0, 10.0),
            "corner11": Point(10.0, 10.0),
            "negedge": Point(-10.0, 0.0),
            "inside": Point(5.0, 5.0),
        }
        for item, p in points.items():
            index.update(item, p)
        radius = 10.0
        got = [(a, b) if a <= b else (b, a) for a, b, _ in index.pairs_within(radius)]
        assert len(got) == len(set(got)), "pair emitted twice"
        assert set(got) == _brute_force_pairs(points, radius)

    def test_radius_equal_to_cell_size_lattice(self):
        # radius == cell_size is the tightest legal half-neighbourhood
        # sweep; a full lattice of exact corner points exercises every
        # (dx, dy) offset including the boundary-inclusive distance.
        size = 7.0
        index = SpatialHashIndex(cell_size=size)
        points = {}
        for gx in range(-3, 4):
            for gy in range(-3, 4):
                item = f"n{gx}_{gy}"
                points[item] = Point(gx * size, gy * size)
        index.update_many(points.items())
        got = [(a, b) if a <= b else (b, a) for a, b, _ in index.pairs_within(size)]
        assert len(got) == len(set(got))
        assert set(got) == _brute_force_pairs(points, size)

    def test_numpy_sweep_agrees_on_exact_edges(self):
        # Population over the vectorised-path threshold, all on exact
        # cell corners: the numpy sweep must produce the identical pair
        # set and identical float64 d2 values as the Python path.
        numpy = pytest.importorskip("numpy")
        size = 10.0
        big = SpatialHashIndex(cell_size=size)
        points = {}
        for gx in range(14):
            for gy in range(14):  # 196 items >= _NUMPY_SWEEP_MIN
                item = f"n{gx:02d}_{gy:02d}"
                points[item] = Point(gx * size, gy * size)
        big.update_many(points.items())
        got = sorted(
            ((a, b) if a <= b else (b, a), d2)
            for a, b, d2 in big.pairs_within(size)
        )
        expected_pairs = _brute_force_pairs(points, size)
        assert {pair for pair, _ in got} == expected_pairs
        for (a, b), d2 in got:
            dx = points[a].x - points[b].x
            dy = points[a].y - points[b].y
            assert d2 == dx * dx + dy * dy  # bit-identical, not approx

    def test_reach_of_on_threshold_boundary(self):
        # A pair exactly at min(reach_a, reach_b) is in; epsilon beyond
        # is out.  This is the arithmetic every engine must share.
        index = SpatialHashIndex(cell_size=50)
        index.update("a", Point(0, 0))
        index.update("b", Point(30.0, 0))
        reach = {"a": 30.0, "b": 100.0}
        # Within-pair order follows set iteration (hash-seed dependent
        # and documented as "no particular order"): normalise it.
        assert [
            (a, b) if a <= b else (b, a)
            for a, b, _ in index.pairs_within(100.0, reach_of=reach)
        ] == [("a", "b")]
        reach["a"] = math.nextafter(30.0, 0.0)
        assert index.pairs_within(100.0, reach_of=reach) == []

    def test_update_many_cell_churn_reclaims_cells(self):
        # Emptied cells are deleted (no unbounded set() accumulation)
        # and re-entering a reclaimed cell works.
        size = 10.0
        index = SpatialHashIndex(cell_size=size)
        items = [f"walker{i}" for i in range(8)]
        index.update_many((item, Point(5.0, 5.0)) for item in items)
        assert index.occupied_cells == 1
        for step in range(1, 30):
            index.update_many((item, Point(5.0 + step * size, 5.0)) for item in items)
            assert index.occupied_cells == 1
        index.update_many((item, Point(5.0, 5.0)) for item in items)
        assert index.occupied_cells == 1
        assert sorted(index.within(Point(5.0, 5.0), 1.0)) == sorted(items)

    def test_update_many_same_object_short_circuit(self):
        # update_many skips items whose Point object is unchanged (the
        # stationary-device fast path); the entry must stay queryable.
        index = SpatialHashIndex(cell_size=10)
        home = Point(3.0, 4.0)
        index.update("parked", home)
        index.update_many([("parked", home)])
        assert index.within(Point(3.0, 4.0), 1.0) == ["parked"]
        assert index.occupied_cells == 1


class TestShardPartition:
    """The band-partition API the sharded medium shards the grid with."""

    def test_cell_x_matches_index_cells(self):
        size = 120.0
        index = SpatialHashIndex(cell_size=size)
        for x in (-360.0, -120.0, -0.1, 0.0, 0.1, 119.999, 120.0, 360.5):
            index.update("probe", Point(x, 55.0))
            (cell,) = index._cells  # noqa: SLF001 - asserting the contract
            assert cell[0] == cell_x_of(x, size)

    def test_span_cells(self):
        assert span_cells(120.0, 120.0) == 1
        assert span_cells(120.1, 120.0) == 2
        assert span_cells(1.0, 120.0) == 1
        assert span_cells(600.0, 120.0) == 5

    def test_bands_tile_the_axis(self):
        counts = {0: 5, 1: 1, 2: 9, 7: 3, -4: 2}
        for shards in (1, 2, 3, 4, 8):
            bands = partition_cell_bands(counts, shards)
            assert len(bands) == shards
            assert bands[0][0] == -BAND_SENTINEL
            assert bands[-1][1] == BAND_SENTINEL
            for (_, hi), (lo, _) in zip(bands, bands[1:]):
                assert hi == lo  # contiguous, no gaps or overlaps
            for cx in counts:
                owners = [1 for lo, hi in bands if lo <= cx < hi]
                assert sum(owners) == 1

    def test_bands_balance_occupancy(self):
        counts = {cx: 10 for cx in range(100)}
        bands = partition_cell_bands(counts, 4)
        per_band = [
            sum(n for cx, n in counts.items() if lo <= cx < hi) for lo, hi in bands
        ]
        assert per_band == [250, 250, 250, 250]

    def test_more_shards_than_columns(self):
        bands = partition_cell_bands({5: 3}, 4)
        # First band swallows the whole population; the rest are empty
        # (unoccupied ranges or degenerate) and sweep nothing.
        assert bands[0] == (-BAND_SENTINEL, 6)
        assert [1 for lo, hi in bands if lo <= 5 < hi] == [1]

    def test_empty_counts(self):
        bands = partition_cell_bands({}, 3)
        assert len(bands) == 3
        assert [1 for lo, hi in bands if lo <= 0 < hi] == [1]

    def test_deterministic(self):
        counts = {cx: (cx * 7919) % 23 + 1 for cx in range(-50, 50)}
        assert partition_cell_bands(dict(reversed(list(counts.items()))), 6) == (
            partition_cell_bands(counts, 6)
        )

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            partition_cell_bands({0: 1}, 0)


class TestPlace:
    def test_jittered_position_within_radius(self):
        place = Place("cafe", PlaceKind.SOCIAL, Point(100, 100), radius=30)
        rng = random.Random(3)
        for _ in range(200):
            p = place.jittered_position(rng)
            assert p.distance_to(place.location) <= 30 + 1e-9

    def test_jitter_spreads_over_disc(self):
        place = Place("cafe", PlaceKind.SOCIAL, Point(0, 0), radius=10)
        rng = random.Random(4)
        distances = [place.jittered_position(rng).distance_to(Point(0, 0)) for _ in range(500)]
        # Uniform-over-disc: mean distance = 2R/3.
        assert sum(distances) / len(distances) == pytest.approx(20 / 3, rel=0.1)
