"""Tests for geometry: points, regions, spatial index, places."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import Place, PlaceKind, Point, Region, SpatialHashIndex, distance, midpoint
from repro.geo.region import GAINESVILLE_AREA

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    @given(coords, coords, coords, coords)
    @settings(max_examples=100)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert distance(a, b) == pytest.approx(distance(b, a))

    def test_moved_towards_partial(self):
        p = Point(0, 0).moved_towards(Point(10, 0), 4)
        assert p == Point(4, 0)

    def test_moved_towards_clamps_at_target(self):
        assert Point(0, 0).moved_towards(Point(1, 0), 100) == Point(1, 0)

    def test_moved_towards_zero_distance(self):
        assert Point(2, 2).moved_towards(Point(2, 2), 5) == Point(2, 2)

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(4, 6)) == Point(2, 3)


class TestRegion:
    def test_gainesville_area_matches_paper(self):
        assert GAINESVILLE_AREA.width == 11_000
        assert GAINESVILLE_AREA.height == 8_000
        assert GAINESVILLE_AREA.area_km2 == pytest.approx(88.0)

    def test_contains(self):
        r = Region(0, 0, 10, 10)
        assert r.contains(Point(5, 5))
        assert r.contains(Point(0, 0))
        assert not r.contains(Point(11, 5))

    def test_clamp(self):
        r = Region(0, 0, 10, 10)
        assert r.clamp(Point(-5, 20)) == Point(0, 10)
        assert r.clamp(Point(5, 5)) == Point(5, 5)

    def test_random_point_inside(self):
        r = Region(0, 0, 100, 50)
        rng = random.Random(1)
        for _ in range(100):
            assert r.contains(r.random_point(rng))

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 0, 0, 10)

    def test_subregion(self):
        r = Region(0, 0, 100, 100)
        q = r.subregion(0, 0, 0.5, 0.5)
        assert (q.x1, q.y1) == (50, 50)

    def test_center(self):
        assert Region(0, 0, 10, 20).center == Point(5, 10)


class TestSpatialHashIndex:
    def test_within_radius(self):
        index = SpatialHashIndex(cell_size=10)
        index.update("a", Point(0, 0))
        index.update("b", Point(5, 0))
        index.update("c", Point(50, 50))
        assert sorted(index.within(Point(0, 0), 10)) == ["a", "b"]

    def test_exclude(self):
        index = SpatialHashIndex(cell_size=10)
        index.update("a", Point(0, 0))
        index.update("b", Point(1, 0))
        assert index.within(Point(0, 0), 10, exclude="a") == ["b"]

    def test_update_moves_item(self):
        index = SpatialHashIndex(cell_size=10)
        index.update("a", Point(0, 0))
        index.update("a", Point(100, 100))
        assert index.within(Point(0, 0), 5) == []
        assert index.within(Point(100, 100), 5) == ["a"]
        assert len(index) == 1

    def test_remove(self):
        index = SpatialHashIndex(cell_size=10)
        index.update("a", Point(0, 0))
        index.remove("a")
        assert "a" not in index
        assert index.within(Point(0, 0), 10) == []

    def test_matches_brute_force(self):
        rng = random.Random(7)
        index = SpatialHashIndex(cell_size=37.0)
        points = {}
        for i in range(200):
            p = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            points[i] = p
            index.update(i, p)
        for _ in range(20):
            center = Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            radius = rng.uniform(10, 300)
            expected = sorted(
                i for i, p in points.items() if p.distance_to(center) <= radius
            )
            assert sorted(index.within(center, radius)) == expected

    def test_boundary_inclusive(self):
        index = SpatialHashIndex(cell_size=10)
        index.update("edge", Point(10, 0))
        assert index.within(Point(0, 0), 10) == ["edge"]

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            SpatialHashIndex(cell_size=0)


class TestPlace:
    def test_jittered_position_within_radius(self):
        place = Place("cafe", PlaceKind.SOCIAL, Point(100, 100), radius=30)
        rng = random.Random(3)
        for _ in range(200):
            p = place.jittered_position(rng)
            assert p.distance_to(place.location) <= 30 + 1e-9

    def test_jitter_spreads_over_disc(self):
        place = Place("cafe", PlaceKind.SOCIAL, Point(0, 0), radius=10)
        rng = random.Random(4)
        distances = [place.jittered_position(rng).distance_to(Point(0, 0)) for _ in range(500)]
        # Uniform-over-disc: mean distance = 2R/3.
        assert sum(distances) / len(distances) == pytest.approx(20 / 3, rel=0.1)
