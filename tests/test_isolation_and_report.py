"""Per-app middleware isolation (paper §III) and report utilities."""

import pytest

from repro.core.config import SosConfig
from repro.core.delegates import SosDelegate
from repro.core.middleware import SOSMiddleware
from repro.crypto.drbg import HmacDrbg
from repro.geo.point import Point
from repro.metrics.report import comparison_row, format_table
from repro.mobility.base import StationaryModel
from repro.mpc import MpcFramework
from repro.net import Device, Medium
from repro.sim import Simulator
from repro.sim.randomness import RandomStreams
from tests.conftest import make_keystore


class _Recorder(SosDelegate):
    def __init__(self):
        self.received = []

    def sos_message_received(self, message, from_user):
        self.received.append(message)


class TestPerAppIsolation:
    """The paper's per-app instance design: two applications embedding
    SOS on the *same pair of devices* must not see each other's traffic
    when their service types differ."""

    def _middleware(self, sim, fw, device_id, user_id, keystore, service, index):
        delegate = _Recorder()
        sos = SOSMiddleware(
            sim=sim,
            framework=fw,
            device_id=device_id,
            user_id=user_id,
            keystore=keystore,
            rng=HmacDrbg.from_int(5000 + index),
            config=SosConfig(
                service_type=service, routing_protocol="epidemic",
                relay_request_grace=0.0,
            ),
            delegate=delegate,
        )
        return sos, delegate

    def test_different_service_types_never_mix(self, ca, keypair_pool):
        sim = Simulator(seed=4)
        medium = Medium(sim, tick_interval=10.0)
        fw = MpcFramework(sim, medium)
        medium.add_device(Device("dev-1", StationaryModel(Point(0, 0))))
        medium.add_device(Device("dev-2", StationaryModel(Point(20, 0))))

        # App "social" and app "medical" both run on both devices, each
        # with its own user identity and keystore.
        stores = {
            uid: make_keystore(ca, keypair_pool[i], uid)
            for i, uid in enumerate(["u-social01", "u-social02",
                                     "u-medic001", "u-medic002"])
        }
        social_1, social_1_delegate = self._middleware(
            sim, fw, "dev-1", "u-social01", stores["u-social01"], "svc-social", 1)
        social_2, social_2_delegate = self._middleware(
            sim, fw, "dev-2", "u-social02", stores["u-social02"], "svc-social", 2)
        medic_1, medic_1_delegate = self._middleware(
            sim, fw, "dev-1", "u-medic001", stores["u-medic001"], "svc-medical", 3)
        medic_2, medic_2_delegate = self._middleware(
            sim, fw, "dev-2", "u-medic002", stores["u-medic002"], "svc-medical", 4)
        for sos in (social_1, social_2, medic_1, medic_2):
            sos.start()
        medium.start()

        social_1.send(b"social payload")
        medic_1.send(b"medical payload")
        sim.run(until=300.0)

        # Each app's message reached its peer app on the other device...
        assert [m.body for m in social_2_delegate.received] == [b"social payload"]
        assert [m.body for m in medic_2_delegate.received] == [b"medical payload"]
        # ...and never crossed the app boundary.
        assert all(m.body != b"medical payload" for m in social_2_delegate.received)
        assert "u-medic001" not in social_2.surrounding_users()
        assert "u-social01" not in medic_2.surrounding_users()
        # Store isolation: the social app never carries medical content.
        assert social_2.store.authors() == ["u-social01"]
        assert medic_2.store.authors() == ["u-medic001"]


class TestReportUtilities:
    def test_format_table_alignment(self):
        text = format_table("T", ("a", "bb"), [("x", 1), ("longer", 2.5)])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "longer" in text and "2.500" in text
        # All data rows have equal width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_comparison_row_delta(self):
        row = comparison_row("m", 2.0, 2.2)
        assert row == ("m", "2.000", "2.200", "+10.0%")

    def test_comparison_row_missing_values(self):
        assert comparison_row("m", None, 1.0)[1] == "-"
        assert comparison_row("m", 1.0, None)[3] == "-"

    def test_comparison_row_zero_paper(self):
        row = comparison_row("m", 0.0, 0.5)
        assert row[3] == "+0.500"


class TestRandomStreams:
    def test_fork_derives_independent_family(self):
        parent = RandomStreams(7)
        child_a = parent.fork("device-a")
        child_b = parent.fork("device-b")
        assert child_a.get("x").random() != child_b.get("x").random()

    def test_fork_is_deterministic(self):
        a = RandomStreams(7).fork("device-a").get("x").random()
        b = RandomStreams(7).fork("device-a").get("x").random()
        assert a == b

    def test_contains(self):
        streams = RandomStreams(1)
        assert "m" not in streams
        streams.get("m")
        assert "m" in streams
