"""Tests for big-integer number theory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.numbers import (
    bytes_to_int,
    egcd,
    generate_prime,
    int_to_bytes,
    is_probable_prime,
    modinv,
)

KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 7919, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [1, 4, 100, 561, 1105, 6601, 8911, 2**31, 7919 * 104729]
# Carmichael numbers (561, 1105, 6601, 8911) defeat Fermat tests but not
# Miller-Rabin.


class TestPrimality:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites_including_carmichael(self, n):
        assert not is_probable_prime(n)

    def test_negative_and_zero(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(-7)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime (needs random witnesses).
        assert is_probable_prime(2**127 - 1, rng=HmacDrbg.from_int(1))

    def test_large_known_composite(self):
        assert not is_probable_prime((2**127 - 1) * (2**61 - 1), rng=HmacDrbg.from_int(1))


class TestGeneratePrime:
    def test_exact_bit_length(self):
        rng = HmacDrbg.from_int(5)
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p, rng=rng)

    def test_oddness(self):
        rng = HmacDrbg.from_int(6)
        assert generate_prime(64, rng) % 2 == 1

    def test_tiny_sizes_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(8, HmacDrbg.from_int(1))

    def test_deterministic_given_seed(self):
        assert generate_prime(64, HmacDrbg.from_int(9)) == generate_prime(
            64, HmacDrbg.from_int(9)
        )


class TestModularArithmetic:
    @given(st.integers(1, 10**9), st.integers(1, 10**9))
    @settings(max_examples=200)
    def test_egcd_invariant(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0

    @given(st.integers(2, 10**6))
    @settings(max_examples=200)
    def test_modinv_roundtrip(self, m):
        # pick an a coprime to m
        a = 1
        for candidate in range(2, m):
            g, _, _ = egcd(candidate, m)
            if g == 1:
                a = candidate
                break
        inv = modinv(a, m)
        assert (a * inv) % m == 1

    def test_modinv_non_coprime_raises(self):
        with pytest.raises(ValueError):
            modinv(6, 9)


class TestByteEncoding:
    @given(st.integers(0, 2**256 - 1))
    @settings(max_examples=200)
    def test_roundtrip(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n

    def test_fixed_length_padding(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_overflowing_length_raises(self):
        with pytest.raises(ValueError):
            int_to_bytes(2**32, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)
