"""Tests for the trace recorder."""

from repro.sim import Simulator
from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_emit_and_select_by_category(self):
        trace = TraceRecorder()
        trace.emit(1.0, "contact", "up", a="x", b="y")
        trace.emit(2.0, "message", "created", author="x")
        assert len(trace.select(category="contact")) == 1
        assert trace.select(category="message")[0].data["author"] == "x"

    def test_select_by_kind_and_window(self):
        trace = TraceRecorder()
        for t in [1.0, 2.0, 3.0, 4.0]:
            trace.emit(t, "m", "k")
        assert len(trace.select(kind="k", since=2.0, until=3.0)) == 2

    def test_count(self):
        trace = TraceRecorder()
        trace.emit(1.0, "a", "x")
        trace.emit(1.0, "a", "y")
        trace.emit(1.0, "b", "x")
        assert trace.count(category="a") == 2
        assert trace.count(kind="x") == 2
        assert trace.count() == 3

    def test_disabled_recorder_drops_events(self):
        trace = TraceRecorder()
        trace.enabled = False
        trace.emit(1.0, "a", "x")
        assert len(trace) == 0

    def test_subscribers_receive_live_events(self):
        trace = TraceRecorder()
        seen = []
        trace.subscribe(seen.append)
        trace.emit(1.0, "a", "x", v=1)
        assert seen[0].data == {"v": 1}

    def test_clear(self):
        trace = TraceRecorder()
        trace.emit(1.0, "a", "x")
        trace.clear()
        assert len(trace) == 0

    def test_simulator_trace_integration(self):
        sim = Simulator()
        sim.schedule_at(3.0, lambda: sim.trace.emit(sim.now, "test", "tick"))
        sim.run()
        events = sim.trace.select(category="test")
        assert events[0].time == 3.0
