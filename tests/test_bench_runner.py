"""Journal resume semantics, the suite runner, and sampler fallback.

The resume tests drive :func:`run_suite` with a stubbed ``run_point`` so
they exercise the orchestration (journal skip/invalidate, divergence
detection, artifact assembly) without paying for real simulations; one
integration test at the bottom runs a genuinely tiny world end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import runner as runner_module
from repro.bench import sampler as sampler_module
from repro.bench.journal import Journal, stale_keys
from repro.bench.runner import BenchRunError, run_suite
from repro.bench.sampler import BACKENDS, ResourceSampler, detect_backend
from repro.bench.schema import validate_artifact
from repro.bench.suites import BenchSuite, SuiteError, load_suite

SHA_A = "ab" * 32
SHA_B = "cd" * 32


def _suite(name="unit", reps_a=2):
    return BenchSuite.from_dict(
        {
            "suite": name,
            "runs": [
                {
                    "name": "point_a",
                    "repetitions": reps_a,
                    "config": {"duration_days": 1, "total_posts": 5},
                },
                {
                    "name": "point_b",
                    "repetitions": 1,
                    "config": {"duration_days": 1, "total_posts": 5, "seed": 9},
                },
            ],
        }
    )


def _install_fake_point(monkeypatch, calls, cpu_s=0.25, sha=SHA_A, boom_at=None):
    """Replace run_point with a recorder; ``boom_at`` simulates a kill
    (KeyboardInterrupt) on the Nth call (1-based)."""

    def fake(config, backend=None):
        calls.append(dict(config))
        if boom_at is not None and len(calls) == boom_at:
            raise KeyboardInterrupt
        return {"wall_s": cpu_s, "cpu_s": cpu_s}, sha

    monkeypatch.setattr(runner_module, "run_point", fake)


class TestResume:
    def test_full_run_journals_every_point(self, tmp_path, monkeypatch):
        calls = []
        _install_fake_point(monkeypatch, calls)
        out = tmp_path / "BENCH_unit.json"
        artifact = run_suite(_suite(), tmp_path / "journal", out_path=out)
        assert len(calls) == 3
        validate_artifact(artifact)
        assert out.exists()
        assert len(Journal(tmp_path / "journal", "unit")) == 3

    def test_rerun_skips_completed_points_with_identical_results(
        self, tmp_path, monkeypatch
    ):
        first_calls = []
        _install_fake_point(monkeypatch, first_calls, cpu_s=0.111)
        first = run_suite(_suite(), tmp_path / "journal", out_path=tmp_path / "a.json")

        second_calls = []
        # Were the points re-executed they would record 0.999 — the
        # artifact keeping 0.111 proves the journal supplied them.
        _install_fake_point(monkeypatch, second_calls, cpu_s=0.999)
        second = run_suite(_suite(), tmp_path / "journal", out_path=tmp_path / "b.json")
        assert second_calls == []
        assert second["runs"] == first["runs"]

    def test_kill_mid_suite_then_resume_runs_only_the_remainder(
        self, tmp_path, monkeypatch
    ):
        calls = []
        _install_fake_point(monkeypatch, calls, cpu_s=0.111, boom_at=2)
        with pytest.raises(KeyboardInterrupt):
            run_suite(_suite(), tmp_path / "journal", out_path=tmp_path / "a.json")
        assert len(Journal(tmp_path / "journal", "unit")) == 1

        resumed_calls = []
        _install_fake_point(monkeypatch, resumed_calls, cpu_s=0.222)
        artifact = run_suite(
            _suite(), tmp_path / "journal", out_path=tmp_path / "b.json"
        )
        # Only the two unfinished points ran; the survivor kept its
        # pre-kill measurement.
        assert len(resumed_calls) == 2
        by_key = {(run["name"], run["repetition"]): run for run in artifact["runs"]}
        assert by_key[("point_a", 0)]["metrics"]["cpu_s"] == 0.111
        assert by_key[("point_a", 1)]["metrics"]["cpu_s"] == 0.222
        assert by_key[("point_b", 0)]["metrics"]["cpu_s"] == 0.222

    def test_config_change_invalidates_stale_journal_entries(
        self, tmp_path, monkeypatch
    ):
        calls = []
        _install_fake_point(monkeypatch, calls)
        run_suite(_suite(), tmp_path / "journal", out_path=tmp_path / "a.json")

        changed = BenchSuite.from_dict(
            {
                "suite": "unit",
                "runs": [
                    {
                        "name": "point_a",
                        "repetitions": 2,
                        # total_posts changed: the journaled worlds no
                        # longer match this definition.
                        "config": {"duration_days": 1, "total_posts": 7},
                    },
                    {
                        "name": "point_b",
                        "repetitions": 1,
                        "config": {"duration_days": 1, "total_posts": 5, "seed": 9},
                    },
                ],
            }
        )
        rerun_calls = []
        _install_fake_point(monkeypatch, rerun_calls)
        run_suite(changed, tmp_path / "journal", out_path=tmp_path / "b.json")
        assert len(rerun_calls) == 2  # point_a x2 reran; point_b skipped

    def test_fresh_discards_the_journal(self, tmp_path, monkeypatch):
        calls = []
        _install_fake_point(monkeypatch, calls)
        run_suite(_suite(), tmp_path / "journal", out_path=tmp_path / "a.json")
        rerun_calls = []
        _install_fake_point(monkeypatch, rerun_calls)
        run_suite(
            _suite(), tmp_path / "journal", out_path=tmp_path / "b.json", fresh=True
        )
        assert len(rerun_calls) == 3

    def test_torn_final_line_is_ignored(self, tmp_path):
        journal = Journal(tmp_path, "unit")
        journal.record("point_a", 0, {"x": 1}, {"cpu_s": 0.1}, SHA_A)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"suite": "unit", "name": "point_a", "repet')
        reloaded = Journal(tmp_path, "unit")
        assert len(reloaded) == 1
        assert reloaded.completed("point_a", 0, {"x": 1}) is not None

    def test_foreign_suite_lines_are_ignored(self, tmp_path):
        Journal(tmp_path, "other").record("point_a", 0, {}, {"cpu_s": 0.1}, SHA_A)
        assert len(Journal(tmp_path, "unit")) == 0

    def test_stale_keys_names_orphaned_entries(self, tmp_path):
        journal = Journal(tmp_path, "unit")
        journal.record("gone", 0, {}, {"cpu_s": 0.1}, SHA_A)
        journal.record("kept", 0, {}, {"cpu_s": 0.1}, SHA_A)
        assert stale_keys(journal, [("kept", 0)]) == [("gone", 0)]


class TestRunnerContracts:
    def test_repetition_divergence_raises(self, tmp_path, monkeypatch):
        shas = iter([SHA_A, SHA_B, SHA_A])

        def fake(config, backend=None):
            return {"wall_s": 0.1, "cpu_s": 0.1}, next(shas)

        monkeypatch.setattr(runner_module, "run_point", fake)
        with pytest.raises(BenchRunError, match="different traces"):
            run_suite(_suite(), tmp_path / "journal", out_path=tmp_path / "a.json")

    def test_unknown_config_field_rejected_before_any_run(
        self, tmp_path, monkeypatch
    ):
        calls = []
        _install_fake_point(monkeypatch, calls)
        bad = BenchSuite.from_dict(
            {
                "suite": "unit",
                "runs": [{"name": "p", "config": {"warp_factor": 9}}],
            }
        )
        with pytest.raises(SuiteError, match="warp_factor"):
            run_suite(bad, tmp_path / "journal", out_path=tmp_path / "a.json")
        assert calls == []

    def test_builtin_smoke_is_subset_of_default(self):
        """The design rule the CI gate depends on: every smoke point
        exists in the default suite with an identical config."""
        smoke = {run.name: run for run in load_suite("smoke").runs}
        default = {run.name: run for run in load_suite("default").runs}
        assert set(smoke) < set(default)
        for name, run in smoke.items():
            assert default[name].config == run.config
            assert default[name].repetitions == run.repetitions


class TestSamplerFallback:
    def test_psutil_is_absent_in_this_environment(self):
        """The repo's no-new-deps rule means the fallback path is the
        one CI actually exercises; make that explicit."""
        assert not sampler_module._psutil_available()
        assert detect_backend() in ("proc", "resource", "none")

    def test_detect_falls_back_without_psutil_or_proc(self, monkeypatch):
        monkeypatch.setattr(sampler_module, "_psutil_available", lambda: False)
        monkeypatch.setattr(sampler_module, "_proc_status_kb", lambda: None)
        assert detect_backend() == "resource"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_yields_timing_metrics(self, backend):
        with ResourceSampler(backend=backend) as sampler:
            sum(range(1000))
        metrics = sampler.result.metrics()
        assert metrics["wall_s"] >= 0.0
        assert metrics["cpu_s"] >= 0.0
        if backend == "none":
            assert "rss_kb" not in metrics and "max_rss_kb" not in metrics

    def test_psutil_backend_degrades_gracefully_when_missing(self):
        # Pinning backend="psutil" on a psutil-less host must not crash:
        # the memory readings are simply omitted.
        with ResourceSampler(backend="psutil") as sampler:
            pass
        metrics = sampler.result.metrics()
        assert "wall_s" in metrics and "cpu_s" in metrics
        assert "rss_kb" not in metrics

    def test_proc_backend_reports_rss_on_linux(self):
        if sampler_module._proc_status_kb() is None:
            pytest.skip("/proc/self/status not available on this host")
        with ResourceSampler(backend="proc") as sampler:
            pass
        metrics = sampler.result.metrics()
        assert metrics["rss_kb"] > 0
        assert metrics["max_rss_kb"] >= metrics["rss_kb"] * 0.5

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown sampler backend"):
            ResourceSampler(backend="perf")


class TestIntegration:
    def test_tiny_real_point_is_deterministic_across_executions(self, tmp_path):
        """One genuinely simulated point, twice, in separate journals:
        identical trace sha and domain metrics (the property the whole
        artifact trajectory rests on)."""
        suite = BenchSuite.from_dict(
            {
                "suite": "tiny",
                "runs": [
                    {
                        "name": "tiny_world",
                        "config": {
                            "num_users": 4,
                            "duration_days": 1,
                            "total_posts": 10,
                            "seed": 7,
                        },
                    }
                ],
            }
        )
        artifacts = []
        for leg in ("first", "second"):
            artifacts.append(
                run_suite(
                    suite,
                    tmp_path / leg,
                    out_path=tmp_path / f"BENCH_{leg}.json",
                )
            )
        first, second = (a["runs"][0] for a in artifacts)
        assert first["trace_sha256"] == second["trace_sha256"]
        assert len(first["trace_sha256"]) == 64
        for key in ("unique_messages", "disseminations", "contacts"):
            assert first["metrics"][key] == second["metrics"][key]
        assert first["metrics"]["cpu_s"] > 0
        # The artifact on disk is the validated schema, not just the
        # in-memory dict.
        on_disk = json.loads((tmp_path / "BENCH_first.json").read_text())
        validate_artifact(on_disk)
