"""Tests for the identity-provisioning subsystem (keypair pool, lazy
sign-up, parallel prefetch, and the knobs that thread them through the
experiment harness)."""

import pytest

from repro.alleyoop.cloud import CloudService
from repro.core.config import SosConfig
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.experiments import DensitySweep, GainesvilleStudy, ScenarioConfig
from repro.experiments.density_sweep import _run_sweep_point
from repro.pki.provisioning import (
    PROVISIONING_MODES,
    KeypairPool,
    provision_user,
    signup_drbg_seed,
)

BITS = 512  # fast keygen; fine for pool tests (no OAEP involved)


def _trace_lines(sim):
    return [
        f"{event.time!r}|{event.category}|{event.kind}|{sorted(event.data.items())!r}"
        for event in sim.trace
    ]


class TestKeypairPool:
    def test_matches_eager_generation(self):
        """The pool's whole point: its keys equal the eager flow's keys."""
        pool = KeypairPool()
        pooled = pool.get(BITS, seed=2017, index=3)
        direct = generate_keypair(BITS, rng=HmacDrbg.from_int(signup_drbg_seed(2017, 3)))
        assert pooled.public == direct.public
        assert pooled.private == direct.private

    def test_memory_hit_returns_same_object(self):
        pool = KeypairPool()
        first = pool.get(BITS, seed=1, index=0)
        second = pool.get(BITS, seed=1, index=0)
        assert first is second
        assert pool.stats == {"memory_hits": 1, "disk_hits": 0, "generated": 1}

    def test_distinct_indices_distinct_keys(self):
        pool = KeypairPool()
        assert pool.get(BITS, seed=1, index=0).public != pool.get(BITS, seed=1, index=1).public

    def test_disk_round_trip(self, tmp_path):
        warm = KeypairPool(str(tmp_path))
        original = warm.get(BITS, seed=9, index=4)
        cold = KeypairPool(str(tmp_path))  # fresh process, warm disk
        loaded = cold.get(BITS, seed=9, index=4)
        assert cold.stats["disk_hits"] == 1
        assert cold.stats["generated"] == 0
        assert loaded.private == original.private

    def test_corrupt_cache_file_regenerates(self, tmp_path):
        warm = KeypairPool(str(tmp_path))
        original = warm.get(BITS, seed=9, index=0)
        (files,) = list(tmp_path.iterdir())
        files.write_text("garbage\nnot a key\n")
        cold = KeypairPool(str(tmp_path))
        regenerated = cold.get(BITS, seed=9, index=0)
        assert cold.stats["generated"] == 1
        assert regenerated.private == original.private  # deterministic redo

    def test_prefetch_counts_and_idempotence(self, tmp_path):
        pool = KeypairPool(str(tmp_path))
        assert pool.prefetch(BITS, seed=5, indices=range(3)) == 3
        assert pool.prefetch(BITS, seed=5, indices=range(3)) == 0
        later = KeypairPool(str(tmp_path))
        assert later.prefetch(BITS, seed=5, indices=range(3)) == 0  # disk warm
        assert later.stats["disk_hits"] == 3

    def test_parallel_prefetch_matches_serial(self):
        serial = KeypairPool()
        serial.prefetch(BITS, seed=7, indices=range(4), workers=1)
        parallel = KeypairPool()
        parallel.prefetch(BITS, seed=7, indices=range(4), workers=2)
        for index in range(4):
            assert (
                parallel.get(BITS, seed=7, index=index).private
                == serial.get(BITS, seed=7, index=index).private
            )


class TestProvisionUser:
    def _cloud(self):
        return CloudService(rng=HmacDrbg.from_int(11), now=0.0, key_bits=1024)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown provisioning mode"):
            provision_user(self._cloud(), "alice", seed=1, index=0, now=0.0, mode="psychic")

    @pytest.mark.parametrize("mode", PROVISIONING_MODES)
    def test_all_modes_keystore_provisioned(self, mode):
        signup = provision_user(
            self._cloud(), "alice", seed=1, index=0, now=0.0, key_bits=1024, mode=mode
        )
        assert signup.keystore.provisioned

    def test_lazy_defers_until_first_use(self):
        cloud = self._cloud()
        signup = provision_user(
            cloud, "alice", seed=1, index=0, now=0.0, key_bits=1024, mode="lazy"
        )
        assert signup.certificate is None
        assert not signup.keystore.materialized
        assert cloud.stats["certificates_issued"] == 0
        # First private-key access pays keygen + issuance, exactly once.
        key = signup.keystore.private_key
        assert signup.keystore.materialized
        assert cloud.stats["certificates_issued"] == 1
        assert signup.keystore.own_certificate.public_key == key.public_key()
        assert cloud.account_for("alice").certificate_serial == 1

    def test_lazy_materialises_with_cloud_offline(self):
        """The D2D property: after sign-up the cloud goes dark, and the
        deferred issuance (a simulator optimisation) must still complete."""
        cloud = self._cloud()
        signup = provision_user(
            cloud, "alice", seed=1, index=0, now=0.0, key_bits=1024, mode="lazy"
        )
        cloud.online = False
        assert signup.keystore.private_key is not None
        assert signup.keystore.own_certificate.user_id == signup.user_id

    def test_lazy_certificate_byte_identical_to_eager(self):
        """Reserved serials + recorded sign-up time make the lazily-issued
        certificate the same bytes the eager flow would have produced."""
        eager_cloud = CloudService(rng=HmacDrbg.from_int(11), now=0.0, key_bits=1024)
        lazy_cloud = CloudService(rng=HmacDrbg.from_int(11), now=0.0, key_bits=1024)
        eager = provision_user(
            eager_cloud, "alice", seed=4, index=0, now=0.0, key_bits=1024, mode="eager"
        )
        lazy = provision_user(
            lazy_cloud, "alice", seed=4, index=0, now=0.0, key_bits=1024, mode="lazy"
        )
        assert lazy.keystore.own_certificate.encode() == eager.certificate.encode()

    def test_failed_materialisation_raises_every_time(self):
        """Regression: a failing materialiser must raise on *every*
        access, not fail once and then degrade to None credentials."""
        from repro.pki.keystore import KeyStore

        cloud = self._cloud()
        keystore = KeyStore()
        calls = []

        def explode():
            calls.append(1)
            raise RuntimeError("keygen backend down")

        keystore.provision_deferred(explode, root=cloud.root_certificate)
        for _ in range(2):
            with pytest.raises(RuntimeError, match="keygen backend down"):
                keystore.private_key
        assert len(calls) == 2  # retried, not silently dropped
        assert not keystore.materialized

    def test_pooled_uses_the_pool(self, tmp_path):
        pool = KeypairPool(str(tmp_path))
        signup = provision_user(
            self._cloud(),
            "alice",
            seed=2,
            index=0,
            now=0.0,
            key_bits=1024,
            mode="pooled",
            pool=pool,
        )
        assert pool.stats["generated"] == 1
        assert signup.keystore.private_key == pool.get(1024, 2, 0).private


class TestConfigValidation:
    def test_sos_config_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="provisioning"):
            SosConfig(provisioning="telepathy")

    def test_scenario_config_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="provisioning"):
            ScenarioConfig(provisioning="telepathy")

    def test_scenario_config_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="provisioning_workers"):
            ScenarioConfig(provisioning_workers=0)

    def test_density_sweep_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            DensitySweep(workers=0)


class TestStudyIntegration:
    BASE = dict(num_users=4, duration_days=1, total_posts=12, seed=77)

    def test_three_modes_trace_identical(self, tmp_path):
        traces = {}
        materialized = {}
        for mode in PROVISIONING_MODES:
            study = GainesvilleStudy(
                ScenarioConfig(provisioning=mode, key_cache_dir=str(tmp_path), **self.BASE)
            )
            result = study.run()
            traces[mode] = _trace_lines(study.sim)
            materialized[mode] = result.security_stats["keystores_materialized"]
        assert traces["eager"] == traces["pooled"] == traces["lazy"]
        assert any("|message|" in line for line in traces["eager"])
        assert materialized["eager"] == self.BASE["num_users"]
        assert materialized["lazy"] <= self.BASE["num_users"]

    def test_pooled_study_reuses_disk_cache(self, tmp_path):
        config = ScenarioConfig(
            provisioning="pooled", key_cache_dir=str(tmp_path), **self.BASE
        )
        first = GainesvilleStudy(config)
        first.build()
        assert first.keypair_pool.stats["generated"] == self.BASE["num_users"]
        second = GainesvilleStudy(config)
        second.build()
        assert second.keypair_pool.stats["generated"] == 0
        assert second.keypair_pool.stats["disk_hits"] == self.BASE["num_users"]

    def test_parallel_sweep_matches_serial(self, tmp_path):
        base = ScenarioConfig(
            num_users=4, duration_days=1, total_posts=10, seed=31,
            provisioning="pooled", key_cache_dir=str(tmp_path),
        )
        serial = DensitySweep(base_config=base, populations=(4, 5), workers=1)
        parallel = DensitySweep(base_config=base, populations=(4, 5), workers=2)
        assert serial.run() == parallel.run()

    def test_parallel_sweep_with_pooled_workers(self, tmp_path):
        """Regression: a pooled build inside a daemonic sweep worker must
        fall back to in-process prefetch instead of trying to fork
        grandchildren (the `--workers 2 --provisioning pooled` CLI combo)."""
        base = ScenarioConfig(
            num_users=4, duration_days=1, total_posts=8, seed=13,
            provisioning="pooled", provisioning_workers=2,
            key_cache_dir=str(tmp_path),
        )
        sweep = DensitySweep(base_config=base, populations=(4, 5), workers=2)
        points = sweep.run()
        assert [point.num_users for point in points] == [4, 5]

    def test_sweep_point_is_pure(self, tmp_path):
        config = ScenarioConfig(
            num_users=4, duration_days=1, total_posts=10, seed=31,
            provisioning="lazy", key_cache_dir=str(tmp_path),
        )
        assert _run_sweep_point(config) == _run_sweep_point(config)
