"""Tests for the AlleyOop Social application layer."""

import pytest

from repro.alleyoop import CloudService, Feed, Post, sign_up
from repro.alleyoop.cloud import CloudError
from repro.alleyoop.post import PostFormatError
from repro.crypto.drbg import HmacDrbg
from repro.storage.actionlog import ActionKind
from repro.storage.messagestore import StoredMessage
from tests.worldutil import World


@pytest.fixture()
def world(ca, keypair_pool):
    return World(ca, keypair_pool)


class TestPostEncoding:
    def test_roundtrip(self):
        post = Post(text="hello", topic="news", attributes={"lang": "en"})
        decoded = Post.decode(post.encode())
        assert decoded == post

    def test_minimal_post(self):
        assert Post.decode(Post(text="x").encode()).text == "x"

    def test_unicode_text(self):
        post = Post(text="काठमाडौं ☀ emoji")
        assert Post.decode(post.encode()).text == "काठमाडौं ☀ emoji"

    def test_oversized_text_rejected(self):
        with pytest.raises(PostFormatError):
            Post(text="x" * 10_000).encode()

    def test_garbage_payload_rejected(self):
        with pytest.raises(PostFormatError):
            Post.decode(b"\xff\xfe not json")

    def test_wrong_structure_rejected(self):
        with pytest.raises(PostFormatError):
            Post.decode(b'{"v": 2, "text": "x"}')
        with pytest.raises(PostFormatError):
            Post.decode(b'["not", "a", "dict"]')

    def test_misshapen_fields_rejected_as_format_error(self):
        """Well-formed JSON with wrong field shapes must raise the decode
        contract's PostFormatError, never a raw TypeError/ValueError
        (the app's gossip handler catches only PostFormatError)."""
        for body in (
            b'{"v": 1, "text": "x", "attrs": 5}',
            b'{"v": 1, "text": "x", "attrs": "zz"}',
            b'{"v": 1, "text": "x", "attrs": [1, 2]}',
            b'{"v": 1, "text": "x", "topic": 7}',
        ):
            with pytest.raises(PostFormatError):
                Post.decode(body)


class TestFeed:
    def _message(self, number=1, author="u000000001", received=50.0):
        return StoredMessage(
            author_id=author, number=number, created_at=10.0,
            body=Post(text=f"post {number}").encode(),
            signature=b"s", author_cert=b"c", hops=1, received_at=received,
        )

    def test_ingest_and_order(self):
        feed = Feed()
        feed.ingest(self._message(1))
        feed.ingest(self._message(2))
        entries = feed.entries()
        assert [e.number for e in entries] == [2, 1]  # newest first
        assert len(feed) == 2

    def test_duplicates_ignored(self):
        feed = Feed()
        assert feed.ingest(self._message(1)) is not None
        assert feed.ingest(self._message(1)) is None
        assert len(feed) == 1

    def test_undecodable_ignored(self):
        feed = Feed()
        bad = StoredMessage(
            author_id="u000000001", number=1, created_at=0.0,
            body=b"junk", signature=b"s", author_cert=b"c",
        )
        assert feed.ingest(bad) is None

    def test_delay_computed(self):
        feed = Feed()
        entry = feed.ingest(self._message(1, received=70.0))
        assert entry.delay == 60.0

    def test_from_author(self):
        feed = Feed()
        feed.ingest(self._message(2))
        feed.ingest(self._message(1))
        feed.ingest(self._message(1, author="u000000002"))
        assert [e.number for e in feed.from_author("u000000001")] == [1, 2]


class TestCloud:
    def test_account_creation_assigns_10_byte_ids(self):
        cloud = CloudService(rng=HmacDrbg.from_int(50), now=0.0)
        account = cloud.create_account("alice", now=0.0)
        assert len(account.user_id.encode()) == 10

    def test_duplicate_username_rejected(self):
        cloud = CloudService(rng=HmacDrbg.from_int(51), now=0.0)
        cloud.create_account("alice", now=0.0)
        with pytest.raises(CloudError):
            cloud.create_account("alice", now=0.0)

    def test_offline_cloud_refuses_everything(self):
        cloud = CloudService(rng=HmacDrbg.from_int(52), now=0.0)
        cloud.online = False
        with pytest.raises(CloudError):
            cloud.create_account("alice", now=0.0)

    def test_signup_flow_end_to_end(self):
        cloud = CloudService(rng=HmacDrbg.from_int(53), now=0.0)
        result = sign_up(cloud, "alice", rng=HmacDrbg.from_int(54), now=0.0, key_bits=512)
        assert result.keystore.provisioned
        assert result.certificate.user_id == result.user_id
        assert cloud.stats["certificates_issued"] == 1

    def test_sync_uplink_contiguous_prefix(self):
        cloud = CloudService(rng=HmacDrbg.from_int(55), now=0.0)
        account = cloud.create_account("alice", now=0.0)
        from repro.storage.actionlog import Action

        uplink = cloud.sync_uplink(account.user_id)
        batch = [
            Action(seq=1, kind=ActionKind.POST, actor=account.user_id, created_at=0.0),
            Action(seq=3, kind=ActionKind.POST, actor=account.user_id, created_at=1.0),
        ]
        assert uplink(batch) == 1  # the gap stops acceptance
        assert account.last_synced_seq == 1

    def test_user_ids_minted_from_monotonic_counter(self):
        """Ids must come from a counter, not from len(accounts): if an
        account is ever removed, a length-derived id would be re-minted
        and collide with the removed user's history."""
        cloud = CloudService(rng=HmacDrbg.from_int(56), now=0.0)
        first = cloud.create_account("alice", now=0.0)
        removed = cloud.create_account("bob", now=0.0)
        # Simulate a future account-removal feature.
        del cloud._accounts["bob"]
        del cloud._by_user_id[removed.user_id]
        third = cloud.create_account("carol", now=0.0)
        assert third.user_id not in (first.user_id, removed.user_id)
        assert third.user_id == "u000000002"

    def test_user_id_space_exhaustion_is_a_clean_error(self):
        cloud = CloudService(rng=HmacDrbg.from_int(57), now=0.0)
        cloud._next_account_index = CloudService.MAX_ACCOUNTS - 1
        last = cloud.create_account("alice", now=0.0)
        assert last.user_id == "u999999999"
        with pytest.raises(CloudError, match="exhausted"):
            cloud.create_account("bob", now=0.0)

    def test_sync_batch_accepts_whole_batch_in_one_round(self):
        from repro.storage.actionlog import Action

        cloud = CloudService(rng=HmacDrbg.from_int(58), now=0.0)
        account = cloud.create_account("alice", now=0.0)
        batch = [
            Action(seq=i, kind=ActionKind.FOLLOW, actor=account.user_id, created_at=0.0)
            for i in range(1, 51)
        ]
        assert cloud.sync_batch(account.user_id, batch) == 50
        assert account.last_synced_seq == 50
        assert [a.seq for a in account.synced_actions] == list(range(1, 51))
        assert cloud.stats["syncs"] == 1
        assert cloud.stats["actions_accepted"] == 50

    def test_sync_batch_stops_at_gap(self):
        from repro.storage.actionlog import Action

        cloud = CloudService(rng=HmacDrbg.from_int(59), now=0.0)
        account = cloud.create_account("alice", now=0.0)
        batch = [
            Action(seq=s, kind=ActionKind.FOLLOW, actor=account.user_id, created_at=0.0)
            for s in (1, 2, 4, 5)
        ]
        assert cloud.sync_batch(account.user_id, batch) == 2
        assert account.last_synced_seq == 2

    def test_sync_batch_unknown_user(self):
        cloud = CloudService(rng=HmacDrbg.from_int(60), now=0.0)
        with pytest.raises(CloudError):
            cloud.sync_batch("u000000099", [])


class TestAppBehaviour:
    def test_post_logs_action_and_stores(self, world):
        alice = world.add_user("alice")
        world.start()
        alice.post("hello world")
        assert alice.own_post_count() == 1
        assert alice.actions.of_kind(ActionKind.POST)
        assert alice.sos.store.has(alice.user_id, 1)

    def test_follow_updates_interests_and_log(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        assert alice.user_id in bob.sos.interests
        assert bob.actions.of_kind(ActionKind.FOLLOW)

    def test_unfollow_reverses(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        bob.unfollow(alice.user_id)
        assert alice.user_id not in bob.sos.interests
        assert bob.actions.of_kind(ActionKind.UNFOLLOW)

    def test_self_follow_rejected(self, world):
        alice = world.add_user("alice")
        with pytest.raises(ValueError):
            alice.follow(alice.user_id)

    def test_follow_idempotent(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        bob.follow(alice.user_id)
        assert len(bob.actions.of_kind(ActionKind.FOLLOW)) == 1

    def test_cloud_sync_when_online(self, world):
        alice = world.add_user("alice")
        world.start()
        alice.post("synced")
        account = world.cloud.account_for("alice")
        assert account.last_synced_seq >= 1

    def test_cloud_sync_deferred_when_offline(self, world):
        alice = world.add_user("alice")
        world.start()
        world.cloud.online = False
        alice.post("pending")
        assert alice.sync_queue.pending_count >= 1
        world.cloud.online = True
        assert alice.try_cloud_sync() >= 1
        assert alice.sync_queue.pending_count == 0

    def test_offline_cloud_does_not_block_d2d(self, world):
        """The one-time infrastructure property (§IV): after sign-up, all
        dissemination works with the cloud dark."""
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        world.cloud.online = False
        world.start()
        alice.post("no internet needed")
        world.run(120.0)
        assert [e.post.text for e in bob.timeline()] == ["no internet needed"]

    def test_feed_trace_event_emitted(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        world.start()
        alice.post("traced")
        world.run(120.0)
        events = world.sim.trace.select(category="app", kind="feed")
        assert events and events[0].data["owner"] == bob.user_id


class TestBulkFollow:
    """AlleyOopApp.follow_many — the day-0 bootstrap wiring path."""

    def test_equivalent_to_per_edge_follows(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        carol = world.add_user("carol")
        dave = world.add_user("dave")
        targets = [alice.user_id, bob.user_id, carol.user_id]
        assert dave.follow_many(targets) == 3
        assert dave.follows == set(targets)
        assert dave.sos.interests == frozenset(targets)
        batched = dave.actions.of_kind(ActionKind.FOLLOW_MANY)
        assert len(batched) == 1  # one compact record for the whole batch
        assert batched[0].payload["targets"] == tuple(targets)  # input order
        events = world.sim.trace.select(category="social", kind="follow_many")
        assert [e.data["followees"] for e in events] == [tuple(targets)]

    def test_single_cloud_round(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        dave = world.add_user("dave")
        rounds_before = world.cloud.stats["syncs"]
        dave.follow_many([alice.user_id, bob.user_id])
        assert world.cloud.stats["syncs"] == rounds_before + 1
        account = world.cloud.account_for("dave")
        assert account.last_synced_seq == 1  # one compact record synced
        assert account.synced_actions[-1].payload["targets"] == (
            alice.user_id, bob.user_id,
        )

    def test_skips_already_followed_and_duplicates(self, world):
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        dave = world.add_user("dave")
        dave.follow(alice.user_id)
        assert dave.follow_many([alice.user_id, bob.user_id, bob.user_id]) == 1
        assert len(dave.actions.of_kind(ActionKind.FOLLOW)) == 1
        batched = dave.actions.of_kind(ActionKind.FOLLOW_MANY)
        assert [a.payload["targets"] for a in batched] == [(bob.user_id,)]

    def test_self_follow_rejected(self, world):
        dave = world.add_user("dave")
        with pytest.raises(ValueError):
            dave.follow_many([dave.user_id])

    def test_empty_input_is_a_noop(self, world):
        dave = world.add_user("dave")
        synced = world.cloud.stats["syncs"]
        assert dave.follow_many([]) == 0
        assert world.cloud.stats["syncs"] == synced

    def test_gossip_suppressed_even_when_enabled(self, world):
        """Bootstrap semantics: bulk wiring never creates sys:subscription
        messages, even for a gossip-enabled app (the day-0 graph predates
        any encounter, so there is no one to tell)."""
        from repro.core.config import SosConfig

        config = SosConfig(routing_protocol="epidemic", relay_request_grace=0.0,
                           gossip_follows=True)
        alice = world.add_user("alice", config=config)
        dave = world.add_user("dave", config=config)
        dave.follow_many([alice.user_id])
        assert dave.own_post_count() == 0  # no system message created
