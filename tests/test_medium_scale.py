"""Regression tests for the batched contact-detection engine and the
link-lifecycle bugfix sweep that rode along with it:

* ``Medium.remove_device`` fires link-down callbacks (it used to pop the
  device first and silently skip them),
* hysteresis survival is keyed to the radio the link was *raised* on,
* ``SpatialHashIndex`` deletes emptied cells (unbounded-memory fix) and
  serves the new ``update_many`` / ``pairs_within`` batch APIs,
* ``Simulator`` compacts cancelled events out of the heap,
* BubbleRap's encounter window is a deque (O(1) expiry),
* batched and per-device engines produce byte-identical traces.
"""

import random

import pytest

from repro.core.routing import BubbleRapRouting
from repro.geo.point import Point
from repro.geo.region import Region
from repro.geo.spatial_index import SpatialHashIndex
from repro.mobility.base import MobilityModel, StationaryModel
from repro.mobility.levy import LevyWalk
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.trace_model import TraceReplayModel, WaypointTrace
from repro.net.device import Device
from repro.net.medium import Medium
from repro.net.radio import BLUETOOTH, DEFAULT_RADIO_SET, P2P_WIFI
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from tests.test_routing_protocols import ALICE, BOB, CAROL, FakeServices


class _Script(MobilityModel):
    """Position follows a scripted piecewise table."""

    def __init__(self, waypoints):
        self._waypoints = sorted(waypoints)

    def position_at(self, now):
        position = self._waypoints[0][1]
        for t, p in self._waypoints:
            if t <= now:
                position = p
        return position


def make_world(tick=10.0, batched=True):
    sim = Simulator(seed=1)
    medium = Medium(sim, tick_interval=tick, batched=batched)
    return sim, medium


class TestRemoveDeviceCallbacks:
    @pytest.mark.parametrize("batched", [True, False])
    def test_remove_device_fires_link_down_callbacks(self, batched):
        """Seed bug: the device was popped from ``devices`` before
        ``_drop_link``, so down-callbacks could not resolve both Device
        objects and were silently skipped — AdHocManager and routing
        leaked peer state for departed devices."""
        sim, medium = make_world(batched=batched)
        a = Device("a", StationaryModel(Point(0, 0)))
        b = Device("b", StationaryModel(Point(30, 0)))
        medium.add_device(a)
        medium.add_device(b)
        downs = []
        medium.on_link_down(lambda x, y, r: downs.append((x.device_id, y.device_id, r)))
        medium.start()
        sim.run(until=20.0)
        assert medium.link_between("a", "b") is P2P_WIFI
        medium.remove_device("b")
        assert downs == [("a", "b", P2P_WIFI)]
        assert medium.active_links == 0
        # The contact interval was closed, too.
        assert medium.contacts.active_count == 0
        assert medium.contacts.total_contacts() == 1

    @pytest.mark.parametrize("batched", [True, False])
    def test_remove_unknown_device_is_noop(self, batched):
        _, medium = make_world(batched=batched)
        medium.remove_device("ghost")  # must not raise

    def test_removed_device_pairs_forgotten_by_scheduler(self):
        sim, medium = make_world(batched=True)
        # Stationary Bluetooth pair just outside range but inside the
        # hysteresis sweep: parked forever by the scheduler.
        medium.add_device(Device("a", StationaryModel(Point(0, 0)), radios=(BLUETOOTH,)))
        medium.add_device(Device("b", StationaryModel(Point(10.5, 0)), radios=(BLUETOOTH,)))
        medium.start()
        sim.run(until=30.0)
        assert medium._next_check  # pair parked by the scheduler
        assert medium.pair_checks_skipped > 0
        medium.remove_device("b")
        assert not any("b" in key for key in medium._next_check)


class TestHysteresisRadioKeying:
    @pytest.mark.parametrize("batched", [True, False])
    def test_survival_uses_raised_radio_not_current_best(self, batched):
        """Seed bug: the survival check used the freshly recomputed best
        common radio; if that resolution changed mid-contact the drop
        threshold silently switched.  The link must ride the hysteresis
        margin of the radio it was raised on."""
        sim, medium = make_world(batched=batched)
        a = Device("a", StationaryModel(Point(0, 0)))
        b = Device(
            "b",
            _Script(
                [(0.0, Point(50, 0)), (25.0, Point(64, 0)), (90.0, Point(70, 0))]
            ),
        )
        medium.add_device(a)
        medium.add_device(b)
        downs = []
        medium.on_link_down(lambda x, y, r: downs.append((x.device_id, y.device_id)))
        medium.start()
        sim.run(until=15.0)
        assert medium.link_between("a", "b") is P2P_WIFI  # raised at 50 m
        # Mid-contact, b's WiFi goes away (user toggles it off): the best
        # common technology now resolves to Bluetooth (10 m).  At 64 m the
        # seed code would compare against 10 * 1.1 and drop the link.
        b.radios = (BLUETOOTH,)
        sim.run(until=60.0)
        assert medium.link_between("a", "b") is P2P_WIFI
        assert downs == []
        # Beyond the raised radio's own margin (66 m) the link does drop.
        sim.run(until=150.0)
        assert medium.link_between("a", "b") is None
        assert downs == [("a", "b")]

    @pytest.mark.parametrize("batched", [True, False])
    def test_asymmetric_radio_sets_link_on_common_radio(self, batched):
        sim, medium = make_world(batched=batched)
        medium.add_device(Device("a", StationaryModel(Point(0, 0)), radios=(BLUETOOTH,)))
        medium.add_device(
            Device("b", StationaryModel(Point(8, 0)), radios=DEFAULT_RADIO_SET)
        )
        medium.start()
        sim.run(until=20.0)
        assert medium.link_between("a", "b") is BLUETOOTH


class TestSpatialIndexCellLeak:
    def test_cells_deleted_when_emptied_single_roamer(self):
        index = SpatialHashIndex(cell_size=10.0)
        for step in range(500):
            index.update("walker", Point(step * 10.0, 0.0))
            assert index.occupied_cells == 1
        index.remove("walker")
        assert index.occupied_cells == 0
        assert len(index) == 0

    def test_cell_count_bounded_under_moving_population(self):
        """Seed bug: update/remove left empty ``set()`` entries in the
        defaultdict forever, a true leak over 7-day runs at scale."""
        index = SpatialHashIndex(cell_size=25.0)
        rng = random.Random(7)
        population = 40
        for step in range(200):
            for i in range(population):
                index.update(i, Point(rng.uniform(0, 5000), rng.uniform(0, 5000)))
            assert index.occupied_cells <= population
        for i in range(population):
            index.remove(i)
        assert index.occupied_cells == 0

    def test_update_many_matches_update(self):
        loop_index = SpatialHashIndex(cell_size=50.0)
        bulk_index = SpatialHashIndex(cell_size=50.0)
        rng = random.Random(13)
        for step in range(30):
            moves = [
                (i, Point(rng.uniform(-400, 400), rng.uniform(-400, 400)))
                for i in range(25)
            ]
            for item, p in moves:
                loop_index.update(item, p)
            bulk_index.update_many(moves)
            assert loop_index.occupied_cells == bulk_index.occupied_cells
            assert sorted(loop_index.within(Point(0, 0), 300.0)) == sorted(
                bulk_index.within(Point(0, 0), 300.0)
            )

    def test_pairs_within_matches_per_item_queries(self):
        index = SpatialHashIndex(cell_size=60.0)
        rng = random.Random(3)
        for i in range(120):
            index.update(i, Point(rng.uniform(0, 800), rng.uniform(0, 800)))
        radius = 75.0
        swept = {(min(a, b), max(a, b)) for a, b, _ in index.pairs_within(radius)}
        expected = set()
        for item, position in list(index.items()):
            for other in index.within(position, radius, exclude=item):
                expected.add((min(item, other), max(item, other)))
        assert swept == expected

    def test_pairs_within_per_item_reach(self):
        index = SpatialHashIndex(cell_size=60.0)
        index.update("near", Point(0, 0))
        index.update("far", Point(40, 0))
        index.update("close", Point(5, 0))
        reach = {"near": 10.0, "far": 100.0, "close": 10.0}
        pairs = {(min(a, b), max(a, b)) for a, b, _ in index.pairs_within(100.0, reach_of=reach)}
        # near-far capped by near's 10 m reach; near-close within both.
        assert pairs == {("close", "near")}


class TestSimulatorHeapCompaction:
    def test_cancelled_timer_churn_keeps_heap_bounded(self):
        """Seed behaviour: lazily-cancelled events stayed in the heap
        until their (possibly far-future) due time — timer-heavy runs
        grew the queue without bound."""
        sim = Simulator(seed=0)
        timer = Timer(sim, lambda: None, name="connection-timeout")
        peak = [0]

        def churn(i):
            timer.start(1e9)  # re-arming cancels the previous event
            peak[0] = max(peak[0], len(sim._heap))
            if i < 5000:
                sim.schedule_in(0.01, churn, i + 1)

        sim.schedule_in(0.0, churn, 0)
        sim.run_until_empty()
        # 5000 cancelled far-future timeouts would have sat in the seed's
        # heap; compaction keeps the peak bounded by the trigger level.
        assert peak[0] <= Simulator.COMPACT_MIN_CANCELLED * 2 + 8

    def test_compaction_preserves_execution_order(self):
        sim = Simulator(seed=0)
        sim.COMPACT_MIN_CANCELLED = 8  # force aggressive compaction
        fired = []
        keepers = [
            sim.schedule_at(100.0 + i, fired.append, i, name=f"keep-{i}")
            for i in range(20)
        ]
        doomed = [sim.schedule_at(50.0, fired.append, -1) for _ in range(64)]
        for event in doomed:
            event.cancel()
        sim.run_until_empty()
        assert fired == list(range(20))
        assert all(not k.cancelled for k in keepers)

    def test_cancel_remains_idempotent_with_counter(self):
        sim = Simulator(seed=0)
        event = sim.schedule_in(10.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim._cancelled_in_heap == 1


class TestBubbleEncounterWindow:
    def test_encounter_window_is_deque_and_expires_left(self):
        router = BubbleRapRouting()
        services = FakeServices(user_id=BOB)
        router.attach(services)
        from collections import deque

        assert isinstance(router._encounters, deque)
        services._now = 0.0
        router.on_peer_secured(ALICE)
        services._now = router.WINDOW / 2
        router.on_peer_secured(CAROL)
        assert router.centrality() == 2
        # ALICE's encounter ages out of the window; CAROL's survives.
        services._now = router.WINDOW + 60.0
        router.on_peer_secured("dave")
        assert router.centrality() == 2  # carol + dave
        assert all(t >= services._now - router.WINDOW for t, _ in router._encounters)

    def test_many_encounters_window_stays_small(self):
        router = BubbleRapRouting()
        services = FakeServices(user_id=BOB)
        router.attach(services)
        for i in range(5000):
            services._now = float(i)
            router._note_encounter(f"peer-{i % 7}")
        assert len(router._encounters) <= router.WINDOW + 1


class TestMobilityBatchApi:
    def test_base_class_fallback_loops_position_at(self):
        region = Region(0, 0, 1000, 1000)
        models = [RandomWaypoint(region, random.Random(i)) for i in range(5)]
        control = [RandomWaypoint(region, random.Random(i)) for i in range(5)]
        batch = RandomWaypoint.positions_at(models, 120.0)
        loop = [m.position_at(120.0) for m in control]
        assert batch == loop

    def test_stationary_batch_short_circuits(self):
        models = [StationaryModel(Point(i, i)) for i in range(4)]
        assert StationaryModel.positions_at(models, 99.0) == [
            Point(i, i) for i in range(4)
        ]

    def test_speed_bounds(self):
        region = Region(0, 0, 100, 100)
        assert StationaryModel(Point(0, 0)).max_speed_m_s() == 0.0
        rwp = RandomWaypoint(region, random.Random(1), speed_range=(0.5, 3.5))
        assert rwp.max_speed_m_s() == 3.5
        levy = LevyWalk(region, random.Random(1), speed_range=(0.8, 2.5))
        assert levy.max_speed_m_s() == 2.5

        trace = WaypointTrace("n")
        trace.add(0.0, Point(0, 0))
        trace.add(10.0, Point(30, 40))  # 5 m/s segment
        assert TraceReplayModel(trace).max_speed_m_s() == pytest.approx(5.0)

        jumpy = WaypointTrace("j")
        jumpy.add(0.0, Point(0, 0))
        jumpy.add(0.0, Point(500, 0))  # teleport: bound unknowable
        assert TraceReplayModel(jumpy).max_speed_m_s() is None

    def test_unknown_speed_bound_never_skips_checks(self):
        class Drifter(MobilityModel):
            def position_at(self, now):
                return Point(200.0 - now, 0.0)  # unbounded claim: returns None

        sim = Simulator(seed=1)
        medium = Medium(sim, tick_interval=10.0, batched=True)
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", Drifter()))
        medium.start()
        sim.run(until=250.0)
        assert medium.pair_checks_skipped == 0
        assert medium.link_between("a", "b") is P2P_WIFI  # caught on approach


class TestEngineEquivalence:
    def test_batched_and_per_device_traces_identical(self):
        def run(batched):
            sim = Simulator(seed=11)
            medium = Medium(sim, tick_interval=30.0, batched=batched)
            region = Region(0, 0, 1500, 1500)
            for i in range(60):
                rng = random.Random(1000 + i)
                mobility = (
                    StationaryModel(region.random_point(rng))
                    if i % 5 == 0
                    else RandomWaypoint(region, rng)
                )
                radios = (DEFAULT_RADIO_SET, (BLUETOOTH,))[i % 2]
                medium.add_device(Device(f"d{i:03d}", mobility, radios=radios))
            medium.start()
            sim.schedule_at(95.0, medium.devices["d001"].power_off)
            sim.schedule_at(215.0, medium.devices["d001"].power_on)
            sim.schedule_at(155.0, medium.remove_device, "d007")
            sim.run(until=600.0)
            medium.stop()
            return [
                (e.time, e.category, e.kind, tuple(sorted(e.data.items())))
                for e in sim.trace
            ]

        batched = run(True)
        reference = run(False)
        assert batched == reference
        assert any(event[1] == "contact" for event in batched)

    def test_medium_tick_instrumentation_counts(self):
        sim, medium = make_world(batched=True)
        medium.add_device(Device("a", StationaryModel(Point(0, 0))))
        medium.add_device(Device("b", StationaryModel(Point(30, 0))))
        medium.start()
        sim.run(until=35.0)
        assert medium.tick_count == 4  # t=0 plus ticks at 10/20/30 s
        assert medium.pairs_examined >= 1
        assert medium.distance_checks >= medium.pairs_examined

    def test_batched_engine_compresses_distance_checks(self):
        def run(batched):
            sim = Simulator(seed=3)
            medium = Medium(sim, tick_interval=30.0, batched=batched)
            region = Region(0, 0, 1200, 1200)
            for i in range(80):
                rng = random.Random(500 + i)
                medium.add_device(
                    Device(f"d{i:03d}", RandomWaypoint(region, rng))
                )
            medium.start()
            sim.run(until=300.0)
            return medium

        batched = run(True)
        reference = run(False)
        # The sweep visits each candidate pair once; the per-device path
        # visits every pair from both ends.
        assert batched.distance_checks < reference.distance_checks
