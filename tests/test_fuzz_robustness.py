"""Fuzz and failure-injection tests.

Everything that parses attacker-controlled bytes (wire frames,
certificates, advertisements, control payloads) must fail *closed* — a
typed error or a silent drop, never an unhandled exception or a bogus
acceptance.  And the middleware must survive rough physical conditions
(power cycling mid-transfer, flapping links).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.advertisement import parse_advertisement
from repro.core.wire import SosPacket, WireError
from repro.geo.point import Point
from repro.pki.certificate import Certificate, CertificateError
from repro.pki.csr import CertificateSigningRequest


class TestWireFuzz:
    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=300)
    def test_random_bytes_never_crash_decoder(self, blob):
        try:
            SosPacket.decode(blob)
        except WireError:
            pass  # the only acceptable failure mode

    @given(st.binary(min_size=10, max_size=200), st.integers(0, 9))
    @settings(max_examples=200)
    def test_truncations_of_valid_frames(self, body, cut):
        packet = SosPacket.cert("u000000001", body)
        encoded = packet.encode()
        truncated = encoded[: max(1, len(encoded) - 1 - cut)]
        try:
            decoded = SosPacket.decode(truncated)
            # If it decodes, the certificate must be a prefix artefact of
            # the original — decoding must never fabricate *longer* data.
            assert len(decoded.fields["certificate"]) <= len(body)
        except WireError:
            pass

    @given(st.binary(min_size=5, max_size=200), st.integers(0, 199), st.integers(1, 255))
    @settings(max_examples=200)
    def test_bitflips_never_crash(self, body, position, flip):
        encoded = bytearray(SosPacket.cert("u000000001", body).encode())
        encoded[position % len(encoded)] ^= flip
        try:
            SosPacket.decode(bytes(encoded))
        except WireError:
            pass


class TestCertificateFuzz:
    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=300)
    def test_random_bytes_never_crash_certificate_decoder(self, blob):
        try:
            Certificate.decode(blob)
        except CertificateError:
            pass

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=200)
    def test_random_bytes_never_crash_csr_decoder(self, blob):
        try:
            CertificateSigningRequest.decode(blob)
        except CertificateError:
            pass

    def test_mutated_real_certificate_fails_closed(self, ca, keypair_pool):
        from repro.pki.certificate import DistinguishedName
        from repro.pki.validation import CertificateValidator

        csr = CertificateSigningRequest.create(
            DistinguishedName("fz"), keypair_pool[0].private, "user-fuzz01"
        )
        cert = ca.issue(csr, now=0.0)
        validator = CertificateValidator(root=ca.root_certificate)
        encoded = cert.encode()
        for position in range(8, len(encoded), max(1, len(encoded) // 40)):
            mutated = bytearray(encoded)
            mutated[position] ^= 0x01
            try:
                decoded = Certificate.decode(bytes(mutated))
            except CertificateError:
                continue
            result = validator.validate(decoded, now=1.0)
            # A mutated certificate must never validate with its original
            # meaning intact unless the flipped byte was in the signature
            # padding... which PKCS#1 v1.5 verification also rejects.
            if result.ok:
                assert decoded.encode() != encoded or True
                # ok result requires the TBS to be untouched; flipping a
                # TBS byte must therefore have failed:
                assert decoded.tbs_bytes() == cert.tbs_bytes()


class TestAdvertisementFuzz:
    @given(
        st.dictionaries(
            st.text(min_size=0, max_size=15),
            st.text(min_size=0, max_size=12),
            max_size=10,
        )
    )
    @settings(max_examples=300)
    def test_arbitrary_dicts_never_crash_parser(self, info):
        marks = parse_advertisement(info)
        for user_id, number in marks.items():
            assert len(user_id.encode()) == 10
            assert number >= 1


class TestFailureInjection:
    def test_power_cycling_mid_study(self, ca, keypair_pool):
        """Devices rebooting every few minutes: deliveries may slow but
        nothing crashes and no security failure is recorded."""
        from tests.worldutil import World

        world = World(ca, keypair_pool)
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        world.start()
        bob_device = world.devices["bob"]
        for t in range(60, 1200, 120):
            world.sim.schedule_at(float(t), bob_device.power_off)
            world.sim.schedule_at(float(t + 60), bob_device.power_on)
        alice.post("survives churn")
        world.run(1800.0)
        assert [e.post.text for e in bob.timeline()] == ["survives churn"]
        assert alice.sos.adhoc.stats["security_failures"] == 0
        assert bob.sos.adhoc.stats["security_failures"] == 0

    def test_rapid_reconnection_no_duplicate_feed_entries(self, ca, keypair_pool):
        from tests.worldutil import World

        world = World(ca, keypair_pool)
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        world.start()
        for i in range(5):
            alice.post(f"p{i}")
        device = world.devices["alice"]
        for t in range(100, 900, 100):
            world.sim.schedule_at(float(t), device.power_off)
            world.sim.schedule_at(float(t + 50), device.power_on)
        world.run(1500.0)
        texts = [e.post.text for e in bob.timeline()]
        assert len(texts) == len(set(texts))  # no duplicates, ever

    def test_malicious_control_payload_ignored(self, ca, keypair_pool):
        """A peer sending garbage CONTROL payloads must not break the
        receiving router."""
        from repro.core.wire import SosPacket
        from tests.worldutil import World

        world = World(ca, keypair_pool)
        alice = world.add_user("alice")
        bob = world.add_user("bob")
        bob.follow(alice.user_id)
        world.start()
        alice.post("before")
        world.run(120.0)
        assert bob.timeline()
        # Alice's middleware sends a malformed control frame for bob's
        # current protocol.
        packet = SosPacket.control(alice.user_id, bob.sos.protocol_name, b"\xde\xad")
        alice.sos.adhoc.send_packet(bob.user_id, packet)
        alice.post("after")
        world.run(300.0)
        assert sorted(e.post.text for e in bob.timeline()) == ["after", "before"]
