"""Tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator, SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(5.0, lambda: order.append("b"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda: order.append("late"), priority=5)
        sim.schedule_at(1.0, lambda: order.append("first"), priority=0)
        sim.schedule_at(1.0, lambda: order.append("second"), priority=0)
        sim.run()
        assert order == ["first", "second", "late"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_schedule_in_is_relative(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(10.0, lambda: sim.schedule_in(5.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15.0]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_args_are_passed(self):
        sim = Simulator()
        got = []
        sim.schedule_at(1.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        ran = []
        event = sim.schedule_at(1.0, lambda: ran.append(1))
        event.cancel()
        sim.run()
        assert ran == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        event = sim.schedule_at(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 1


class TestRunBounds:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        ran = []
        sim.schedule_at(1.0, lambda: ran.append(1))
        sim.schedule_at(100.0, lambda: ran.append(2))
        sim.run(until=50.0)
        assert ran == [1]
        assert sim.now == 50.0

    def test_until_advances_clock_even_when_queue_drains(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_event_exactly_at_until_runs(self):
        sim = Simulator()
        ran = []
        sim.schedule_at(50.0, lambda: ran.append(1))
        sim.run(until=50.0)
        assert ran == [1]

    def test_max_events_bound(self):
        sim = Simulator()
        ran = []
        for i in range(10):
            sim.schedule_at(float(i), lambda i=i: ran.append(i))
        sim.run(max_events=3)
        assert ran == [0, 1, 2]

    def test_stop_halts_run(self):
        sim = Simulator()
        ran = []
        sim.schedule_at(1.0, lambda: (ran.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: ran.append(2))
        sim.run()
        assert ran == [(1, None)] or ran == [1]  # tuple from lambda, then stop
        assert sim.pending_events == 1

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule_at(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        ran = []
        sim.schedule_at(1.0, lambda: sim.schedule_in(1.0, lambda: ran.append("child")))
        sim.run()
        assert ran == ["child"]
        assert sim.now == 2.0


class TestStepHooks:
    def test_hook_called_after_each_event(self):
        sim = Simulator()
        times = []
        sim.add_step_hook(times.append)
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert times == [1.0, 2.0]


class TestDeterminism:
    def test_same_seed_same_stream_draws(self):
        a = Simulator(seed=99).streams.get("x")
        b = Simulator(seed=99).streams.get("x")
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_streams_are_independent(self):
        sim = Simulator(seed=99)
        a = [sim.streams.get("a").random() for _ in range(5)]
        b = [sim.streams.get("b").random() for _ in range(5)]
        assert a != b
