"""Tests for the CLI and the density sweep."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import DensitySweep, ScenarioConfig


class TestCli:
    def test_protocols_command(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "interest" in out and "epidemic" in out and "bubble" in out

    def test_study_command_small(self, capsys):
        assert main(["study", "--days", "1", "--posts", "10", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "density_directed" in out
        assert "one_hop_fraction" in out

    def test_study_with_map_and_cdf(self, capsys):
        assert main([
            "study", "--days", "1", "--posts", "10", "--seed", "3",
            "--map", "--cdf",
        ]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4b overlay" in out
        assert "delay CDF" in out

    def test_compare_command_subset(self, capsys):
        assert main([
            "compare", "--days", "1", "--posts", "10", "--seed", "3",
            "--only", "interest,direct",
        ]) == 0
        out = capsys.readouterr().out
        assert "interest" in out and "direct" in out

    def test_density_command(self, capsys):
        assert main([
            "density", "--days", "1", "--posts", "10", "--seed", "3",
            "--populations", "6,10",
        ]) == 0
        out = capsys.readouterr().out
        assert "users/km^2" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_graph_stats_command(self, capsys):
        assert main([
            "graph-stats", "--users", "200", "--social-graph", "powerlaw_cluster",
            "--seed", "9",
        ]) == 0
        out = capsys.readouterr().out
        assert "powerlaw_cluster" in out
        assert "directed edges" in out
        assert "histogram" in out

    def test_graph_stats_default_is_figure4a(self, capsys):
        assert main(["graph-stats"]) == 0
        out = capsys.readouterr().out
        assert "figure4a" in out
        assert "| 58" in out  # the Fig. 4a edge count

    def test_social_graph_flag_threads_into_config(self, capsys):
        assert main([
            "study", "--days", "1", "--posts", "5", "--seed", "3",
            "--users", "12", "--social-graph", "degree_bounded",
        ]) == 0
        assert "density_directed" in capsys.readouterr().out

    def test_per_edge_bootstrap_flag(self, capsys):
        assert main([
            "study", "--days", "1", "--posts", "5", "--seed", "3",
            "--per-edge-bootstrap",
        ]) == 0
        assert "density_directed" in capsys.readouterr().out

    def test_unknown_protocol_surfaces(self):
        with pytest.raises(KeyError):
            main(["study", "--days", "1", "--posts", "5", "--protocol", "warp"])


class TestDensitySweep:
    def test_sweep_runs_and_reports(self):
        sweep = DensitySweep(
            base_config=ScenarioConfig(seed=5, duration_days=1, total_posts=12),
            populations=(6, 10),
        )
        points = sweep.run()
        assert [p.num_users for p in points] == [6, 10]
        assert all(p.area_km2 == 88.0 for p in points)
        assert points[0].density_per_km2 < points[1].density_per_km2
        report = sweep.report()
        assert "users/km^2" in report

    def test_contacts_scale_with_density(self):
        """More users in the same area -> more contact opportunities (the
        paper's hypothesis behind the 'higher densities' call)."""
        sweep = DensitySweep(
            base_config=ScenarioConfig(seed=6, duration_days=1, total_posts=10),
            populations=(6, 14),
        )
        points = sweep.run()
        assert points[1].contacts >= points[0].contacts

    def test_meetup_scaling_can_be_disabled(self):
        sweep = DensitySweep(
            base_config=ScenarioConfig(seed=7, duration_days=1, total_posts=5),
            populations=(6,),
            scale_meetups_with_population=False,
        )
        config = sweep._config_for(6)
        assert config.meetups_per_day == sweep.base_config.meetups_per_day

    def test_social_graph_and_bootstrap_overrides(self):
        sweep = DensitySweep(
            base_config=ScenarioConfig(seed=8, duration_days=1, total_posts=5),
            populations=(12,),
            social_graph="degree_bounded",
            bulk_bootstrap=False,
        )
        config = sweep._config_for(12)
        assert config.social_graph == "degree_bounded"
        assert config.bulk_bootstrap is False
        # None leaves base_config untouched.
        vanilla = DensitySweep(
            base_config=ScenarioConfig(seed=8, duration_days=1, total_posts=5),
            populations=(12,),
        )
        assert vanilla._config_for(12).social_graph == "auto"
        assert vanilla._config_for(12).bulk_bootstrap is True
