"""Unit tests of the routing protocols against a fake RouterServices.

These exercise protocol *decisions* in isolation; the end-to-end behaviour
over real radios is covered by the middleware integration tests.
"""

from typing import Callable, Dict, FrozenSet, List

import pytest

from repro.core.routing import (
    DirectDeliveryRouting,
    EpidemicRouting,
    FirstContactRouting,
    InterestBasedRouting,
    ProphetRouting,
    RoutingRegistry,
    SprayAndWaitRouting,
)
from repro.core.routing.base import RouterServices
from repro.storage.messagestore import MessageStore, StoredMessage

ALICE = "u00000000a"
BOB = "u00000000b"
CAROL = "u00000000c"


def msg(author, number, hops=0):
    return StoredMessage(
        author_id=author, number=number, created_at=0.0,
        body=b"x", signature=b"s", author_cert=b"c", hops=hops,
    )


class FakeServices(RouterServices):
    """Records every call a protocol makes."""

    def __init__(self, user_id=BOB, subscriptions=(), grace=0.0):
        self._user_id = user_id
        self._store = MessageStore()
        self._subscriptions = frozenset(subscriptions)
        self._grace = grace
        self._now = 0.0
        self.connects: List[str] = []
        self.requests: List[tuple] = []
        self.sent: List[tuple] = []
        self.controls: List[tuple] = []
        self.deferred: List[tuple] = []
        self.secured: List[str] = []

    @property
    def user_id(self):
        return self._user_id

    @property
    def store(self):
        return self._store

    @property
    def subscriptions(self) -> FrozenSet[str]:
        return self._subscriptions

    def now(self):
        return self._now

    def connect(self, peer_user):
        self.connects.append(peer_user)
        return True

    def request_messages(self, peer_user, author_id, numbers):
        self.requests.append((peer_user, author_id, list(numbers)))

    def send_message(self, peer_user, message, on_complete=None):
        self.sent.append((peer_user, message))

    def send_control(self, peer_user, payload):
        self.controls.append((peer_user, payload))

    def secured_peers(self):
        return list(self.secured)

    def defer(self, delay: float, callback: Callable[[], None]):
        self.deferred.append((delay, callback))

    @property
    def relay_request_grace(self):
        return self._grace

    def run_deferred(self):
        pending, self.deferred = self.deferred, []
        for _, callback in pending:
            callback()


def attach(protocol, **kwargs):
    services = FakeServices(**kwargs)
    protocol.attach(services)
    return services


class TestEpidemic:
    def test_connects_on_fresh_advert(self):
        router = EpidemicRouting()
        services = attach(router)
        router.on_peer_discovered(ALICE, {ALICE: 3})
        assert services.connects == [ALICE]

    def test_no_connect_when_up_to_date(self):
        router = EpidemicRouting()
        services = attach(router)
        services.store.add(msg(ALICE, 1))
        services.store.add(msg(ALICE, 2))
        services.store.add(msg(ALICE, 3))
        router.on_peer_discovered(ALICE, {ALICE: 3})
        assert services.connects == []

    def test_requests_missing_on_secured(self):
        router = EpidemicRouting()
        services = attach(router)
        services.store.add(msg(ALICE, 2))
        router.on_peer_discovered(ALICE, {ALICE: 3})
        router.on_peer_secured(ALICE)
        assert services.requests == [(ALICE, ALICE, [1, 3])]

    def test_readvert_while_secured_requests_directly(self):
        router = EpidemicRouting()
        services = attach(router)
        services.secured.append(ALICE)
        router.on_peer_discovered(ALICE, {ALICE: 1})
        assert services.requests == [(ALICE, ALICE, [1])]
        assert services.connects == []

    def test_always_becomes_forwarder(self):
        router = EpidemicRouting()
        attach(router)
        assert router.on_message_received(msg(CAROL, 1), ALICE)

    def test_serves_everything_requested(self):
        router = EpidemicRouting()
        services = attach(router)
        services.store.add(msg(CAROL, 1))
        served = router.serve_request(ALICE, CAROL, [1, 2])
        assert [m.number for m in served] == [1]


class TestInterestBased:
    def test_ignores_uninteresting_adverts(self):
        router = InterestBasedRouting()
        services = attach(router, subscriptions=())
        router.on_peer_discovered(ALICE, {ALICE: 5})
        assert services.connects == []

    def test_connects_for_subscribed_author(self):
        router = InterestBasedRouting()
        services = attach(router, subscriptions=(ALICE,))
        router.on_peer_discovered(CAROL, {ALICE: 5})
        assert services.connects == [CAROL]

    def test_own_content_always_interesting(self):
        router = InterestBasedRouting()
        services = attach(router, subscriptions=())
        router.on_peer_discovered(ALICE, {BOB: 2})  # BOB == our own id
        assert services.connects == [ALICE]

    def test_requests_only_interesting_authors(self):
        router = InterestBasedRouting()
        services = attach(router, subscriptions=(ALICE,))
        router.on_peer_discovered(CAROL, {ALICE: 2, CAROL: 9})
        router.on_peer_secured(CAROL)
        assert services.requests == [(CAROL, ALICE, [1, 2])]

    def test_drops_uninteresting_messages(self):
        router = InterestBasedRouting()
        attach(router, subscriptions=(ALICE,))
        assert router.on_message_received(msg(ALICE, 1), CAROL)
        assert not router.on_message_received(msg(CAROL, 1), CAROL)


class TestOriginPreference:
    def test_origin_requested_immediately_relay_deferred(self):
        router = InterestBasedRouting()
        services = attach(router, subscriptions=(ALICE, CAROL), grace=60.0)
        services.secured.append(CAROL)
        router.on_peer_discovered(CAROL, {CAROL: 1, ALICE: 1})
        # CAROL's own content: immediate.  ALICE's via CAROL: deferred.
        assert services.requests == [(CAROL, CAROL, [1])]
        assert len(services.deferred) == 1
        services.run_deferred()
        assert (CAROL, ALICE, [1]) in services.requests

    def test_zero_grace_requests_everything_immediately(self):
        router = InterestBasedRouting()
        services = attach(router, subscriptions=(ALICE, CAROL), grace=0.0)
        services.secured.append(CAROL)
        router.on_peer_discovered(CAROL, {CAROL: 1, ALICE: 1})
        assert len(services.requests) == 2
        assert services.deferred == []


class TestDirectDelivery:
    def test_connects_only_to_followed_author(self):
        router = DirectDeliveryRouting()
        services = attach(router, subscriptions=(ALICE,))
        router.on_peer_discovered(ALICE, {ALICE: 2})
        router.on_peer_discovered(CAROL, {ALICE: 9})  # carol relaying alice
        assert services.connects == [ALICE]

    def test_never_serves_others_content(self):
        router = DirectDeliveryRouting()
        services = attach(router, subscriptions=(ALICE,))
        services.store.add(msg(ALICE, 1, hops=1))
        services.store.add(msg(BOB, 1))
        assert router.serve_request(CAROL, ALICE, [1]) == []
        assert [m.number for m in router.serve_request(CAROL, BOB, [1])] == [1]

    def test_advertises_only_own(self):
        router = DirectDeliveryRouting()
        services = attach(router)
        services.store.add(msg(BOB, 1))
        services.store.add(msg(ALICE, 4, hops=1))
        assert router.advertisement_marks() == {BOB: 1}


class TestFirstContact:
    def test_hands_off_roaming_copy_once(self):
        router = FirstContactRouting()
        services = attach(router, subscriptions=())
        services.store.add(msg(ALICE, 1, hops=2))  # carried, not interested
        first = router.serve_request(CAROL, ALICE, [1])
        assert [m.number for m in first] == [1]
        second = router.serve_request("u00000000d", ALICE, [1])
        assert second == []

    def test_interested_copy_is_kept_and_served(self):
        router = FirstContactRouting()
        services = attach(router, subscriptions=(ALICE,))
        services.store.add(msg(ALICE, 1, hops=1))
        assert router.serve_request(CAROL, ALICE, [1])
        assert router.serve_request("u00000000d", ALICE, [1])  # still serves

    def test_handed_off_removed_from_advertisement(self):
        router = FirstContactRouting()
        services = attach(router, subscriptions=())
        services.store.add(msg(ALICE, 1, hops=1))
        assert router.advertisement_marks() == {ALICE: 1}
        router.serve_request(CAROL, ALICE, [1])
        assert router.advertisement_marks() == {}


class TestSprayAndWait:
    def test_initial_tokens_granted_to_author(self):
        router = SprayAndWaitRouting(initial_copies=8)
        attach(router)
        router.grant_initial_tokens(BOB, 1)
        assert router.tokens_for(BOB, 1) == 8

    def test_binary_spray_halves_tokens(self):
        router = SprayAndWaitRouting(initial_copies=8)
        services = attach(router)
        services.store.add(msg(BOB, 1))
        router.grant_initial_tokens(BOB, 1)
        served = router.serve_request(CAROL, BOB, [1])
        assert served
        assert router.tokens_for(BOB, 1) == 4
        # The grant control precedes the data.
        assert services.controls

    def test_token_grant_received_via_control(self):
        sender = SprayAndWaitRouting(initial_copies=8)
        sender_services = attach(sender)
        sender_services.store.add(msg(BOB, 1))
        sender.grant_initial_tokens(BOB, 1)
        sender.serve_request(CAROL, BOB, [1])
        payload = sender_services.controls[0][1]

        receiver = SprayAndWaitRouting()
        attach(receiver, user_id=CAROL)
        receiver.on_control(BOB, payload)
        assert receiver.on_message_received(msg(BOB, 1, hops=0), BOB)
        assert receiver.tokens_for(BOB, 1) >= 1

    def test_invalid_copies_rejected(self):
        with pytest.raises(ValueError):
            SprayAndWaitRouting(initial_copies=0)


class TestProphet:
    def test_encounter_raises_predictability(self):
        router = ProphetRouting()
        attach(router)
        assert router.predictability(ALICE) == 0.0
        router._on_encounter(ALICE)
        assert router.predictability(ALICE) == pytest.approx(0.75)
        router._on_encounter(ALICE)
        assert router.predictability(ALICE) > 0.75

    def test_aging_decays(self):
        router = ProphetRouting()
        services = attach(router)
        router._on_encounter(ALICE)
        p0 = router.predictability(ALICE)
        services._now = 100 * 3600.0
        assert router.predictability(ALICE) < p0

    def test_transitivity_via_control(self):
        router = ProphetRouting()
        services = attach(router)
        router._on_encounter(ALICE)
        import json

        router.on_control(ALICE, json.dumps({"pred": {CAROL: 0.9}}).encode())
        assert router.predictability(CAROL) > 0.0

    def test_secured_peer_gets_vector(self):
        router = ProphetRouting()
        services = attach(router)
        router.on_peer_discovered(ALICE, {ALICE: 1})
        router.on_peer_secured(ALICE)
        assert services.controls
        assert services.requests  # and the content request went out

    def test_malformed_control_ignored(self):
        router = ProphetRouting()
        attach(router)
        router.on_control(ALICE, b"\xff\xfe not json")  # must not raise


class TestRegistry:
    def test_builtins_present(self):
        registry = RoutingRegistry.with_builtins()
        assert set(registry.names()) == {
            "epidemic", "interest", "direct", "first_contact",
            "spray_wait", "prophet", "bubble",
        }

    def test_create_unknown_raises(self):
        with pytest.raises(KeyError):
            RoutingRegistry.with_builtins().create("warp")

    def test_duplicate_registration_rejected(self):
        registry = RoutingRegistry()
        registry.register("epidemic", EpidemicRouting)
        with pytest.raises(ValueError):
            registry.register("epidemic", EpidemicRouting)

    def test_name_mismatch_rejected(self):
        registry = RoutingRegistry()
        registry.register("misnamed", EpidemicRouting)
        with pytest.raises(ValueError):
            registry.create("misnamed")

    def test_custom_protocol_pluggable(self):
        """The paper's modularity claim: a new scheme in a handful of
        lines, registered and instantiated by name."""

        class FloodOnce(EpidemicRouting):
            name = "flood_once"

        registry = RoutingRegistry.with_builtins()
        registry.register("flood_once", FloodOnce)
        assert isinstance(registry.create("flood_once"), FloodOnce)
