#!/usr/bin/env python3
"""Standalone entry point for the benchmark trajectory report.

Equivalent to ``python -m repro bench report``; exists (like
``scripts/graph_stats.py``) so the report can run without installing
the package::

    PYTHONPATH=src python scripts/bench_report.py [--dir .] [--format md|json]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["bench", "report", *sys.argv[1:]]))
