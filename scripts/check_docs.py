#!/usr/bin/env python3
"""Documentation checks: module doctests + markdown link integrity.

Run from the repo root (the CI docs lane does)::

    PYTHONPATH=src python scripts/check_docs.py

Three passes, all dependency-free:

1. **doctests** — executes the runnable examples embedded in the
   documented module headers (``doctest.testmod`` on the imported
   modules; ``python -m doctest <file>`` would put ``src/repro/crypto``
   on ``sys.path`` and shadow stdlib modules like ``numbers``).
2. **links** — every relative markdown link / inline file reference in
   the user-facing docs must point at a path that exists, so the README
   cannot rot silently as the tree moves.
3. **trace catalogue** — ``docs/TRACE_EVENTS.md`` must match what
   ``scripts/gen_trace_docs.py`` would generate from the registry in
   ``src/repro/analysis/trace_registry.py`` (``repro lint`` closes the
   other half of the loop: registry vs. the emitting code).
"""

from __future__ import annotations

import doctest
import importlib
import re
import sys
from pathlib import Path

#: Modules whose headers carry runnable examples.
DOCTEST_MODULES = (
    "repro.crypto.session",
    "repro.crypto.drbg",
    "repro.pki.keystore",
    "repro.pki.provisioning",
)

#: User-facing documents whose links must resolve.
LINKED_DOCS = ("README.md", "docs/ARCHITECTURE.md", "EXPERIMENTS.md", "docs/TRACE_EVENTS.md")

_MD_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)\)")
_CODE_PATH = re.compile(r"`((?:src|docs|tests|benchmarks|examples|scripts)/[A-Za-z0-9_./-]+)`")


def run_doctests() -> int:
    failures = 0
    for name in DOCTEST_MODULES:
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        status = "ok" if result.failed == 0 else "FAILED"
        print(f"doctest {name}: {result.attempted} examples, {result.failed} failed [{status}]")
        if result.attempted == 0:
            print(f"doctest {name}: FAILED (no examples found — header example removed?)")
            failures += 1
        failures += result.failed
    return failures


def check_links(root: Path) -> int:
    failures = 0
    for doc in LINKED_DOCS:
        path = root / doc
        if not path.is_file():
            print(f"links {doc}: FAILED (document missing)")
            failures += 1
            continue
        text = path.read_text()
        targets = set(_MD_LINK.findall(text)) | set(_CODE_PATH.findall(text))
        broken = sorted(
            target
            for target in targets
            if "://" not in target and not (path.parent / target).exists()
            and not (root / target).exists()
        )
        status = "ok" if not broken else "FAILED"
        print(f"links {doc}: {len(targets)} targets, {len(broken)} broken [{status}]")
        for target in broken:
            print(f"  broken: {target}")
        failures += len(broken)
    return failures


def check_trace_catalogue(root: Path) -> int:
    """docs/TRACE_EVENTS.md must match the registry it is generated from."""
    from repro.analysis.trace_registry import render_markdown

    target = root / "docs" / "TRACE_EVENTS.md"
    expected = render_markdown() + "\n"
    if not target.is_file():
        print("trace catalogue docs/TRACE_EVENTS.md: FAILED (missing — run "
              "scripts/gen_trace_docs.py)")
        return 1
    if target.read_text() != expected:
        print("trace catalogue docs/TRACE_EVENTS.md: FAILED (stale — run "
              "scripts/gen_trace_docs.py after editing the registry)")
        return 1
    print("trace catalogue docs/TRACE_EVENTS.md: ok (matches registry)")
    return 0


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    failures = run_doctests() + check_links(root) + check_trace_catalogue(root)
    if failures:
        print(f"\n{failures} documentation check(s) failed")
        return 1
    print("\nall documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
