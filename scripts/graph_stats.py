#!/usr/bin/env python3
"""Follow-graph sanity checks for sweep planning.

Prints node/edge counts, density, reciprocity and a degree histogram of
exactly the graph a study would build for the given generator, seed and
population — so an unrealistic edge count is caught *before* paying for
a large-N run.  Thin wrapper over ``python -m repro graph-stats``; run
from the repo root::

    python scripts/graph_stats.py --users 2000 --social-graph powerlaw_cluster

(``PYTHONPATH=src`` is optional here: the script bootstraps the path.)
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402  (after the path bootstrap)

if __name__ == "__main__":
    sys.exit(main(["graph-stats", *sys.argv[1:]]))
