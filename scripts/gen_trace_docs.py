#!/usr/bin/env python3
"""Regenerate docs/TRACE_EVENTS.md from the trace-event registry.

Run from the repo root after editing
``src/repro/analysis/trace_registry.py``::

    PYTHONPATH=src python scripts/gen_trace_docs.py

``scripts/check_docs.py`` (the CI docs lane) fails when the file on
disk differs from the registry, and ``repro lint`` fails when the
registry differs from the code, so the three can never drift apart
silently.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.trace_registry import render_markdown  # noqa: E402


def main() -> int:
    target = Path(__file__).resolve().parent.parent / "docs" / "TRACE_EVENTS.md"
    content = render_markdown() + "\n"
    if target.exists() and target.read_text() == content:
        print(f"{target} already up to date")
        return 0
    target.write_text(content)
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
