"""Uniform-grid spatial hashing for neighbour queries.

The radio medium asks "who is within R metres of me?" on every beacon; a
naive all-pairs scan is O(n^2) per tick.  A uniform grid with cell size ~R
answers it by inspecting at most 9 cells.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.geo.point import Point


class SpatialHashIndex:
    """Maps hashable items to positions and serves radius queries."""

    def __init__(self, cell_size: float = 100.0) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], Set[Hashable]] = defaultdict(set)
        self._positions: Dict[Hashable, Point] = {}

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (int(math.floor(p.x / self.cell_size)), int(math.floor(p.y / self.cell_size)))

    def update(self, item: Hashable, position: Point) -> None:
        """Insert or move ``item``."""
        old = self._positions.get(item)
        if old is not None:
            old_cell = self._cell_of(old)
            new_cell = self._cell_of(position)
            if old_cell != new_cell:
                self._cells[old_cell].discard(item)
                self._cells[new_cell].add(item)
        else:
            self._cells[self._cell_of(position)].add(item)
        self._positions[item] = position

    def remove(self, item: Hashable) -> None:
        pos = self._positions.pop(item, None)
        if pos is not None:
            self._cells[self._cell_of(pos)].discard(item)

    def position_of(self, item: Hashable) -> Point:
        return self._positions[item]

    def __contains__(self, item: Hashable) -> bool:
        return item in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def items(self) -> Iterable:
        return self._positions.items()

    def within(self, center: Point, radius: float, exclude: Hashable = None) -> List[Hashable]:
        """All items with ``distance <= radius`` of ``center``."""
        if radius < 0:
            return []
        reach = int(math.ceil(radius / self.cell_size))
        cx, cy = self._cell_of(center)
        out = []
        r2 = radius * radius
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                cell = self._cells.get((gx, gy))
                if not cell:
                    continue
                for item in cell:
                    if item == exclude:
                        continue
                    p = self._positions[item]
                    dx = p.x - center.x
                    dy = p.y - center.y
                    if dx * dx + dy * dy <= r2:
                        out.append(item)
        return out
