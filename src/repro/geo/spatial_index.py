"""Uniform-grid spatial hashing for neighbour queries.

The radio medium asks "who is within R metres of me?" on every beacon; a
naive all-pairs scan is O(n^2) per tick.  A uniform grid with cell size ~R
answers it by inspecting at most 9 cells.

Two access patterns are served:

* per-item radius queries (:meth:`SpatialHashIndex.within`) — one device
  asking for its neighbours, and
* a whole-population pair sweep (:meth:`SpatialHashIndex.pairs_within`) —
  enumerate every unordered pair closer than R exactly once, by pairing
  each occupied cell with itself and with a half-neighbourhood of adjacent
  cells.  The batched medium tick uses this; it halves the distance
  computations of the per-device pattern and needs no dedup set.

Cells are deleted as soon as they empty so a roaming population does not
accumulate unbounded empty ``set()`` entries over long runs.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.geo.point import Point

try:  # optional acceleration for the whole-population pair sweep
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Below this population the pure-Python sweep beats numpy's fixed setup
#: cost (array building, sorts) per tick.
_NUMPY_SWEEP_MIN = 192

#: Sentinel band bound: far beyond any grid column a planar world can
#: reach (cell coordinates are ``floor(x / cell_size)`` of float64
#: positions, which cannot approach 2**60 without losing integer
#: precision first).
BAND_SENTINEL = 2 ** 60


def cell_x_of(x: float, cell_size: float) -> int:
    """The grid-column index of coordinate ``x`` — the shard key of the
    sharded medium.  Must match ``SpatialHashIndex._cell_of`` exactly
    (``floor(x / cell_size)``) so a parent process and its shard workers
    agree on every cell boundary bit for bit."""
    return int(math.floor(x / cell_size))


def span_cells(distance: float, cell_size: float) -> int:
    """How many grid columns a geometric ``distance`` can cross: the
    halo (ghost-zone) width, in cells, that makes a per-band pair sweep
    complete for pairs straddling the band boundary."""
    return int(math.ceil(distance / cell_size))


def partition_cell_bands(
    counts: Dict[int, int], shards: int
) -> List[Tuple[int, int]]:
    """Split occupied grid columns into ``shards`` contiguous bands.

    ``counts`` maps a column index (:func:`cell_x_of`) to its occupant
    count.  Returns ``shards`` half-open ``[lo, hi)`` column ranges that
    tile the whole integer axis (outer bounds are ±:data:`BAND_SENTINEL`
    so every position falls in exactly one band), cut greedily so the
    cumulative occupant count per band approaches ``total / shards``.
    Pure integer arithmetic over a sorted key list: the same counts
    always produce the same bands, in any process.

    Trailing bands may be empty (``(hi, hi)``) when there are fewer
    occupied columns than shards — their workers simply sweep nothing.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    boundaries = [-BAND_SENTINEL]
    total = sum(counts.values())
    if total and shards > 1:
        cumulative = 0
        for cx in sorted(counts):
            if len(boundaries) == shards:
                break
            cumulative += counts[cx]
            # Close the current band after this column once it holds its
            # proportional share (integer cross-multiplication — exact).
            if cumulative * shards >= total * len(boundaries):
                boundaries.append(cx + 1)
    while len(boundaries) < shards:
        boundaries.append(BAND_SENTINEL)
    boundaries.append(BAND_SENTINEL)
    return [(boundaries[i], boundaries[i + 1]) for i in range(shards)]


class SpatialHashIndex:
    """Maps hashable items to positions and serves radius queries."""

    def __init__(self, cell_size: float = 100.0) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], Set[Hashable]] = {}
        self._positions: Dict[Hashable, Point] = {}
        #: Cumulative candidate distance computations performed by
        #: queries — the work a better access pattern compresses.
        self.distance_checks = 0

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (int(math.floor(p.x / self.cell_size)), int(math.floor(p.y / self.cell_size)))

    def update(self, item: Hashable, position: Point) -> None:
        """Insert or move ``item``."""
        old = self._positions.get(item)
        if old is not None:
            old_cell = self._cell_of(old)
            new_cell = self._cell_of(position)
            if old_cell != new_cell:
                self._discard_from_cell(old_cell, item)
                self._cells.setdefault(new_cell, set()).add(item)
        else:
            cell = self._cell_of(position)
            self._cells.setdefault(cell, set()).add(item)
        self._positions[item] = position

    def update_many(self, items: Iterable[Tuple[Hashable, Point]]) -> None:
        """Bulk :meth:`update`: move the whole population in one call.

        Equivalent to calling ``update`` per item but with the dictionary
        lookups hoisted out of the loop — the shape the batched medium
        tick feeds once per tick.
        """
        cells = self._cells
        positions = self._positions
        size = self.cell_size
        floor = math.floor
        for item, position in items:
            old = positions.get(item)
            if old is position:
                continue  # unmoved (paused / stationary models return the same object)
            positions[item] = position
            new_cell = (int(floor(position.x / size)), int(floor(position.y / size)))
            if old is not None:
                old_cell = (int(floor(old.x / size)), int(floor(old.y / size)))
                if old_cell == new_cell:
                    continue
                members = cells.get(old_cell)
                if members is not None:
                    members.discard(item)
                    if not members:
                        del cells[old_cell]
            bucket = cells.get(new_cell)
            if bucket is None:
                cells[new_cell] = {item}
            else:
                bucket.add(item)

    def remove(self, item: Hashable) -> None:
        pos = self._positions.pop(item, None)
        if pos is not None:
            self._discard_from_cell(self._cell_of(pos), item)

    def _discard_from_cell(self, cell: Tuple[int, int], item: Hashable) -> None:
        members = self._cells.get(cell)
        if members is None:
            return
        members.discard(item)
        if not members:
            del self._cells[cell]

    def position_of(self, item: Hashable) -> Point:
        return self._positions[item]

    def __contains__(self, item: Hashable) -> bool:
        return item in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    @property
    def occupied_cells(self) -> int:
        """Number of non-empty grid cells currently allocated."""
        return len(self._cells)

    def items(self) -> Iterable:
        return self._positions.items()

    def within(self, center: Point, radius: float, exclude: Hashable = None) -> List[Hashable]:
        """All items with ``distance <= radius`` of ``center``."""
        if radius < 0:
            return []
        reach = int(math.ceil(radius / self.cell_size))
        cx, cy = self._cell_of(center)
        out = []
        checked = 0
        r2 = radius * radius
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                cell = self._cells.get((gx, gy))
                if not cell:
                    continue
                checked += len(cell)
                for item in cell:
                    if item == exclude:
                        continue
                    p = self._positions[item]
                    dx = p.x - center.x
                    dy = p.y - center.y
                    if dx * dx + dy * dy <= r2:
                        out.append(item)
        self.distance_checks += checked
        return out

    def pairs_within(
        self,
        radius: float,
        reach_of: Optional[Dict[Hashable, float]] = None,
    ) -> List[Tuple[Hashable, Hashable, float]]:
        """Every unordered pair with ``distance <= radius``, exactly once.

        Returns ``(item_a, item_b, distance_squared)`` triples in no
        particular order.  Each occupied cell is paired with itself and
        with a *half* neighbourhood of surrounding cells (offsets with
        ``dx > 0`` or ``dx == 0 and dy > 0``), so every cell pair — and
        therefore every item pair — is visited once.

        ``reach_of`` optionally tightens the cutoff per item: a pair is
        emitted only when ``distance <= min(reach_of[a], reach_of[b])``.
        The medium passes each device's own maximum radio reach, so a
        short-range device only ever pairs within its own bubble instead
        of the population-wide maximum.  Reaches may only *tighten* the
        sweep — the cell span is derived from ``radius``, so a reach
        beyond it is an error rather than a silently truncated search.
        """
        if radius < 0:
            return []
        if reach_of is not None and max(reach_of.values(), default=0.0) > radius:
            raise ValueError("reach_of values must not exceed the sweep radius")
        if _np is not None and len(self._positions) >= _NUMPY_SWEEP_MIN:
            return self._pairs_within_numpy(radius, reach_of)
        r2 = radius * radius
        span = int(math.ceil(radius / self.cell_size))
        offsets = [
            (dx, dy)
            for dx in range(0, span + 1)
            for dy in range(-span, span + 1)
            if dx > 0 or (dx == 0 and dy > 0)
        ]
        positions = self._positions
        # Extract coordinates (and squared cutoffs) once per member; for
        # non-negative reaches min(a, b)^2 == min(a^2, b^2), so squaring
        # here saves a multiply per candidate pair below.
        coords: Dict[Tuple[int, int], List[Tuple[float, float, float, Hashable]]] = {}
        if reach_of is None:
            for cell, members in self._cells.items():
                coords[cell] = [
                    (p.x, p.y, r2, m) for m in members for p in (positions[m],)
                ]
        else:
            for cell, members in self._cells.items():
                coords[cell] = [
                    (p.x, p.y, r * r, m)
                    for m in members
                    for p in (positions[m],)
                    for r in (reach_of[m],)
                ]
        out: List[Tuple[Hashable, Hashable, float]] = []
        append = out.append
        get = coords.get
        checked = 0
        for (cx, cy), mine in coords.items():
            n = len(mine)
            checked += n * (n - 1) // 2
            for i in range(n - 1):
                ax, ay, ar2, a = mine[i]
                for j in range(i + 1, n):
                    bx, by, br2, b = mine[j]
                    dx = ax - bx
                    dy = ay - by
                    d2 = dx * dx + dy * dy
                    if d2 <= (ar2 if ar2 < br2 else br2):
                        append((a, b, d2))
            for ox, oy in offsets:
                theirs = get((cx + ox, cy + oy))
                if not theirs:
                    continue
                checked += n * len(theirs)
                for ax, ay, ar2, a in mine:
                    for bx, by, br2, b in theirs:
                        dx = ax - bx
                        dy = ay - by
                        d2 = dx * dx + dy * dy
                        if d2 <= (ar2 if ar2 < br2 else br2):
                            append((a, b, d2))
        self.distance_checks += checked
        return out

    def _pairs_within_numpy(
        self,
        radius: float,
        reach_of: Optional[Dict[Hashable, float]],
    ) -> List[Tuple[Hashable, Hashable, float]]:
        """Vectorised :meth:`pairs_within`: same contract, same cell
        geometry, with the per-cell cross joins generated as array ops.

        Cells are recomputed from positions with the exact `_cell_of`
        arithmetic (``floor(x / cell_size)``), so membership matches the
        incrementally maintained buckets bit for bit; distances are plain
        float64 subtract/multiply/add, identical to the Python loop.
        """
        np = _np
        positions = self._positions
        n = len(positions)
        xs = np.empty(n, dtype=np.float64)
        ys = np.empty(n, dtype=np.float64)
        cut2 = np.empty(n, dtype=np.float64)
        items: List[Hashable] = [None] * n
        i = 0
        if reach_of is None:
            for item, p in positions.items():
                items[i] = item
                xs[i] = p.x
                ys[i] = p.y
                i += 1
            cut2.fill(radius * radius)
        else:
            for item, p in positions.items():
                items[i] = item
                xs[i] = p.x
                ys[i] = p.y
                cut2[i] = reach_of[item]
                i += 1
            np.multiply(cut2, cut2, out=cut2)
        size = self.cell_size
        shift = np.int64(2 ** 32)
        key = (
            np.floor(xs / size).astype(np.int64) * shift
            + np.floor(ys / size).astype(np.int64)
        )
        order = np.argsort(key, kind="stable")
        skey = key[order]
        sx = xs[order]
        sy = ys[order]
        scut2 = cut2[order]
        sitems = np.empty(n, dtype=object)
        sitems[:] = items
        sitems = sitems[order]
        cells, starts = np.unique(skey, return_index=True)
        counts = np.diff(np.append(starts, n))
        span = int(math.ceil(radius / size))
        arange = np.arange
        out: List[Tuple[Hashable, Hashable, float]] = []
        checked = 0
        for ox in range(0, span + 1):
            for oy in range(-span if ox else 0, span + 1):
                same_cell = ox == 0 and oy == 0
                if same_cell:
                    hosts = np.nonzero(counts > 1)[0]
                    guests = hosts
                else:
                    neighbour = cells + shift * ox + oy
                    pos = np.searchsorted(cells, neighbour)
                    pos_c = np.minimum(pos, len(cells) - 1)
                    valid = (pos < len(cells)) & (cells[pos_c] == neighbour)
                    hosts = np.nonzero(valid)[0]
                    guests = pos[valid]
                if hosts.size == 0:
                    continue
                # Ragged cross join host-cell x guest-cell members.
                ca = counts[hosts]
                cb = counts[guests]
                sizes = ca * cb
                total = int(sizes.sum())
                if total == 0:
                    continue
                match = np.repeat(arange(hosts.size), sizes)
                base = np.concatenate(([0], np.cumsum(sizes)[:-1]))
                offset = arange(total) - base[match]
                cb_m = cb[match]
                row = offset // cb_m
                ii = starts[hosts][match] + row
                jj = starts[guests][match] + (offset - row * cb_m)
                if same_cell:
                    keep = ii < jj  # triangular: each in-cell pair once
                    ii = ii[keep]
                    jj = jj[keep]
                checked += len(ii)
                dx = sx[ii] - sx[jj]
                dy = sy[ii] - sy[jj]
                d2 = dx * dx + dy * dy
                hit = d2 <= np.minimum(scut2[ii], scut2[jj])
                if not hit.any():
                    continue
                out.extend(
                    zip(
                        sitems[ii[hit]].tolist(),
                        sitems[jj[hit]].tolist(),
                        d2[hit].tolist(),
                    )
                )
        self.distance_checks += checked
        return out
