"""Axis-aligned rectangular regions."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geo.point import Point


@dataclass(frozen=True)
class Region:
    """A rectangle ``[x0, x1] x [y0, y1]`` in metres.

    The Gainesville study area is ``Region(0, 0, 11_000, 8_000)``.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate region {self!r}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        """Area in square metres."""
        return self.width * self.height

    @property
    def area_km2(self) -> float:
        """Area in square kilometres (the paper quotes 88 km^2)."""
        return self.area / 1e6

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, p: Point) -> bool:
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def clamp(self, p: Point) -> Point:
        """Project ``p`` onto the region."""
        return Point(
            min(max(p.x, self.x0), self.x1),
            min(max(p.y, self.y0), self.y1),
        )

    def random_point(self, rng: random.Random) -> Point:
        return Point(rng.uniform(self.x0, self.x1), rng.uniform(self.y0, self.y1))

    def subregion(self, fx0: float, fy0: float, fx1: float, fy1: float) -> "Region":
        """Fractional sub-rectangle, e.g. ``subregion(0, 0, .5, .5)`` is the
        lower-left quadrant."""
        return Region(
            self.x0 + fx0 * self.width,
            self.y0 + fy0 * self.height,
            self.x0 + fx1 * self.width,
            self.y0 + fy1 * self.height,
        )


#: The paper's deployment area: ~11 km x 8 km of Gainesville, FL (88 km^2).
GAINESVILLE_AREA = Region(0.0, 0.0, 11_000.0, 8_000.0)
