"""Points and basic metric operations (units: metres)."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """An immutable point in the planar city coordinate system."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def moved_towards(self, target: "Point", amount: float) -> "Point":
        """The point ``amount`` metres from ``self`` along the segment to
        ``target`` (clamped at ``target``)."""
        d = self.distance_to(target)
        if d == 0.0 or amount >= d:
            return target
        f = amount / d
        return Point(self.x + (target.x - self.x) * f, self.y + (target.y - self.y) * f)

    def offset(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple:
        return (self.x, self.y)

    def __str__(self) -> str:
        return f"({self.x:.1f}m, {self.y:.1f}m)"


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points, in metres."""
    return a.distance_to(b)


def midpoint(a: Point, b: Point) -> Point:
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
