"""Planar geometry for the simulated city.

The field study area is ~11 km x 8 km of Gainesville, FL (paper Fig. 4b).
We model it as a flat metric plane in metres — at that scale Earth
curvature contributes centimetres of error, far below radio-range
granularity.
"""

from repro.geo.point import Point, distance, midpoint
from repro.geo.region import Region
from repro.geo.spatial_index import SpatialHashIndex
from repro.geo.places import Place, PlaceKind

__all__ = [
    "Point",
    "distance",
    "midpoint",
    "Region",
    "SpatialHashIndex",
    "Place",
    "PlaceKind",
]
