"""Named places in the synthetic city.

The working-day mobility model moves each user between *places*: a home, a
work/campus location, and shared social venues (the paper's participants
were students who "typically interacted during the school week").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.geo.point import Point


class PlaceKind(Enum):
    HOME = "home"
    WORK = "work"
    SOCIAL = "social"
    TRANSIT = "transit"


@dataclass(frozen=True)
class Place:
    """A named location with an occupancy radius.

    ``radius`` models the footprint of the venue: two users "at" the same
    place wander independently within it, so their radios are sometimes in
    and sometimes out of Bluetooth range — matching the intermittent
    contact behaviour a building produces in the real deployment.
    """

    name: str
    kind: PlaceKind
    location: Point
    radius: float = 50.0

    def jittered_position(self, rng) -> Point:
        """A uniform random position within the venue footprint."""
        import math

        angle = rng.uniform(0.0, 2.0 * math.pi)
        # sqrt for uniform density over the disc, not clustered at center
        r = self.radius * math.sqrt(rng.random())
        return Point(
            self.location.x + r * math.cos(angle),
            self.location.y + r * math.sin(angle),
        )
