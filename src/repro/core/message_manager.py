"""The message manager (paper §III-C).

Sits between the routing manager and the ad hoc manager:

* "notifies the respective protocol used in the routing manager whenever
  a new peer has been discovered or lost",
* "is responsible for taking action whenever a connection state changes
  ... if the connection between two users is lost, the message manager
  knows what messages were not transferred",
* "translates messages between the routing manager and ad hoc manager in
  a common format for both layers to interpret" (the
  :class:`~repro.core.wire.SosPacket` frames).

It also implements :class:`~repro.core.routing.base.RouterServices` — the
narrow API routing protocols program against — and performs originator
verification of received DATA (certificate + signature of the *author*,
paper Fig. 3b) before any message reaches the routing layer or the app.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.adhoc import AdHocManager
from repro.core.delegates import SosDelegate
from repro.core.errors import SecurityError
from repro.core.routing.base import RouterServices, RoutingProtocol
from repro.core.wire import PacketKind, SosPacket, canonical_message_bytes
from repro.crypto.hashes import sha256
from repro.pki.certificate import Certificate, CertificateError
from repro.sim.engine import Simulator
from repro.storage.messagestore import MessageStore, StoredMessage


class MessageManager(RouterServices):
    """Routing/adhoc glue plus transfer bookkeeping."""

    #: Most recent failed transfers remembered (the §III-C "knows what
    #: messages were not transferred" record is a diagnosis aid, not an
    #: unbounded log).
    UNTRANSFERRED_LIMIT = 512
    #: Originator-verification memo entries kept (LRU).
    VERIFY_MEMO_LIMIT = 4096

    def __init__(
        self,
        sim: Simulator,
        adhoc: AdHocManager,
        store: MessageStore,
        delegate: Optional[SosDelegate] = None,
    ) -> None:
        self._sim = sim
        self._adhoc = adhoc
        self._store = store
        self.delegate = delegate or SosDelegate()
        self._protocol: Optional[RoutingProtocol] = None
        self._subscriptions: Set[str] = set()
        self._known_peers: Set[str] = set()
        #: (peer, author, number) transfers in flight.
        self._in_flight: Set[Tuple[str, str, int]] = set()
        #: (author, number) -> expiry time of an outstanding request, so a
        #: node surrounded by several carriers of the same message asks
        #: exactly one of them (usually the first advertiser it saw — the
        #: author, when present) instead of racing duplicates.
        self._requested: Dict[Tuple[str, int], float] = {}
        #: How long an unanswered request suppresses re-requesting.
        self.request_timeout: float = 60.0
        #: Next time the expired ``_requested`` entries are swept (they
        #: used to accumulate forever when a request went unanswered).
        self._requested_sweep_due: float = 0.0
        #: Transfers that failed because the connection dropped — the
        #: §III-C "knows what messages were not transferred" record.
        self.untransferred: Deque[Tuple[str, str, int]] = deque(
            maxlen=self.UNTRANSFERRED_LIMIT
        )
        #: (author, number) -> (digest, cert expiry): DATA bodies whose
        #: originator signature already RSA-verified on this node.  Copies
        #: of one message arrive many times (one per carrier encounter);
        #: the memo verifies each distinct body once instead of once per
        #: copy.  Cleared whenever the CRL version changes.
        self._verified_origins: "OrderedDict[Tuple[str, int], Tuple[bytes, float]]" = (
            OrderedDict()
        )
        self._verified_crl_version = adhoc.keystore.revocation_version
        self.stats = {
            "messages_sent": 0,
            "messages_received": 0,
            "duplicates_dropped": 0,
            "originator_rejected": 0,
            "requests_served": 0,
            "verify_memo_hits": 0,
        }
        adhoc.on_peer_discovered = self._peer_discovered
        adhoc.on_peer_secured = self._peer_secured
        adhoc.on_peer_lost = self._peer_lost
        adhoc.on_packet = self._packet_received
        adhoc.on_security_event = self._security_event

    # -- protocol management ----------------------------------------------------
    @property
    def protocol(self) -> Optional[RoutingProtocol]:
        return self._protocol

    def set_protocol(self, protocol: RoutingProtocol) -> None:
        """Install (or hot-swap) the routing protocol."""
        if self._protocol is not None:
            self._protocol.detach()
        self._protocol = protocol
        protocol.attach(self)
        self.refresh_advertisement()
        # Replay currently-secured peers so the new protocol can act.
        for peer_user in self._adhoc.secured_users():
            protocol.on_peer_discovered(peer_user, self._adhoc.advert_of(peer_user))
            protocol.on_peer_secured(peer_user)

    # -- RouterServices -----------------------------------------------------------
    @property
    def user_id(self) -> str:
        return self._adhoc.user_id

    @property
    def store(self) -> MessageStore:
        return self._store

    @property
    def subscriptions(self) -> FrozenSet[str]:
        return frozenset(self._subscriptions)

    def set_subscriptions(self, user_ids: Set[str]) -> None:
        """Update the interest set (called by the application when the
        user follows/unfollows)."""
        self._subscriptions = set(user_ids)

    def now(self) -> float:
        return self._sim.now

    def connect(self, peer_user: str) -> bool:
        return self._adhoc.connect(peer_user)

    def _prune_requested(self, now: float) -> None:
        """Drop expired request-suppression entries (answered ones are
        popped on receipt; unanswered ones used to leak forever)."""
        if now < self._requested_sweep_due:
            return
        self._requested_sweep_due = now + self.request_timeout
        expired = [key for key, expiry in self._requested.items() if expiry <= now]
        for key in expired:
            del self._requested[key]

    def request_messages(self, peer_user: str, author_id: str, numbers: List[int]) -> None:
        now = self._sim.now
        self._prune_requested(now)
        fresh = [
            n
            for n in numbers
            if self._requested.get((author_id, n), -1.0) < now
            and not self._store.has(author_id, n)
        ]
        if not fresh:
            return
        for n in fresh:
            self._requested[(author_id, n)] = now + self.request_timeout
        packet = SosPacket.request(self.user_id, author_id, sorted(fresh))
        try:
            self._adhoc.send_packet(peer_user, packet)
        except SecurityError:
            for n in fresh:
                self._requested.pop((author_id, n), None)

    def send_message(
        self,
        peer_user: str,
        message: StoredMessage,
        on_complete: Callable[[bool], None] = None,
    ) -> None:
        key = (peer_user, message.author_id, message.number)
        self._in_flight.add(key)

        def _done(ok: bool) -> None:
            self._in_flight.discard(key)
            if ok:
                self.stats["messages_sent"] += 1
            else:
                self.untransferred.append(key)
            if on_complete is not None:
                on_complete(ok)

        packet = SosPacket.data(self.user_id, message)
        try:
            self._adhoc.send_packet(peer_user, packet, on_complete=_done)
        except SecurityError:
            _done(False)

    def send_control(self, peer_user: str, payload: bytes) -> None:
        if self._protocol is None:
            return
        packet = SosPacket.control(self.user_id, self._protocol.name, payload)
        try:
            self._adhoc.send_packet(peer_user, packet)
        except SecurityError as exc:
            # The peer desecured between the protocol's decision and the
            # send (lost link, failed rekey).  Harmless for correctness —
            # control payloads are advisory — but a silent drop also hides
            # real wiring bugs, so record the diagnostic.
            self._sim.trace.emit(
                self._sim.now,
                "router",
                "control_send_failed",
                owner=self.user_id,
                peer=peer_user,
                protocol=self._protocol.name,
                reason=str(exc),
            )

    def secured_peers(self) -> List[str]:
        return self._adhoc.secured_users()

    def defer(self, delay: float, callback) -> None:
        self._sim.schedule_in(delay, callback, name="router-defer")

    @property
    def relay_request_grace(self) -> float:
        return self._adhoc.config.relay_request_grace

    def reset_volatile(self) -> None:
        """Crash support: drop everything that lives only in RAM.

        In-flight transfer bookkeeping, request suppression, the
        untransferred record and the originator-verification memo are all
        reconstructible caches; the message store (disk) is not touched."""
        self._in_flight.clear()
        self._requested.clear()
        self._requested_sweep_due = 0.0
        self.untransferred.clear()
        self._verified_origins.clear()
        self._known_peers.clear()

    # -- advertisement ----------------------------------------------------------------
    def refresh_advertisement(self) -> None:
        """Re-publish the discovery dictionary from the router's marks."""
        if self._protocol is None:
            return
        self._adhoc.set_advertisement(self._protocol.advertisement_marks())

    # -- peer lifecycle -----------------------------------------------------------------
    def _peer_discovered(self, peer_user: str, advert: Dict[str, int]) -> None:
        newly = peer_user not in self._known_peers
        self._known_peers.add(peer_user)
        if self._protocol is not None:
            self._protocol.on_peer_discovered(peer_user, advert)
        if newly:
            self.delegate.sos_surrounding_users_changed(sorted(self._known_peers))

    def _peer_secured(self, peer_user: str) -> None:
        self.delegate.sos_peer_verified(peer_user)
        if self._protocol is not None:
            self._protocol.on_peer_secured(peer_user)

    def _peer_lost(self, peer_user: str) -> None:
        if peer_user in self._known_peers:
            self._known_peers.discard(peer_user)
            self.delegate.sos_surrounding_users_changed(sorted(self._known_peers))
        # Transfers to this peer die with the connection; the MPC layer's
        # failure callbacks record them in ``untransferred``.
        if self._protocol is not None:
            self._protocol.on_peer_lost(peer_user)

    def _security_event(self, peer_user: str, reason: str) -> None:
        self.delegate.sos_security_event(peer_user, reason)

    # -- packet dispatch -----------------------------------------------------------------
    def _packet_received(self, packet: SosPacket, from_user: str) -> None:
        if packet.kind is PacketKind.REQUEST:
            self._serve_request(packet, from_user)
        elif packet.kind is PacketKind.DATA:
            self._receive_data(packet, from_user)
        elif packet.kind is PacketKind.CONTROL:
            if self._protocol is not None and packet.fields["protocol"] == self._protocol.name:
                self._protocol.on_control(from_user, packet.fields["payload"])

    def _serve_request(self, packet: SosPacket, from_user: str) -> None:
        if self._protocol is None:
            return
        author_id = packet.fields["author_id"]
        numbers = packet.fields["numbers"]
        messages = self._protocol.serve_request(from_user, author_id, numbers)
        self.stats["requests_served"] += 1
        for message in messages:
            self.send_message(from_user, message)

    def _receive_data(self, packet: SosPacket, from_user: str) -> None:
        message: StoredMessage = packet.fields["message"]
        if self._store.has(message.author_id, message.number):
            self.stats["duplicates_dropped"] += 1
            return
        if not self._verify_originator(message, from_user):
            return
        if self._protocol is None or not self._protocol.on_message_received(message, from_user):
            return
        copy = message.forwarded_copy(received_at=self._sim.now)
        if not self._store.add(copy):
            self.stats["duplicates_dropped"] += 1
            return
        self._requested.pop((message.author_id, message.number), None)
        self.stats["messages_received"] += 1
        self._sim.trace.emit(
            self._sim.now,
            "message",
            "received",
            owner=self.user_id,
            author=message.author_id,
            number=message.number,
            hops=copy.hops,
            created_at=message.created_at,
            from_user=from_user,
            interested=message.author_id in self._subscriptions,
        )
        self.refresh_advertisement()
        self.delegate.sos_message_received(copy, from_user)

    def _verify_originator(self, message: StoredMessage, from_user: str) -> bool:
        """Paper Fig. 3b: validate the *author's* forwarded certificate and
        the author's signature, so tampering at any forwarder is caught.

        A per-node memo short-circuits re-verification of a byte-identical
        body: the RSA work runs once per ``(author, number)`` body, not
        once per received copy.  A memo entry is only trusted while the
        author certificate it was built from is unexpired and the CRL has
        not changed since (revocation sync clears the memo)."""
        now = self._sim.now
        keystore = self._adhoc.keystore
        if keystore.revocation_version != self._verified_crl_version:
            self._verified_origins.clear()
            self._verified_crl_version = keystore.revocation_version
        canonical = canonical_message_bytes(
            message.author_id, message.number, message.created_at, message.body
        )
        digest = sha256(canonical + message.signature + message.author_cert)
        memo_key = (message.author_id, message.number)
        memo = self._verified_origins.get(memo_key)
        if memo is not None and memo[0] == digest and now < memo[1]:
            self._verified_origins.move_to_end(memo_key)
            self.stats["verify_memo_hits"] += 1
            return True
        try:
            author_cert = Certificate.decode(message.author_cert)
        except CertificateError:
            self.stats["originator_rejected"] += 1
            self.delegate.sos_security_event(from_user, "undecodable originator certificate")
            return False
        result = keystore.validate_and_cache(
            author_cert, now, expected_user_id=message.author_id
        )
        if not result.ok:
            self.stats["originator_rejected"] += 1
            self.delegate.sos_security_event(
                from_user, f"originator certificate rejected: {result.value}"
            )
            return False
        if not author_cert.public_key.verify(canonical, message.signature):
            self.stats["originator_rejected"] += 1
            self.delegate.sos_security_event(from_user, "originator signature invalid")
            return False
        self._verified_origins[memo_key] = (digest, author_cert.not_after)
        self._verified_origins.move_to_end(memo_key)
        while len(self._verified_origins) > self.VERIFY_MEMO_LIMIT:
            self._verified_origins.popitem(last=False)
        return True
