"""The Secure Opportunistic Schemes (SOS) middleware.

This package is the paper's primary contribution (Fig. 1's orange and blue
layers), reproduced in Python:

* :mod:`repro.core.adhoc` — the **ad hoc manager**: wraps (simulated)
  Multipeer Connectivity, owns keys and certificates, validates peers,
  encrypts/decrypts end-to-end and signs/verifies everything sent,
* :mod:`repro.core.message_manager` — the **message manager**: peer
  found/lost notification, transfer bookkeeping across disconnections,
  and translation between routing-layer and ad hoc-layer formats,
* :mod:`repro.core.routing` — the **routing manager**: a modular protocol
  API with the paper's two schemes (Epidemic and Interest-Based) plus
  baseline protocols demonstrating the modularity claim,
* :mod:`repro.core.middleware` — the **SOSMiddleware** facade exposing the
  APIs the paper lists (§III-A): send/receive data, surrounding-user
  notification, routing-protocol selection, and security preferences.

A separate middleware instance runs *inside each application* (per-app
instance, not a system daemon — the paper's App Store-compliance design,
§III).
"""

from repro.core.config import SosConfig
from repro.core.errors import SecurityError, SosError
from repro.core.middleware import SOSMiddleware
from repro.core.delegates import SosDelegate
from repro.core.routing import (
    EpidemicRouting,
    InterestBasedRouting,
    RoutingProtocol,
    RoutingRegistry,
)

__all__ = [
    "SosConfig",
    "SosError",
    "SecurityError",
    "SOSMiddleware",
    "SosDelegate",
    "RoutingProtocol",
    "RoutingRegistry",
    "EpidemicRouting",
    "InterestBasedRouting",
]
