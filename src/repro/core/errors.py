"""SOS middleware error hierarchy."""

from __future__ import annotations


class SosError(RuntimeError):
    """Base class for SOS middleware errors."""


class SecurityError(SosError):
    """Certificate validation, signature or decryption failure.

    Raised (and logged) by the ad hoc manager; peers failing security
    checks are disconnected rather than served.
    """


class ProtocolError(SosError):
    """Malformed wire traffic from a peer."""


class NotSignedUpError(SosError):
    """An operation needing credentials ran before the one-time sign-up."""
