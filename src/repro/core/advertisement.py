"""Plain-text discovery advertisements (paper §V-A).

Devices "roam freely advertising and browsing for basic information in
plain-text": a dictionary whose keys are 10-byte unique user-identifier
strings and whose values are the latest MessageNumber the advertiser holds
for that user.  A browsing node compares the dictionary against its own
store and its interests and decides whether a connection is worth
requesting — *before* any session, certificate, or ciphertext exists.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import USER_ID_LENGTH


class AdvertisementError(ValueError):
    """Malformed advertisement content."""


def validate_user_id(user_id: str) -> str:
    """Enforce the paper's 10-byte user-identifier format."""
    if len(user_id.encode("utf-8")) != USER_ID_LENGTH:
        raise AdvertisementError(
            f"user id must be exactly {USER_ID_LENGTH} bytes, got {user_id!r} "
            f"({len(user_id.encode('utf-8'))} bytes)"
        )
    return user_id


def build_advertisement(marks: Dict[str, int], limit: int = 64) -> Dict[str, str]:
    """Encode ``{user_id: highest_message_number}`` as the MPC discovery
    dictionary (string-to-string).

    When the store knows more authors than ``limit``, the entries with the
    highest message numbers win — freshest content is the most useful
    thing to announce to strangers.
    """
    items = sorted(marks.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    info = {}
    for user_id, number in items:
        validate_user_id(user_id)
        if number < 1:
            raise AdvertisementError(f"message number must be >= 1, got {number}")
        info[user_id] = str(number)
    return info


def parse_advertisement(info: Dict[str, str]) -> Dict[str, int]:
    """Decode a discovery dictionary, discarding malformed entries.

    Advertisements arrive from untrusted strangers over the air; a bad
    entry must never crash the browser, so parsing is lenient: entries
    that fail validation are dropped, the rest survive.
    """
    marks: Dict[str, int] = {}
    for user_id, raw in info.items():
        try:
            validate_user_id(user_id)
            number = int(raw)
        except (AdvertisementError, ValueError):
            continue
        if number >= 1:
            marks[user_id] = number
    return marks


def interesting_entries(
    advert: Dict[str, int],
    own_marks: Dict[str, int],
    interests: frozenset = None,
) -> Dict[str, int]:
    """Entries of ``advert`` that announce content newer than ``own_marks``.

    ``interests`` restricts the comparison to a set of user ids (the
    interest-based protocol passes its subscriptions; epidemic passes
    ``None`` = everything).
    """
    out = {}
    for user_id, number in advert.items():
        if interests is not None and user_id not in interests:
            continue
        if number > own_marks.get(user_id, 0):
            out[user_id] = number
    return out
