"""Application-facing callback interfaces.

The mobile application (AlleyOop Social or any other overlay) receives
middleware events through a :class:`SosDelegate` — the Swift middleware's
delegate-protocol idiom, kept because it makes the app/middleware boundary
explicit and testable.
"""

from __future__ import annotations

from typing import List

from repro.storage.messagestore import StoredMessage


class SosDelegate:
    """Override the callbacks your application cares about."""

    def sos_message_received(self, message: StoredMessage, from_user: str) -> None:
        """A new, verified message arrived (possibly forwarded).

        ``from_user`` is the user the device received the bytes from, not
        necessarily the author.
        """

    def sos_surrounding_users_changed(self, user_ids: List[str]) -> None:
        """The set of discovered nearby users changed (the paper's
        "surrounding user notification" API)."""

    def sos_peer_verified(self, user_id: str) -> None:
        """A nearby user completed the certificate handshake."""

    def sos_security_event(self, user_id: str, reason: str) -> None:
        """A peer failed a security check (bad certificate, bad signature,
        tampered payload).  The middleware already disconnected it."""
