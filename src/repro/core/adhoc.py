"""The ad hoc manager (paper §III-D).

Wraps the Multipeer Connectivity surface and owns everything security:
"viewing discovered peers, establishing D2D connections, encrypting
connections, encrypting data from end-to-end, generating keys, validating
certificates, as well as signing and verifying data sent and received".

Lifecycle of a peer relationship::

    browser found  ->  (routing decides)  ->  invite / accept
        -> session connected -> certificates exchanged & validated
        -> SECURED: encrypted, signed packet exchange
        -> link drops -> peer lost

Security properties enforced here:

* every non-CERT packet is encrypted and peer-authenticated.  Two wire
  modes provide this (``SosConfig.session_crypto``):

  - **session** (default): after the certificate exchange, a per-link
    :class:`~repro.crypto.session.SecureChannel` pays RSA once per
    sending direction and protects every packet with ChaCha20 +
    HMAC-SHA256 under hkdf-derived directional keys (frames ``K``/``S``),
  - **legacy** (the reference oracle): every packet is individually
    signed by the sending peer and encrypted end-to-end to the receiving
    peer's public key (hybrid RSA+ChaCha20, frame ``E``).

  Both modes produce byte-identical delivery traces for a fixed seed;
  end-to-end *originator* signatures on forwarded DATA are independent of
  either mode and always verified (paper Fig. 3b),
* a peer whose certificate fails validation is disconnected and ignored
  for ``reconnect_backoff`` seconds,
* tampered, replayed or unverifiable payloads are dropped and reported
  upward as security events — they never reach the routing layer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, Optional

from repro.core.advertisement import build_advertisement, parse_advertisement
from repro.core.config import SosConfig
from repro.core.errors import SecurityError
from repro.core.wire import PacketKind, SosPacket, WireError
from repro.crypto.drbg import RandomSource
from repro.crypto.rsa import hybrid_decrypt, hybrid_encrypt
from repro.crypto.session import (
    DATA_FRAME,
    KEY_FRAME,
    SecureChannel,
    SessionCryptoError,
)
from repro.mpc.advertiser import AdvertiserDelegate, Invitation, ServiceAdvertiser
from repro.mpc.browser import BrowserDelegate, ServiceBrowser
from repro.mpc.errors import MpcError
from repro.mpc.framework import MpcFramework
from repro.mpc.peer import PeerID
from repro.mpc.session import Session, SessionDelegate, SessionState
from repro.pki.keystore import KeyStore
from repro.sim.engine import Simulator
from repro.sim.process import Timer


@dataclass
class _PeerState:
    """Everything the manager tracks about one nearby user."""

    peer: PeerID
    advert: Dict[str, int] = dataclass_field(default_factory=dict)
    secured: bool = False
    cert_sent: bool = False
    cert_timer: Optional[Timer] = None
    #: The per-link secure session (session_crypto mode); created lazily
    #: after the certificate exchange, dropped with the connection.
    channel: Optional[SecureChannel] = None


class AdHocManager(SessionDelegate, BrowserDelegate, AdvertiserDelegate):
    """One app's D2D connectivity + security endpoint."""

    def __init__(
        self,
        sim: Simulator,
        framework: MpcFramework,
        device_id: str,
        user_id: str,
        keystore: KeyStore,
        config: SosConfig,
        rng: RandomSource,
    ) -> None:
        if not keystore.provisioned:
            raise SecurityError("keystore must be provisioned before going on-air")
        self.sim = sim
        self.user_id = user_id
        self.keystore = keystore
        self.config = config
        self._rng = rng
        self.peer_id = PeerID(display_name=user_id, device_id=device_id)
        self.session = Session(framework, self.peer_id, delegate=self, encrypted=True)
        self.advertiser = ServiceAdvertiser(
            framework, self.peer_id, config.service_type, delegate=self
        )
        self.browser = ServiceBrowser(framework, self.peer_id, config.service_type, delegate=self)
        self._peers: Dict[str, _PeerState] = {}
        self._blacklist_until: Dict[str, float] = {}
        #: Session-key fingerprints accepted over this manager's lifetime
        #: (bounded LRU, see session.SEEN_KEY_LIMIT), shared across
        #: channels so a recorded handshake cannot be replayed at us after
        #: a disconnect/reconnect cycle.
        self._seen_session_keys: "OrderedDict[bytes, None]" = OrderedDict()
        # Upward callbacks, wired by the message manager.
        self.on_peer_discovered: Callable[[str, Dict[str, int]], None] = lambda u, a: None
        self.on_peer_lost: Callable[[str], None] = lambda u: None
        self.on_peer_secured: Callable[[str], None] = lambda u: None
        self.on_packet: Callable[[SosPacket, str], None] = lambda p, u: None
        self.on_security_event: Callable[[str, str], None] = lambda u, r: None
        self.stats = {
            "packets_sent": 0,
            "packets_received": 0,
            "bytes_sent": 0,
            "security_failures": 0,
            "connections_secured": 0,
            "session_keys_established": 0,
            "session_keys_accepted": 0,
        }

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        self.advertiser.start()
        self.browser.start()

    def stop(self) -> None:
        self.advertiser.stop()
        self.browser.stop()
        self.session.disconnect()

    def crash(self) -> None:
        """Abrupt device loss: volatile peer state dies, durable security
        state survives.

        Peer records, secure channels and certificate-exchange timers are
        RAM — gone.  The keystore (disk) and the anti-replay record of
        seen session-key fingerprints plus the blacklist survive, which is
        what lets the manager reject a replayed handshake recorded before
        the crash (the security property the chaos tests assert)."""
        for state in self._peers.values():
            if state.cert_timer is not None:
                state.cert_timer.cancel()
                state.cert_timer = None
            self._drop_channel(state)
        self._peers.clear()
        self.advertiser.stop()
        self.browser.stop()
        self.session.disconnect()

    # -- advertising -------------------------------------------------------------
    def set_advertisement(self, marks: Dict[str, int]) -> None:
        """Publish the plain-text UserID -> MessageNumber dictionary."""
        self.advertiser.set_discovery_info(
            build_advertisement(marks, limit=self.config.advertisement_limit)
        )

    # -- nearby users -------------------------------------------------------------
    def surrounding_users(self) -> list:
        return sorted(self._peers)

    def secured_users(self) -> list:
        return sorted(u for u, s in self._peers.items() if s.secured)

    def is_secured(self, user_id: str) -> bool:
        state = self._peers.get(user_id)
        return state is not None and state.secured

    def advert_of(self, user_id: str) -> Dict[str, int]:
        state = self._peers.get(user_id)
        return dict(state.advert) if state else {}

    # -- connection establishment ----------------------------------------------------
    def connect(self, user_id: str) -> bool:
        """Request a D2D connection to a discovered user.

        Returns False when the user is unknown, blacklisted, or already
        connected/connecting.
        """
        state = self._peers.get(user_id)
        if state is None:
            return False
        if self._blacklist_until.get(user_id, 0.0) > self.sim.now:
            return False
        if self.session.state_of(state.peer) is not SessionState.NOT_CONNECTED:
            return False
        self.browser.invite_peer(state.peer, self.session, context=self.user_id.encode())
        return True

    # -- BrowserDelegate ---------------------------------------------------------------
    def browser_found_peer(self, browser: ServiceBrowser, peer: PeerID, info: Dict[str, str]) -> None:
        advert = parse_advertisement(info)
        state = self._peers.get(peer.display_name)
        if state is None:
            state = _PeerState(peer=peer, advert=advert)
            self._peers[peer.display_name] = state
        else:
            state.peer = peer
            state.advert = advert
        self.on_peer_discovered(peer.display_name, dict(advert))

    def browser_lost_peer(self, browser: ServiceBrowser, peer: PeerID) -> None:
        state = self._peers.pop(peer.display_name, None)
        if state is None:
            return
        if state.cert_timer is not None:
            state.cert_timer.cancel()
        self._drop_channel(state)
        self.on_peer_lost(peer.display_name)

    # -- AdvertiserDelegate ----------------------------------------------------------
    def advertiser_received_invitation(
        self, advertiser: ServiceAdvertiser, invitation: Invitation
    ) -> None:
        inviter = invitation.from_peer.display_name
        if self._blacklist_until.get(inviter, 0.0) > self.sim.now:
            invitation.decline()
            return
        invitation.accept(self.session)

    # -- SessionDelegate --------------------------------------------------------------
    def session_peer_connected(self, session: Session, peer: PeerID) -> None:
        user_id = peer.display_name
        state = self._peers.get(user_id)
        if state is None:
            # Connected to a peer we never browsed (they invited us while
            # our own found-callback is still in flight): track it anyway.
            state = _PeerState(peer=peer)
            self._peers[user_id] = state
        self._send_own_certificate(state)
        state.cert_timer = Timer(
            self.sim, lambda: self._cert_timeout(user_id), name=f"cert-timeout:{user_id}"
        )
        state.cert_timer.start(self.config.certificate_exchange_timeout)

    def session_peer_disconnected(self, session: Session, peer: PeerID) -> None:
        user_id = peer.display_name
        state = self._peers.get(user_id)
        if state is not None:
            if state.cert_timer is not None:
                state.cert_timer.cancel()
                state.cert_timer = None
            was_secured = state.secured
            state.secured = False
            state.cert_sent = False
            self._drop_channel(state)
            if was_secured:
                self.on_peer_lost(user_id)

    def session_received_data(self, session: Session, data: bytes, from_peer: PeerID) -> None:
        try:
            self._handle_frame(data, from_peer)
        except SecurityError as exc:
            self._security_failure(from_peer.display_name, str(exc))
        except WireError as exc:
            self._security_failure(from_peer.display_name, f"malformed frame: {exc}")

    # -- certificate exchange ------------------------------------------------------------
    def _send_own_certificate(self, state: _PeerState) -> None:
        if state.cert_sent:
            return
        packet = SosPacket.cert(self.user_id, self.keystore.own_certificate.encode())
        self._send_plain(state.peer, packet)
        state.cert_sent = True

    def _cert_timeout(self, user_id: str) -> None:
        state = self._peers.get(user_id)
        if state is not None and not state.secured:
            self._security_failure(user_id, "certificate exchange timed out")

    def _handle_certificate(self, packet: SosPacket, from_user: str) -> None:
        from repro.pki.certificate import Certificate, CertificateError

        try:
            certificate = Certificate.decode(packet.fields["certificate"])
        except CertificateError as exc:
            raise SecurityError(f"undecodable certificate: {exc}") from exc
        if packet.fields.get("forwarded"):
            # A forwarded originator certificate (Fig. 3b): validate and
            # cache, but it does not secure the *link*.
            result = self.keystore.validate_and_cache(certificate, self.sim.now)
            if not result.ok:
                raise SecurityError(f"forwarded certificate rejected: {result.value}")
            return
        result = self.keystore.validate_and_cache(
            certificate, self.sim.now, expected_user_id=from_user
        )
        if not result.ok:
            raise SecurityError(f"peer certificate rejected: {result.value}")
        state = self._peers.get(from_user)
        if state is None:
            return
        if state.cert_timer is not None:
            state.cert_timer.cancel()
            state.cert_timer = None
        if not state.secured:
            state.secured = True
            self.stats["connections_secured"] += 1
            self._send_own_certificate(state)  # no-op when already sent
            self.on_peer_secured(from_user)

    # -- packet transport -----------------------------------------------------------------
    def send_packet(
        self,
        user_id: str,
        packet: SosPacket,
        on_complete: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Encrypt, authenticate and send a packet to a *secured* peer."""
        state = self._peers.get(user_id)
        if state is None or not state.secured:
            raise SecurityError(f"peer {user_id!r} is not secured")
        plaintext = packet.encode()
        if self.config.require_encryption:
            if self.config.session_crypto:
                frame = self._channel_for(state).encrypt(plaintext, self.sim.now)
            else:
                peer_cert = self.keystore.peer_certificate(user_id)
                if peer_cert is None:
                    raise SecurityError(f"no cached certificate for {user_id!r}")
                signature = self.keystore.private_key.sign(plaintext)
                framed = (
                    len(plaintext).to_bytes(4, "big") + plaintext + signature
                )
                envelope = hybrid_encrypt(
                    peer_cert.public_key, framed, rng=self._rng, aad=self.user_id.encode()
                )
                frame = b"E" + envelope
        else:
            frame = b"P" + plaintext
        self._transmit(state.peer, frame, on_complete)

    def _channel_for(self, state: _PeerState) -> SecureChannel:
        """The peer's secure session, created on first use after the
        certificate exchange cached its public key."""
        if state.channel is None:
            user_id = state.peer.display_name
            peer_cert = self.keystore.peer_certificate(user_id)
            if peer_cert is None:
                raise SecurityError(f"no cached certificate for {user_id!r}")
            state.channel = SecureChannel(
                local_user=self.user_id,
                peer_user=user_id,
                private_key=self.keystore.private_key,
                peer_public_key=peer_cert.public_key,
                rng=self._rng,
                rekey_interval_s=self.config.session_rekey_interval,
                rekey_packets=self.config.session_rekey_packets,
                seen_key_fingerprints=self._seen_session_keys,
            )
        return state.channel

    def _drop_channel(self, state: _PeerState) -> None:
        """Tear down the secure session with the connection; the stats it
        accumulated survive in the manager's counters."""
        if state.channel is not None:
            self.stats["session_keys_established"] += state.channel.stats["keys_established"]
            self.stats["session_keys_accepted"] += state.channel.stats["keys_accepted"]
            state.channel = None

    def _send_plain(self, peer: PeerID, packet: SosPacket) -> None:
        self._transmit(peer, b"P" + packet.encode(), None)

    def _transmit(
        self, peer: PeerID, frame: bytes, on_complete: Optional[Callable[[bool], None]]
    ) -> None:
        try:
            self.session.send(frame, peer, on_complete=on_complete)
            self.stats["packets_sent"] += 1
            self.stats["bytes_sent"] += len(frame)
        except MpcError:
            if on_complete is not None:
                on_complete(False)

    def _handle_frame(self, data: bytes, from_peer: PeerID) -> None:
        if not data:
            raise WireError("empty frame")
        from_user = from_peer.display_name
        marker, rest = data[:1], data[1:]
        if marker == b"P":
            packet = SosPacket.decode(rest)
            if packet.kind is not PacketKind.CERT:
                if self.config.require_encryption:
                    raise SecurityError("plaintext payload with encryption required")
        elif marker in (KEY_FRAME, DATA_FRAME):
            if not self.config.session_crypto:
                raise SecurityError("session frame but session crypto is disabled")
            state = self._peers.get(from_user)
            if state is None or not state.secured:
                raise SecurityError(f"payload from unsecured peer {from_user!r}")
            try:
                plaintext = self._channel_for(state).decrypt(data, self.sim.now)
            except SessionCryptoError as exc:
                raise SecurityError(f"session decryption failed: {exc}") from exc
            packet = SosPacket.decode(plaintext)
        elif marker == b"E":
            if self.config.session_crypto:
                raise SecurityError("per-packet envelope but session crypto is enabled")
            try:
                framed = hybrid_decrypt(
                    self.keystore.private_key, rest, aad=from_user.encode()
                )
            except ValueError as exc:
                raise SecurityError(f"decryption failed: {exc}") from exc
            if len(framed) < 4:
                raise WireError("short decrypted frame")
            plain_len = int.from_bytes(framed[:4], "big")
            plaintext = framed[4 : 4 + plain_len]
            signature = framed[4 + plain_len :]
            peer_cert = self.keystore.peer_certificate(from_user)
            if peer_cert is None:
                raise SecurityError(f"payload before certificate from {from_user!r}")
            if not peer_cert.public_key.verify(plaintext, signature):
                raise SecurityError(f"bad payload signature from {from_user!r}")
            packet = SosPacket.decode(plaintext)
        else:
            raise WireError(f"unknown frame marker {marker!r}")

        if packet.sender != from_user:
            raise SecurityError(
                f"sender claims {packet.sender!r} but session peer is {from_user!r}"
            )
        self.stats["packets_received"] += 1
        if packet.kind is PacketKind.CERT:
            self._handle_certificate(packet, from_user)
        else:
            state = self._peers.get(from_user)
            if state is None or not state.secured:
                raise SecurityError(f"payload from unsecured peer {from_user!r}")
            self.on_packet(packet, from_user)

    def stats_snapshot(self) -> Dict[str, int]:
        """The stats dict with live channels' key counters folded in
        (``stats`` itself only accumulates torn-down channels)."""
        out = dict(self.stats)
        for state in self._peers.values():
            if state.channel is not None:
                out["session_keys_established"] += state.channel.stats["keys_established"]
                out["session_keys_accepted"] += state.channel.stats["keys_accepted"]
        return out

    # -- failures ------------------------------------------------------------------------
    def _security_failure(self, user_id: str, reason: str) -> None:
        self.stats["security_failures"] += 1
        self._blacklist_until[user_id] = self.sim.now + self.config.reconnect_backoff
        state = self._peers.get(user_id)
        if state is not None:
            state.secured = False
            self._drop_channel(state)
            if state.cert_timer is not None:
                state.cert_timer.cancel()
                state.cert_timer = None
            if self.session.state_of(state.peer) is not SessionState.NOT_CONNECTED:
                self.session.framework.session_disconnect_all_with(self.session, state.peer)
        self.sim.trace.emit(
            self.sim.now, "security", "failure", user=self.user_id, peer=user_id, reason=reason
        )
        self.on_security_event(user_id, reason)
