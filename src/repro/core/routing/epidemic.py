"""Epidemic routing [Vahdat & Becker 2000] — paper §III-B.

"A simple routing scheme that achieves effectiveness through gratuitous
replication and delivery of messages upon node encounters."  Every
advertisement entry newer than what we hold triggers a connection; every
missing number is requested; every received message is stored and
re-advertised.  No interest filtering — maximal delivery, maximal
overhead.
"""

from __future__ import annotations

from typing import Dict

from repro.core.advertisement import interesting_entries
from repro.core.routing.base import RoutingProtocol
from repro.storage.messagestore import StoredMessage


class EpidemicRouting(RoutingProtocol):
    """Replicate everything to everyone on contact."""

    name = "epidemic"

    def __init__(self) -> None:
        super().__init__()
        self._last_advert: Dict[str, Dict[str, int]] = {}

    def on_peer_discovered(self, peer_user: str, advert: Dict[str, int]) -> None:
        self._last_advert[peer_user] = dict(advert)
        fresh = interesting_entries(advert, self.services.store.advertisement_marks())
        if not fresh:
            return
        if self.is_secured(peer_user):
            # Already connected: the re-announcement means new content.
            self.request_missing_from(peer_user, advert)
        else:
            self.services.connect(peer_user)

    def on_peer_secured(self, peer_user: str) -> None:
        self.request_missing_from(peer_user, self._last_advert.get(peer_user, {}))

    def on_peer_lost(self, peer_user: str) -> None:
        self._last_advert.pop(peer_user, None)

    def on_message_received(self, message: StoredMessage, from_user: str) -> bool:
        # Gratuitous replication: always become a forwarder.
        return True

    def detach(self) -> None:
        self._last_advert.clear()
        super().detach()
