"""Direct-delivery routing (baseline).

The conservative extreme: a message is only ever transferred from its
*author's* device directly to an interested subscriber — no intermediate
forwarders, so every delivery is 1-hop.  Minimal overhead (each copy
transferred at most once per subscriber), worst delay/coverage: author
and subscriber must physically meet.  The 1-hop-only contrast for the
Fig. 4c/4d "1-hop" vs "All" split.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.routing.base import RoutingProtocol
from repro.storage.messagestore import StoredMessage


class DirectDeliveryRouting(RoutingProtocol):
    """Author-to-subscriber transfers only."""

    name = "direct"

    def __init__(self) -> None:
        super().__init__()
        self._last_advert: Dict[str, Dict[str, int]] = {}

    def on_peer_discovered(self, peer_user: str, advert: Dict[str, int]) -> None:
        self._last_advert[peer_user] = dict(advert)
        # Connect only when the advertising peer IS an author we follow
        # and has news of its own.
        if peer_user not in self.services.subscriptions:
            return
        own_mark = self.services.store.highest_number(peer_user)
        if advert.get(peer_user, 0) > own_mark:
            if self.is_secured(peer_user):
                self._request_author(peer_user, advert)
            else:
                self.services.connect(peer_user)

    def on_peer_secured(self, peer_user: str) -> None:
        if peer_user not in self.services.subscriptions:
            return
        self._request_author(peer_user, self._last_advert.get(peer_user, {}))

    def _request_author(self, peer_user: str, advert: Dict[str, int]) -> None:
        their_highest = advert.get(peer_user, 0)
        missing = self.services.store.missing_below(peer_user, their_highest)
        if missing:
            self.services.request_messages(peer_user, peer_user, missing)

    def on_peer_lost(self, peer_user: str) -> None:
        self._last_advert.pop(peer_user, None)

    def serve_request(
        self, peer_user: str, author_id: str, numbers: List[int]
    ) -> List[StoredMessage]:
        # Serve only our *own* messages: we never forward others'.
        if author_id != self.services.user_id:
            return []
        return self.services.store.messages_for(author_id, numbers)

    def on_message_received(self, message: StoredMessage, from_user: str) -> bool:
        # Keep it for ourselves (we requested it because we subscribe),
        # but serve_request() above ensures we never pass it on.
        return message.author_id in self.services.subscriptions

    def advertisement_marks(self) -> Dict[str, int]:
        # Advertise only own content: nothing else is ever served.
        own = self.services.store.highest_number(self.services.user_id)
        return {self.services.user_id: own} if own else {}
