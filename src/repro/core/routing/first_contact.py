"""First-contact routing (baseline).

Single-copy forwarding: a message copy hops to the first peer encountered
and is *dropped* locally after a successful transfer, so exactly one copy
roams the network (plus the author's archival copy).  Cheap on storage
and bandwidth, fragile on delivery — the classic lower bound for
replication-based schemes.

Adapted to SOS's publish/subscribe model: interested subscribers always
keep a copy (delivery), and the roaming copy continues from non-interested
carriers only.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.advertisement import interesting_entries
from repro.core.routing.base import RoutingProtocol
from repro.storage.messagestore import StoredMessage


class FirstContactRouting(RoutingProtocol):
    """One roaming copy per message."""

    name = "first_contact"

    def __init__(self) -> None:
        super().__init__()
        self._last_advert: Dict[str, Dict[str, int]] = {}
        #: Messages we already handed to someone (drop after serving).
        self._handed_off: Set[Tuple[str, int]] = set()

    def on_peer_discovered(self, peer_user: str, advert: Dict[str, int]) -> None:
        self._last_advert[peer_user] = dict(advert)
        fresh = interesting_entries(advert, self.services.store.advertisement_marks())
        if not fresh:
            return
        if self.is_secured(peer_user):
            self.request_missing_from(peer_user, advert)
        else:
            self.services.connect(peer_user)

    def on_peer_secured(self, peer_user: str) -> None:
        self.request_missing_from(peer_user, self._last_advert.get(peer_user, {}))

    def on_peer_lost(self, peer_user: str) -> None:
        self._last_advert.pop(peer_user, None)

    def serve_request(
        self, peer_user: str, author_id: str, numbers: List[int]
    ) -> List[StoredMessage]:
        served = [
            m
            for m in self.services.store.messages_for(author_id, numbers)
            if m.key not in self._handed_off
        ]
        for message in served:
            if message.hops > 0 and message.author_id not in self._interests():
                # The roaming copy moves on: stop offering it from here.
                self._handed_off.add(message.key)
        return served

    def _interests(self) -> frozenset:
        return frozenset(self.services.subscriptions) | {self.services.user_id}

    def on_message_received(self, message: StoredMessage, from_user: str) -> bool:
        return True  # hold the roaming copy until someone takes it

    def advertisement_marks(self) -> Dict[str, int]:
        marks = {}
        for message in self.services.store.all_messages():
            if message.key in self._handed_off and message.author_id not in self._interests():
                continue
            current = marks.get(message.author_id, 0)
            if message.number > current:
                marks[message.author_id] = message.number
        return marks

    def detach(self) -> None:
        self._last_advert.clear()
        self._handed_off.clear()
        super().detach()
