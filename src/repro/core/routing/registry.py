"""Protocol registry and runtime toggling.

The demo lets users "toggle between DTN routing schemes inside the
application" (paper §VII); the registry is the middleware mechanism behind
that toggle.  Protocols register factories by name; the middleware asks
the registry to instantiate the selected one and can swap at runtime
(detaching the old protocol, attaching the new one to the same services).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.routing.base import RoutingProtocol

ProtocolFactory = Callable[[], RoutingProtocol]


class RoutingRegistry:
    """Name -> factory registry of routing protocols."""

    def __init__(self) -> None:
        self._factories: Dict[str, ProtocolFactory] = {}

    def register(self, name: str, factory: ProtocolFactory) -> None:
        if not name:
            raise ValueError("protocol name must be non-empty")
        if name in self._factories:
            raise ValueError(f"protocol {name!r} already registered")
        self._factories[name] = factory

    def create(self, name: str) -> RoutingProtocol:
        factory = self._factories.get(name)
        if factory is None:
            raise KeyError(
                f"unknown routing protocol {name!r}; available: {self.names()}"
            )
        protocol = factory()
        if protocol.name != name:
            raise ValueError(
                f"factory for {name!r} produced protocol named {protocol.name!r}"
            )
        return protocol

    def names(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    @classmethod
    def with_builtins(cls) -> "RoutingRegistry":
        """A registry pre-loaded with every shipped protocol."""
        from repro.core.routing.bubble import BubbleRapRouting
        from repro.core.routing.direct import DirectDeliveryRouting
        from repro.core.routing.epidemic import EpidemicRouting
        from repro.core.routing.first_contact import FirstContactRouting
        from repro.core.routing.interest import InterestBasedRouting
        from repro.core.routing.prophet import ProphetRouting
        from repro.core.routing.spray_wait import SprayAndWaitRouting

        registry = cls()
        registry.register(EpidemicRouting.name, EpidemicRouting)
        registry.register(InterestBasedRouting.name, InterestBasedRouting)
        registry.register(DirectDeliveryRouting.name, DirectDeliveryRouting)
        registry.register(FirstContactRouting.name, FirstContactRouting)
        registry.register(SprayAndWaitRouting.name, SprayAndWaitRouting)
        registry.register(ProphetRouting.name, ProphetRouting)
        registry.register(BubbleRapRouting.name, BubbleRapRouting)
        return registry
