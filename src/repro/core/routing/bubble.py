"""BubbleRap-style social routing [Hui, Crowcroft, Yoneki 2008] (extension).

The paper's related-work positions SOS as the vehicle for evaluating
"social-aware and social-based routing schemes" (§II); BubbleRap is the
canonical one, so the reproduction ships it as a demonstration that richer
schemes fit the same ``RoutingProtocol`` API as the <100-line built-ins.

Classic BubbleRap forwards a message up the *global* centrality gradient
until it reaches a node in the destination's community, then up the
*local* (intra-community) gradient.  Adapted to SOS's publish/subscribe
model:

* **community** — learned from contact familiarity: peers whose cumulative
  contact time exceeds a threshold are community members (plus members
  gossiped by other members),
* **centrality** — approximated by the number of distinct peers
  encountered in the recent window (degree centrality, as in the paper's
  C-Window variant),
* **destinations** — the author's subscribers, when known via
  ``subscriber_hints`` (populated by application-layer gossip); with no
  hints the scheme degrades to pure centrality-gradient forwarding.

State is exchanged in CONTROL frames (JSON: centrality + community).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Set, Tuple

from repro.core.advertisement import interesting_entries
from repro.core.routing.base import RoutingProtocol
from repro.storage.messagestore import StoredMessage


class BubbleRapRouting(RoutingProtocol):
    """Community/centrality-gradient forwarding."""

    name = "bubble"

    #: Cumulative contact seconds after which a peer joins the community.
    FAMILIARITY_THRESHOLD = 1800.0
    #: Centrality window length (seconds).
    WINDOW = 6 * 3600.0

    def __init__(self) -> None:
        super().__init__()
        self._last_advert: Dict[str, Dict[str, int]] = {}
        self._contact_started: Dict[str, float] = {}
        self._familiarity: Dict[str, float] = {}
        # (time, peer), append-right / expire-left: deque makes the
        # window prune O(1) per expired entry instead of list.pop(0)'s
        # O(n) shift per encounter.
        self._encounters: Deque[Tuple[float, str]] = deque()
        self.community: Set[str] = set()
        self._peer_state: Dict[str, dict] = {}
        self.subscriber_hints: Dict[str, Set[str]] = {}

    # -- social metrics ---------------------------------------------------------
    def centrality(self) -> int:
        """Distinct peers met within the recent window."""
        horizon = self.services.now() - self.WINDOW
        return len({peer for t, peer in self._encounters if t >= horizon})

    def _note_encounter(self, peer_user: str) -> None:
        self._encounters.append((self.services.now(), peer_user))
        horizon = self.services.now() - self.WINDOW
        while self._encounters and self._encounters[0][0] < horizon:
            self._encounters.popleft()

    def _update_familiarity(self, peer_user: str, seconds: float) -> None:
        total = self._familiarity.get(peer_user, 0.0) + seconds
        self._familiarity[peer_user] = total
        if total >= self.FAMILIARITY_THRESHOLD:
            self.community.add(peer_user)

    # -- events ---------------------------------------------------------------------
    def on_peer_discovered(self, peer_user: str, advert: Dict[str, int]) -> None:
        self._last_advert[peer_user] = dict(advert)
        fresh = interesting_entries(advert, self.services.store.advertisement_marks())
        if not fresh:
            return
        if self.is_secured(peer_user):
            self.request_missing_from(peer_user, advert)
        else:
            self.services.connect(peer_user)

    def on_peer_secured(self, peer_user: str) -> None:
        self._note_encounter(peer_user)
        self._contact_started[peer_user] = self.services.now()
        state = {
            "centrality": self.centrality(),
            "community": sorted(self.community),
        }
        self.services.send_control(peer_user, json.dumps(state).encode("utf-8"))
        self.request_missing_from(peer_user, self._last_advert.get(peer_user, {}))

    def on_peer_lost(self, peer_user: str) -> None:
        self._last_advert.pop(peer_user, None)
        started = self._contact_started.pop(peer_user, None)
        if started is not None:
            self._update_familiarity(peer_user, self.services.now() - started)

    def on_control(self, peer_user: str, payload: bytes) -> None:
        try:
            data = json.loads(payload.decode("utf-8"))
            state = {
                "centrality": int(data.get("centrality", 0)),
                "community": set(str(x) for x in data.get("community", [])),
            }
        except (ValueError, AttributeError, TypeError):
            return
        self._peer_state[peer_user] = state
        # Community transitivity: members of my members lean in.
        if peer_user in self.community:
            for member in state["community"]:
                if member != self.services.user_id:
                    self._familiarity.setdefault(member, 0.0)

    # -- forwarding decision ----------------------------------------------------------
    def _destination_community(self, author_id: str) -> Set[str]:
        return self.subscriber_hints.get(author_id, set())

    def serve_request(
        self, peer_user: str, author_id: str, numbers: List[int]
    ) -> List[StoredMessage]:
        peer = self._peer_state.get(peer_user, {"centrality": 0, "community": set()})
        destinations = self._destination_community(author_id)
        served = []
        for message in self.services.store.messages_for(author_id, numbers):
            if author_id == self.services.user_id:
                served.append(message)  # we are the source: always serve
                continue
            if peer_user in destinations or peer_user == author_id:
                served.append(message)  # direct delivery / author restore
                continue
            if destinations and (peer.get("community", set()) & destinations):
                served.append(message)  # bubble reached the dest community
                continue
            if peer.get("centrality", 0) >= self.centrality():
                served.append(message)  # climb the global gradient
        return served

    def on_message_received(self, message: StoredMessage, from_user: str) -> bool:
        return True

    def detach(self) -> None:
        self._last_advert.clear()
        self._peer_state.clear()
        super().detach()
