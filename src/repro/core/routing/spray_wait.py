"""Spray-and-wait routing [Spyropoulos et al. 2005] (baseline).

Bounded replication: every message starts with a copy budget ``L``.  In
the *spray* phase a carrier holding ``c > 1`` copy-tokens gives half of
them to each new peer (binary spray).  A carrier down to one token enters
the *wait* phase: it only hands the message to interested subscribers
(delivery), never to further relays.

Adapted to publish/subscribe: "destination" means *any user subscribed to
the message's author*; deliveries to subscribers do not spend tokens.

The token count travels in a CONTROL packet keyed by the message id, sent
right before the DATA packet, so the receiving spray-and-wait instance
knows its budget.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.core.advertisement import interesting_entries
from repro.core.routing.base import RoutingProtocol
from repro.storage.messagestore import StoredMessage

_TOKEN_FMT = ">4sI"  # message-key digest prefix + token count


def _key_of(author_id: str, number: int) -> bytes:
    import hashlib

    return hashlib.sha256(f"{author_id}:{number}".encode()).digest()[:4]


class SprayAndWaitRouting(RoutingProtocol):
    """Binary spray-and-wait with subscriber-delivery exemption."""

    name = "spray_wait"

    def __init__(self, initial_copies: int = 8) -> None:
        super().__init__()
        if initial_copies < 1:
            raise ValueError(f"initial_copies must be >= 1, got {initial_copies}")
        self.initial_copies = initial_copies
        self._last_advert: Dict[str, Dict[str, int]] = {}
        self._tokens: Dict[Tuple[str, int], int] = {}
        #: Token grants received via CONTROL, pending the matching DATA.
        self._pending_grants: Dict[bytes, int] = {}
        #: author -> known subscriber user-ids.  Deliveries to known
        #: subscribers are token-free; without a hint, a requester is
        #: treated as a relay and charged tokens.  Populating this needs
        #: subscription gossip, which the application layer may provide.
        self.subscriber_hints: Dict[str, set] = {}

    # -- helpers -----------------------------------------------------------------
    def _interests(self) -> frozenset:
        return frozenset(self.services.subscriptions) | {self.services.user_id}

    def tokens_for(self, author_id: str, number: int) -> int:
        return self._tokens.get((author_id, number), 0)

    def grant_initial_tokens(self, author_id: str, number: int) -> None:
        """Called (via the message manager) when the local user authors a
        message: the author holds the full budget."""
        self._tokens[(author_id, number)] = self.initial_copies

    # -- events --------------------------------------------------------------------
    def on_peer_discovered(self, peer_user: str, advert: Dict[str, int]) -> None:
        self._last_advert[peer_user] = dict(advert)
        fresh = interesting_entries(advert, self.services.store.advertisement_marks())
        if not fresh:
            return
        if self.is_secured(peer_user):
            self.request_missing_from(peer_user, advert)
        else:
            self.services.connect(peer_user)

    def on_peer_secured(self, peer_user: str) -> None:
        self.request_missing_from(peer_user, self._last_advert.get(peer_user, {}))

    def on_peer_lost(self, peer_user: str) -> None:
        self._last_advert.pop(peer_user, None)

    def serve_request(
        self, peer_user: str, author_id: str, numbers: List[int]
    ) -> List[StoredMessage]:
        peer_is_subscriber = peer_user in self.subscriber_hints.get(author_id, ())
        served = []
        for message in self.services.store.messages_for(author_id, numbers):
            key = message.key
            tokens = self._tokens.get(key, 1)
            if peer_is_subscriber:
                # Delivery to a known subscriber: free, no token cost.
                self._send_grant(peer_user, message, 1)
                served.append(message)
            elif tokens > 1:
                give = tokens // 2
                self._tokens[key] = tokens - give
                self._send_grant(peer_user, message, give)
                served.append(message)
            # tokens == 1 and not a known subscriber: wait phase.
        return served

    def _send_grant(self, peer_user: str, message: StoredMessage, tokens: int) -> None:
        payload = struct.pack(_TOKEN_FMT, _key_of(message.author_id, message.number), tokens)
        self.services.send_control(peer_user, payload)

    def on_control(self, peer_user: str, payload: bytes) -> None:
        if len(payload) != struct.calcsize(_TOKEN_FMT):
            return
        digest, tokens = struct.unpack(_TOKEN_FMT, payload)
        self._pending_grants[digest] = tokens

    def on_message_received(self, message: StoredMessage, from_user: str) -> bool:
        digest = _key_of(message.author_id, message.number)
        tokens = self._pending_grants.pop(digest, 1)
        self._tokens[message.key] = max(tokens, 1)
        return True

    def detach(self) -> None:
        self._last_advert.clear()
        self._pending_grants.clear()
        super().detach()
