"""PRoPHET routing [Lindgren et al. 2003] (baseline).

Probabilistic routing using the history of encounters: each node keeps a
delivery-predictability value ``P(self, other)`` per known node, updated
on every encounter, aged over time, and propagated transitively.  A
carrier forwards a message to a peer whose predictability of reaching an
interested subscriber exceeds its own.

Adapted to publish/subscribe: the "destination set" of a message is the
author's subscriber set as learned from disseminated follow actions; a
node's utility for a message is its maximum predictability over that set.
Nodes exchange predictability vectors in CONTROL packets on every secure
connection.
"""

from __future__ import annotations

import json
from typing import Dict, List, Set

from repro.core.advertisement import interesting_entries
from repro.core.routing.base import RoutingProtocol
from repro.storage.messagestore import StoredMessage


class ProphetRouting(RoutingProtocol):
    """PRoPHET with transitive predictability and pub/sub destinations."""

    name = "prophet"

    P_INIT = 0.75
    BETA = 0.25   # transitivity weight
    GAMMA = 0.999  # aging factor per second**(1/aging_unit)
    AGING_UNIT = 3600.0  # seconds per aging step

    def __init__(self) -> None:
        super().__init__()
        self._last_advert: Dict[str, Dict[str, int]] = {}
        self._pred: Dict[str, float] = {}
        self._last_age: float = 0.0
        self._peer_pred: Dict[str, Dict[str, float]] = {}
        #: author -> known subscriber set (fed by the application layer
        #: through subscription gossip; defaults to "requesters are
        #: interested" evidence).
        self.subscriber_hints: Dict[str, Set[str]] = {}

    # -- predictability bookkeeping ------------------------------------------------
    def _age(self) -> None:
        now = self.services.now()
        if now <= self._last_age:
            return
        steps = (now - self._last_age) / self.AGING_UNIT
        factor = self.GAMMA ** steps
        for node in list(self._pred):
            self._pred[node] *= factor
            if self._pred[node] < 1e-6:
                del self._pred[node]
        self._last_age = now

    def _on_encounter(self, peer_user: str) -> None:
        self._age()
        old = self._pred.get(peer_user, 0.0)
        self._pred[peer_user] = old + (1.0 - old) * self.P_INIT

    def _apply_transitivity(self, peer_user: str, peer_vector: Dict[str, float]) -> None:
        p_ab = self._pred.get(peer_user, 0.0)
        for node, p_bc in peer_vector.items():
            if node == self.services.user_id:
                continue
            old = self._pred.get(node, 0.0)
            self._pred[node] = max(old, old + (1.0 - old) * p_ab * p_bc * self.BETA)

    def predictability(self, node: str) -> float:
        self._age()
        return self._pred.get(node, 0.0)

    def _utility(self, vector: Dict[str, float], author_id: str) -> float:
        subscribers = self.subscriber_hints.get(author_id, set())
        if not subscribers:
            return 0.0
        return max(vector.get(s, 0.0) for s in subscribers)

    # -- events ------------------------------------------------------------------------
    def on_peer_discovered(self, peer_user: str, advert: Dict[str, int]) -> None:
        self._last_advert[peer_user] = dict(advert)
        fresh = interesting_entries(advert, self.services.store.advertisement_marks())
        if not fresh:
            return
        if self.is_secured(peer_user):
            self.request_missing_from(peer_user, advert)
        else:
            self.services.connect(peer_user)

    def on_peer_secured(self, peer_user: str) -> None:
        self._on_encounter(peer_user)
        # Exchange predictability vectors first.
        self._age()
        payload = json.dumps({"pred": self._pred}).encode("utf-8")
        self.services.send_control(peer_user, payload)
        self.request_missing_from(peer_user, self._last_advert.get(peer_user, {}))

    def on_peer_lost(self, peer_user: str) -> None:
        self._last_advert.pop(peer_user, None)

    def on_control(self, peer_user: str, payload: bytes) -> None:
        try:
            data = json.loads(payload.decode("utf-8"))
            vector = {str(k): float(v) for k, v in data.get("pred", {}).items()}
        except (ValueError, AttributeError):
            return
        self._peer_pred[peer_user] = vector
        self._apply_transitivity(peer_user, vector)

    def serve_request(
        self, peer_user: str, author_id: str, numbers: List[int]
    ) -> List[StoredMessage]:
        # Forward when the requester is plausibly better-placed: either it
        # is itself interested (requests are interest evidence), or its
        # predictability toward the author's subscribers beats ours.
        peer_vector = self._peer_pred.get(peer_user, {})
        self._age()
        served = []
        for message in self.services.store.messages_for(author_id, numbers):
            peer_utility = max(
                self._utility(peer_vector, message.author_id),
                self.P_INIT,  # the request itself is interest evidence
            )
            own_utility = self._utility(self._pred, message.author_id)
            if peer_utility >= own_utility:
                served.append(message)
        return served

    def on_message_received(self, message: StoredMessage, from_user: str) -> bool:
        return True

    def detach(self) -> None:
        self._last_advert.clear()
        self._peer_pred.clear()
        super().detach()
