"""The routing-protocol API.

A routing protocol never touches MPC, sessions, certificates or crypto —
those live below, in the message manager and ad hoc manager.  It sees
exactly four kinds of events and answers three kinds of questions, which
is why the paper's protocols fit in "less than 100 lines of Swift code"
(§III-B); the Python equivalents here are similarly compact.

Events (pushed by the message manager):

* :meth:`RoutingProtocol.on_peer_discovered` — a plain-text advertisement
  from a nearby user; decide whether to request a connection,
* :meth:`RoutingProtocol.on_peer_secured` — the encrypted, authenticated
  connection is ready; decide what to request,
* :meth:`RoutingProtocol.on_peer_lost` — the peer left range,
* :meth:`RoutingProtocol.on_message_received` — a verified message
  arrived; decide whether this node becomes a forwarder for it,
* :meth:`RoutingProtocol.on_control` — protocol-private control payload.

Questions (pulled by the message manager):

* :meth:`RoutingProtocol.serve_request` — which of the requested messages
  to hand a peer,
* :meth:`RoutingProtocol.advertisement_marks` — which
  (UserID, MessageNumber) entries to advertise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, FrozenSet, List

from repro.storage.messagestore import MessageStore, StoredMessage


class RouterServices(ABC):
    """What the message manager offers a routing protocol."""

    @property
    @abstractmethod
    def user_id(self) -> str:
        """This node's own user identifier."""

    @property
    @abstractmethod
    def store(self) -> MessageStore:
        """The local message store."""

    @property
    @abstractmethod
    def subscriptions(self) -> FrozenSet[str]:
        """User ids this node's user follows (interest set)."""

    @abstractmethod
    def now(self) -> float:
        """Current time (simulation or wall clock)."""

    @abstractmethod
    def connect(self, peer_user: str) -> bool:
        """Request a D2D connection to a discovered user."""

    @abstractmethod
    def request_messages(self, peer_user: str, author_id: str, numbers: List[int]) -> None:
        """Ask a secured peer for specific message numbers of one author."""

    @abstractmethod
    def send_message(
        self,
        peer_user: str,
        message: StoredMessage,
        on_complete: Callable[[bool], None] = None,
    ) -> None:
        """Send one stored message to a secured peer."""

    @abstractmethod
    def send_control(self, peer_user: str, payload: bytes) -> None:
        """Send protocol-private control data to a secured peer."""

    @abstractmethod
    def secured_peers(self) -> List[str]:
        """Currently secured (connected + certificate-validated) users."""

    @abstractmethod
    def defer(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds (protocol timers)."""

    @property
    def relay_request_grace(self) -> float:
        """Seconds to wait before pulling *relayed* copies (see
        :meth:`RoutingProtocol.request_missing_from`)."""
        return 0.0


class RoutingProtocol(ABC):
    """Base class for DTN routing schemes."""

    #: Registry key; subclasses must override.
    name: str = ""

    def __init__(self) -> None:
        self.services: RouterServices = None

    def attach(self, services: RouterServices) -> None:
        """Bind the protocol to a middleware instance.  Called once, by
        the message manager, before any event is delivered."""
        self.services = services

    def detach(self) -> None:
        """Called when the user toggles to another protocol; drop any
        per-peer state (the store itself stays)."""
        self.services = None

    # -- events ---------------------------------------------------------------
    @abstractmethod
    def on_peer_discovered(self, peer_user: str, advert: Dict[str, int]) -> None:
        """Plain-text advertisement observed (connection not yet made)."""

    @abstractmethod
    def on_peer_secured(self, peer_user: str) -> None:
        """Secure channel ready: request whatever this scheme wants."""

    def on_peer_lost(self, peer_user: str) -> None:
        """Peer left range / disconnected.  Default: nothing."""

    @abstractmethod
    def on_message_received(self, message: StoredMessage, from_user: str) -> bool:
        """A verified message arrived.  Return True to store it (become a
        forwarder, paper §V-B), False to drop it."""

    def on_control(self, peer_user: str, payload: bytes) -> None:
        """Protocol-private control payload.  Default: ignore."""

    # -- helpers for request-driven schemes ------------------------------------------
    def request_missing_from(
        self,
        peer_user: str,
        advert: Dict[str, int],
        interests: FrozenSet[str] = None,
    ) -> int:
        """Request every advertised message we lack (optionally limited to
        ``interests``).  Returns the number of requests issued.

        Advertisements refresh while a connection is still up (a peer that
        just received news re-announces it), so request-driven schemes
        call this both when a connection becomes secure and when an
        already-secured peer re-advertises.

        **Origin preference**: entries the advertising peer *authored* are
        requested immediately (the paper's canonical Fig. 2b pull —
        "Bob's device is interested in messages from Alice's device");
        entries it would merely relay are requested after a grace period,
        so when the author is also in range the source copy wins and the
        hop count stays at one.  The grace comes from
        :attr:`RouterServices.relay_request_grace`; already-received
        numbers are dropped at fire time by the message manager's
        request dedup.
        """
        store = self.services.store
        requests = 0
        grace = self.services.relay_request_grace
        for author_id, their_highest in advert.items():
            if interests is not None and author_id not in interests:
                continue
            missing = store.missing_below(author_id, their_highest)
            if not missing:
                continue
            if author_id == peer_user or grace <= 0.0:
                self.services.request_messages(peer_user, author_id, missing)
            else:
                self.services.defer(
                    grace,
                    lambda p=peer_user, a=author_id, m=tuple(missing): (
                        self.services.request_messages(p, a, list(m))
                        if self.services is not None
                        else None
                    ),
                )
            requests += 1
        return requests

    def is_secured(self, peer_user: str) -> bool:
        return peer_user in self.services.secured_peers()

    # -- questions ----------------------------------------------------------------
    def serve_request(
        self, peer_user: str, author_id: str, numbers: List[int]
    ) -> List[StoredMessage]:
        """Which of the requested messages to send.  Default: everything
        we hold (request-driven schemes gate at the *requester* side)."""
        return self.services.store.messages_for(author_id, numbers)

    def advertisement_marks(self) -> Dict[str, int]:
        """(UserID -> MessageNumber) entries to advertise.  Default: the
        store's high-water marks."""
        return self.services.store.advertisement_marks()
