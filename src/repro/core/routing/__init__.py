"""The routing manager (paper §III-B).

"Routing in SOS is designed for modularity, permitting additional DTN
routing schemes to be developed on top of the message manager" — this
package is that modular layer.  :class:`RoutingProtocol` is the API every
scheme implements; the registry supports runtime protocol toggling (the
demo lets users switch schemes inside the app, §VII).

Shipped protocols:

* :class:`EpidemicRouting` — gratuitous replication on every encounter
  [Vahdat & Becker 2000], one of the paper's two schemes,
* :class:`InterestBasedRouting` — the paper's IB scheme: identical to
  epidemic *except* messages propagate only to users subscribed to the
  message's publisher,
* :class:`DirectDeliveryRouting`, :class:`FirstContactRouting`,
  :class:`SprayAndWaitRouting`, :class:`ProphetRouting` — classic DTN
  baselines (adapted to SOS's publish/subscribe model) that demonstrate
  the modularity claim and power the comparison benches.
"""

from repro.core.routing.base import RouterServices, RoutingProtocol
from repro.core.routing.registry import RoutingRegistry
from repro.core.routing.epidemic import EpidemicRouting
from repro.core.routing.interest import InterestBasedRouting
from repro.core.routing.direct import DirectDeliveryRouting
from repro.core.routing.first_contact import FirstContactRouting
from repro.core.routing.spray_wait import SprayAndWaitRouting
from repro.core.routing.prophet import ProphetRouting
from repro.core.routing.bubble import BubbleRapRouting

__all__ = [
    "RouterServices",
    "RoutingProtocol",
    "RoutingRegistry",
    "EpidemicRouting",
    "InterestBasedRouting",
    "DirectDeliveryRouting",
    "FirstContactRouting",
    "SprayAndWaitRouting",
    "ProphetRouting",
    "BubbleRapRouting",
]
