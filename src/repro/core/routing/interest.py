"""Interest-based (IB) routing — paper §III-B.

"The IB routing protocol operates in a similar manner to epidemic
routing, except, instead of propagating messages to all users, messages
are only propagated to interested users who are subscribed to the
publisher of the original message."

Concretely: a node requests an author's messages only when its user is
*subscribed* to that author (or it is catching up on its own messages
after a reinstall).  Since requests drive transfers, content only ever
flows toward interested users; multi-hop dissemination happens through
overlapping subscriptions — Bob relays Alice's posts to Carol because Bob
follows Alice too (paper Fig. 3b).
"""

from __future__ import annotations

from typing import Dict

from repro.core.advertisement import interesting_entries
from repro.core.routing.base import RoutingProtocol
from repro.storage.messagestore import StoredMessage


class InterestBasedRouting(RoutingProtocol):
    """Epidemic's request loop, gated by the subscription set."""

    name = "interest"

    def __init__(self) -> None:
        super().__init__()
        self._last_advert: Dict[str, Dict[str, int]] = {}

    def _interests(self) -> frozenset:
        # Own messages are always "interesting": a reinstalled device
        # recovers its history from the swarm.
        return frozenset(self.services.subscriptions) | {self.services.user_id}

    def on_peer_discovered(self, peer_user: str, advert: Dict[str, int]) -> None:
        self._last_advert[peer_user] = dict(advert)
        fresh = interesting_entries(
            advert, self.services.store.advertisement_marks(), interests=self._interests()
        )
        if not fresh:
            return
        if self.is_secured(peer_user):
            self.request_missing_from(peer_user, advert, interests=self._interests())
        else:
            self.services.connect(peer_user)

    def on_peer_secured(self, peer_user: str) -> None:
        self.request_missing_from(
            peer_user, self._last_advert.get(peer_user, {}), interests=self._interests()
        )

    def on_peer_lost(self, peer_user: str) -> None:
        self._last_advert.pop(peer_user, None)

    def on_message_received(self, message: StoredMessage, from_user: str) -> bool:
        # Store (and hence re-advertise) only content we are interested
        # in: this is what makes the node a forwarder *for its own
        # interest group* rather than for everyone.
        return message.author_id in self._interests()

    def detach(self) -> None:
        self._last_advert.clear()
        super().detach()
