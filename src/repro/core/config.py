"""SOS middleware configuration.

One :class:`SosConfig` instance parameterises a middleware instance; the
defaults reproduce the deployment configuration of the field study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pki.provisioning import PROVISIONING_MODES

#: The paper fixes user identifiers at 10 bytes (§V-A).
USER_ID_LENGTH = 10


@dataclass
class SosConfig:
    """Tunable middleware parameters.

    Attributes
    ----------
    service_type:
        MPC service type string; apps with different service types never
        discover each other (per-app middleware isolation).
    routing_protocol:
        Name of the initially selected routing protocol (user-toggleable
        at runtime, §VII).
    buffer_capacity_bytes:
        Message-store budget for *forwarded* copies; ``None`` = unbounded.
    advertisement_limit:
        Maximum number of (UserID, MessageNumber) entries advertised; the
        freshest authors win when the store knows more (MPC's discovery
        payload is small).
    require_encryption:
        Security preference: refuse plaintext payload exchange.  The field
        study ran with encryption on; turning it off is only for the
        security-cost ablation bench.
    session_crypto:
        Use the per-link secure-session layer (RSA once per link
        direction, ChaCha20+HMAC per packet — see
        :mod:`repro.crypto.session`).  Off selects the legacy per-packet
        hybrid-RSA pipeline, kept as the reference oracle; both modes
        produce byte-identical delivery/delay traces for a fixed seed.
    provisioning:
        How this instance's identity was provisioned: ``"eager"`` (key
        pair generated during sign-up, the paper's flow and the reference
        oracle), ``"pooled"`` (key pair taken from a deterministic
        :class:`repro.pki.provisioning.KeypairPool`), or ``"lazy"``
        (placeholder sign-up; the keystore materialises the key pair on
        first secured send/receive).  All three produce byte-identical
        keys, certificates and traces for a fixed seed — the knob trades
        build-time CPU only.
    session_rekey_interval:
        Seconds a session sending key may stay in use before the next
        packet establishes a fresh one.
    session_rekey_packets:
        Packets a session sending key may protect before rekeying.
    certificate_exchange_timeout:
        Seconds to wait for the peer's certificate before dropping the
        session.
    reconnect_backoff:
        Seconds to ignore a peer after a failed security handshake.
    relay_request_grace:
        Seconds a node waits before pulling content from a *relay* when
        the same content might arrive from its author directly (origin
        preference; see routing/base.py).  0 disables the preference.
    """

    service_type: str = "sos-alleyoop"
    routing_protocol: str = "interest"
    buffer_capacity_bytes: int = 16 * 1024 * 1024
    advertisement_limit: int = 64
    require_encryption: bool = True
    session_crypto: bool = True
    provisioning: str = "eager"
    session_rekey_interval: float = 3600.0
    session_rekey_packets: int = 4096
    certificate_exchange_timeout: float = 20.0
    reconnect_backoff: float = 300.0
    relay_request_grace: float = 90.0
    #: Disseminate follow/unfollow actions as (system) messages — §V's
    #: "performs an action such as follow/unfollow of a user".  Gossiped
    #: subscription knowledge feeds destination-aware protocols
    #: (spray-and-wait, PRoPHET, BubbleRap) via their subscriber_hints.
    #: DTN delivery reorders freely, so receivers apply gossip in *action*
    #: order — AlleyOop keeps a per-(follower, followee) stamp of the
    #: newest applied action and ignores older gossip, so a late-arriving
    #: stale unfollow cannot clobber a newer follow.
    #: Off by default: the calibrated field-study reproduction measures
    #: post dissemination only.
    gossip_follows: bool = False

    def __post_init__(self) -> None:
        if self.advertisement_limit < 1:
            raise ValueError("advertisement_limit must be at least 1")
        if self.provisioning not in PROVISIONING_MODES:
            raise ValueError(
                f"provisioning must be one of {PROVISIONING_MODES}, "
                f"got {self.provisioning!r}"
            )
        if self.certificate_exchange_timeout <= 0:
            raise ValueError("certificate_exchange_timeout must be positive")
        if self.session_rekey_interval <= 0:
            raise ValueError("session_rekey_interval must be positive")
        if self.session_rekey_packets < 1:
            raise ValueError("session_rekey_packets must be at least 1")
