"""Encounter-based trust (the §IV extension hook).

"Additional security can be added to AlleyOop Social by ... integrating
trust measurements within the routing schemes" — the paper cites PROTECT
(Kumar, Thakur, Helmy 2010), which derives trust from the history of
physical encounters: people you meet often, regularly and at length are
more trustworthy relays than strangers.

:class:`TrustManager` maintains exactly those features per peer —
frequency, cumulative duration, recency — and combines them into a [0, 1]
score.  :class:`TrustGatedRouting` wraps any routing protocol and refuses
to *serve relayed content to* peers below a trust floor (their own
authored requests still work: trust gates relaying, not communication).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.routing.base import RouterServices, RoutingProtocol
from repro.storage.messagestore import StoredMessage


@dataclass
class EncounterRecord:
    """Trust features for one peer."""

    count: int = 0
    total_duration: float = 0.0
    last_seen: Optional[float] = None
    _open_since: Optional[float] = None


class TrustManager:
    """Per-peer trust from encounter history.

    Score = weighted blend of three saturating features:

    * frequency  — ``1 - exp(-count / count_scale)``,
    * duration   — ``1 - exp(-total_seconds / duration_scale)``,
    * recency    — ``exp(-age / recency_scale)`` (decays when not seen).

    Weights sum to 1; a never-met peer scores 0.
    """

    def __init__(
        self,
        count_scale: float = 5.0,
        duration_scale: float = 4 * 3600.0,
        recency_scale: float = 3 * 86400.0,
        weights: tuple = (0.4, 0.35, 0.25),
    ) -> None:
        if not math.isclose(sum(weights), 1.0, rel_tol=1e-9):
            raise ValueError(f"weights must sum to 1, got {weights}")
        if min(count_scale, duration_scale, recency_scale) <= 0:
            raise ValueError("scales must be positive")
        self.count_scale = count_scale
        self.duration_scale = duration_scale
        self.recency_scale = recency_scale
        self.weights = weights
        self._records: Dict[str, EncounterRecord] = {}

    # -- bookkeeping ------------------------------------------------------------
    def encounter_started(self, peer: str, now: float) -> None:
        record = self._records.setdefault(peer, EncounterRecord())
        if record._open_since is None:
            record._open_since = now
            record.count += 1
        record.last_seen = now

    def encounter_ended(self, peer: str, now: float) -> None:
        record = self._records.get(peer)
        if record is None or record._open_since is None:
            return
        record.total_duration += max(0.0, now - record._open_since)
        record._open_since = None
        record.last_seen = now

    def record_of(self, peer: str) -> Optional[EncounterRecord]:
        return self._records.get(peer)

    # -- scoring -------------------------------------------------------------------
    def score(self, peer: str, now: float) -> float:
        record = self._records.get(peer)
        if record is None or record.last_seen is None:
            return 0.0
        duration = record.total_duration
        if record._open_since is not None:
            duration += max(0.0, now - record._open_since)
        frequency = 1.0 - math.exp(-record.count / self.count_scale)
        length = 1.0 - math.exp(-duration / self.duration_scale)
        recency = math.exp(-max(0.0, now - record.last_seen) / self.recency_scale)
        w_f, w_d, w_r = self.weights
        return w_f * frequency + w_d * length + w_r * recency

    def ranked(self, now: float) -> List[tuple]:
        """(peer, score) pairs, most trusted first."""
        return sorted(
            ((peer, self.score(peer, now)) for peer in self._records),
            key=lambda kv: -kv[1],
        )


class TrustGatedRouting(RoutingProtocol):
    """Wraps any protocol; refuses to relay through low-trust peers.

    Only *relayed* content is gated — a peer may always fetch messages the
    local user authored (the author vouches for its own content), and all
    receive-side behaviour is the inner protocol's.  This is the
    "integrating trust measurements within the routing schemes" extension
    the paper sketches in §IV.
    """

    def __init__(self, inner: RoutingProtocol, min_trust: float = 0.25,
                 trust: Optional[TrustManager] = None) -> None:
        super().__init__()
        if not 0.0 <= min_trust <= 1.0:
            raise ValueError(f"min_trust must be in [0, 1], got {min_trust}")
        self.inner = inner
        self.min_trust = min_trust
        self.trust = trust or TrustManager()
        self.name = f"trusted-{inner.name}"
        self.refused = 0

    def attach(self, services: RouterServices) -> None:
        super().attach(services)
        self.inner.attach(services)

    def detach(self) -> None:
        self.inner.detach()
        super().detach()

    # -- events: keep trust features fresh, then delegate ---------------------------
    def on_peer_discovered(self, peer_user: str, advert: Dict[str, int]) -> None:
        self.inner.on_peer_discovered(peer_user, advert)

    def on_peer_secured(self, peer_user: str) -> None:
        self.trust.encounter_started(peer_user, self.services.now())
        self.inner.on_peer_secured(peer_user)

    def on_peer_lost(self, peer_user: str) -> None:
        self.trust.encounter_ended(peer_user, self.services.now())
        self.inner.on_peer_lost(peer_user)

    def on_message_received(self, message: StoredMessage, from_user: str) -> bool:
        return self.inner.on_message_received(message, from_user)

    def on_control(self, peer_user: str, payload: bytes) -> None:
        self.inner.on_control(peer_user, payload)

    # -- the gate ----------------------------------------------------------------------
    def serve_request(
        self, peer_user: str, author_id: str, numbers: List[int]
    ) -> List[StoredMessage]:
        served = self.inner.serve_request(peer_user, author_id, numbers)
        if author_id == self.services.user_id:
            return served  # own content is never gated
        if self.trust.score(peer_user, self.services.now()) >= self.min_trust:
            return served
        self.refused += len(served)
        return []

    def advertisement_marks(self) -> Dict[str, int]:
        return self.inner.advertisement_marks()
