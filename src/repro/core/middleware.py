"""The SOSMiddleware facade (paper §III-A's API surface).

"The SOS Middleware provides a number of API's for sending/receiving
data, surrounding user notification, routing protocol selection, and
security and privacy preferences.  Existing mobile applications can
simply add the SOS middleware as a framework and start using the
aforementioned API's."

One instance runs inside each application (per-app instance, §III).  The
application supplies provisioned credentials (from the one-time sign-up,
:mod:`repro.alleyoop.signup`), a device binding, and a delegate; it then:

* calls :meth:`SOSMiddleware.send` to publish data opportunistically,
* receives verified data via ``delegate.sos_message_received``,
* reads/watches nearby users via :meth:`surrounding_users` and
  ``delegate.sos_surrounding_users_changed``,
* toggles schemes at runtime via :meth:`select_protocol`,
* updates the interest set via :meth:`set_interests` (AlleyOop wires its
  follow list here, which is what interest-based routing consumes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.adhoc import AdHocManager
from repro.core.config import SosConfig
from repro.core.delegates import SosDelegate
from repro.core.errors import NotSignedUpError
from repro.core.message_manager import MessageManager
from repro.core.routing.registry import RoutingRegistry
from repro.core.wire import canonical_message_bytes
from repro.crypto.drbg import RandomSource
from repro.mpc.framework import MpcFramework
from repro.pki.keystore import KeyStore
from repro.sim.engine import Simulator
from repro.storage.messagestore import MessageStore, StoredMessage


class SOSMiddleware:
    """The embeddable middleware instance."""

    def __init__(
        self,
        sim: Simulator,
        framework: MpcFramework,
        device_id: str,
        user_id: str,
        keystore: KeyStore,
        rng: RandomSource,
        config: Optional[SosConfig] = None,
        delegate: Optional[SosDelegate] = None,
        registry: Optional[RoutingRegistry] = None,
    ) -> None:
        if not keystore.provisioned:
            raise NotSignedUpError(
                "complete the one-time sign-up (repro.alleyoop.signup) before "
                "creating the middleware"
            )
        self.sim = sim
        self.config = config or SosConfig()
        self.user_id = user_id
        self.registry = registry or RoutingRegistry.with_builtins()
        self.store = MessageStore(capacity_bytes=self.config.buffer_capacity_bytes)
        self.adhoc = AdHocManager(
            sim=sim,
            framework=framework,
            device_id=device_id,
            user_id=user_id,
            keystore=keystore,
            config=self.config,
            rng=rng,
        )
        self.messages = MessageManager(sim, self.adhoc, self.store, delegate=delegate)
        self._started = False
        self.select_protocol(self.config.routing_protocol)

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Go on-air: begin advertising and browsing."""
        if not self._started:
            self._started = True
            self.adhoc.start()
            self.messages.refresh_advertisement()

    def stop(self) -> None:
        if self._started:
            self._started = False
            self.adhoc.stop()

    def crash(self) -> None:
        """Abrupt device loss (fault injection): volatile state is gone,
        durable state (keystore, message store) survives for reboot."""
        self._started = False
        self.adhoc.crash()
        self.messages.reset_volatile()

    def reboot(self) -> None:
        """Come back up after :meth:`crash`: go on-air again and republish
        the advertisement from the (durable) message store."""
        self.start()

    # -- routing protocol selection -------------------------------------------------
    @property
    def protocol_name(self) -> str:
        return self.messages.protocol.name

    def available_protocols(self) -> List[str]:
        return self.registry.names()

    def select_protocol(self, name: str) -> None:
        """Runtime scheme toggle (paper §VII)."""
        self.messages.set_protocol(self.registry.create(name))

    # -- interests --------------------------------------------------------------------
    def set_interests(self, user_ids: Set[str]) -> None:
        """Set the users whose content this node wants (IB routing's
        subscription set).

        The call replaces the whole set, so bulk subscription changes
        (AlleyOop's ``follow_many`` bootstrap path) cost one call rather
        than one per edge — at N=2000 the per-edge pattern spends
        O(sum of squared degrees) copying ever-larger interest sets.
        """
        self.messages.set_subscriptions(set(user_ids))

    @property
    def interests(self) -> frozenset:
        return self.messages.subscriptions

    # -- sending ------------------------------------------------------------------------
    def send(self, body: bytes) -> StoredMessage:
        """Publish data opportunistically.

        Assigns the next MessageNumber, signs the canonical bytes with the
        user's private key, attaches the user's certificate (so forwarders
        can prove provenance, Fig. 3b), stores locally and re-advertises.
        Dissemination then happens automatically on encounters.
        """
        keystore = self.adhoc.keystore
        number = self.store.highest_number(self.user_id) + 1
        created_at = self.sim.now
        canonical = canonical_message_bytes(self.user_id, number, created_at, body)
        message = StoredMessage(
            author_id=self.user_id,
            number=number,
            created_at=created_at,
            body=body,
            signature=keystore.private_key.sign(canonical),
            author_cert=keystore.own_certificate.encode(),
            hops=0,
            received_at=created_at,
        )
        if not self.store.add(message):
            raise RuntimeError(f"message number collision at {number}")
        # Protocols with copy budgets (spray-and-wait) learn about the new
        # message here; duck-typed so the core stays protocol-agnostic.
        grant = getattr(self.messages.protocol, "grant_initial_tokens", None)
        if grant is not None:
            grant(self.user_id, number)
        self.sim.trace.emit(
            created_at,
            "message",
            "created",
            owner=self.user_id,
            author=self.user_id,
            number=number,
            size=len(body),
        )
        if self._started:
            self.messages.refresh_advertisement()
        return message

    # -- surrounding users -----------------------------------------------------------------
    def surrounding_users(self) -> List[str]:
        """Nearby users currently discovered (paper's surrounding-user
        notification API; change events arrive via the delegate)."""
        return self.adhoc.surrounding_users()

    def verified_users(self) -> List[str]:
        """Nearby users that completed the certificate handshake."""
        return self.adhoc.secured_users()

    # -- security preferences -----------------------------------------------------------------
    def set_require_encryption(self, required: bool) -> None:
        """Security/privacy preference toggle (§III-A).  The field study
        ran with encryption required; disabling exists for the security
        ablation bench."""
        self.config.require_encryption = required

    @property
    def security_stats(self) -> Dict[str, int]:
        return self.adhoc.stats_snapshot()
