"""The SOS wire protocol.

All routing-layer and message-layer traffic between two connected peers is
carried in :class:`SosPacket` frames with a deterministic binary encoding
(the "common format for both layers to interpret" that the paper assigns
to the message manager, §III-C).

Packet kinds
------------
``CERT``
    Certificate exchange right after session establishment; the payload is
    the sender's certificate (public material, sent in the clear inside
    the MPC session).
``REQUEST``
    Ask the peer for specific message numbers of one author.
``DATA``
    One message: author id, number, creation time, body, the *author's*
    signature over the canonical message bytes, the author's certificate
    (so provenance verifies offline even when forwarded, paper Fig. 3b),
    and the hop count of the sending copy.
``CONTROL``
    Routing-protocol-private payload (e.g. PRoPHET predictability vectors)
    tagged with the protocol name.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.storage.messagestore import StoredMessage


class PacketKind(Enum):
    CERT = 1
    REQUEST = 2
    DATA = 3
    CONTROL = 4


class WireError(ValueError):
    """Malformed frame."""


def _pack_bytes(value: bytes) -> bytes:
    return len(value).to_bytes(4, "big") + value


def _pack_str(value: str) -> bytes:
    return _pack_bytes(value.encode("utf-8"))


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise WireError("truncated frame")
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def read_bytes(self) -> bytes:
        return self.take(int.from_bytes(self.take(4), "big"))

    def read_str(self) -> str:
        try:
            return self.read_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"invalid UTF-8 in frame: {exc}") from exc

    def read_u32(self) -> int:
        return int.from_bytes(self.take(4), "big")

    def read_f64(self) -> float:
        return struct.unpack(">d", self.take(8))[0]

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)


@dataclass(frozen=True)
class SosPacket:
    """A decoded protocol frame."""

    kind: PacketKind
    sender: str
    fields: Dict[str, object] = field(default_factory=dict)

    # -- constructors -----------------------------------------------------------
    @classmethod
    def cert(cls, sender: str, certificate: bytes, forwarded: bool = False) -> "SosPacket":
        return cls(kind=PacketKind.CERT, sender=sender,
                   fields={"certificate": certificate, "forwarded": forwarded})

    @classmethod
    def request(cls, sender: str, author_id: str, numbers: List[int]) -> "SosPacket":
        return cls(kind=PacketKind.REQUEST, sender=sender,
                   fields={"author_id": author_id, "numbers": list(numbers)})

    @classmethod
    def data(cls, sender: str, message: StoredMessage) -> "SosPacket":
        return cls(kind=PacketKind.DATA, sender=sender, fields={"message": message})

    @classmethod
    def control(cls, sender: str, protocol: str, payload: bytes) -> "SosPacket":
        return cls(kind=PacketKind.CONTROL, sender=sender,
                   fields={"protocol": protocol, "payload": payload})

    # -- encoding --------------------------------------------------------------
    def encode(self) -> bytes:
        head = bytes([self.kind.value]) + _pack_str(self.sender)
        if self.kind is PacketKind.CERT:
            body = _pack_bytes(self.fields["certificate"]) + (
                b"\x01" if self.fields.get("forwarded") else b"\x00"
            )
        elif self.kind is PacketKind.REQUEST:
            numbers = self.fields["numbers"]
            body = _pack_str(self.fields["author_id"]) + len(numbers).to_bytes(4, "big")
            body += b"".join(n.to_bytes(4, "big") for n in numbers)
        elif self.kind is PacketKind.DATA:
            message: StoredMessage = self.fields["message"]
            body = (
                _pack_str(message.author_id)
                + message.number.to_bytes(4, "big")
                + struct.pack(">d", message.created_at)
                + _pack_bytes(message.body)
                + _pack_bytes(message.signature)
                + _pack_bytes(message.author_cert)
                + message.hops.to_bytes(2, "big")
            )
        elif self.kind is PacketKind.CONTROL:
            body = _pack_str(self.fields["protocol"]) + _pack_bytes(self.fields["payload"])
        else:  # pragma: no cover - enum is closed
            raise WireError(f"unknown kind {self.kind!r}")
        return head + body

    @classmethod
    def decode(cls, data: bytes) -> "SosPacket":
        if not data:
            raise WireError("empty frame")
        try:
            kind = PacketKind(data[0])
        except ValueError:
            raise WireError(f"unknown packet kind {data[0]}") from None
        reader = _Reader(data[1:])
        sender = reader.read_str()
        if kind is PacketKind.CERT:
            certificate = reader.read_bytes()
            forwarded = reader.take(1) == b"\x01"
            return cls.cert(sender, certificate, forwarded)
        if kind is PacketKind.REQUEST:
            author_id = reader.read_str()
            count = reader.read_u32()
            if count > 1_000_000:
                raise WireError(f"absurd request count {count}")
            numbers = [reader.read_u32() for _ in range(count)]
            return cls.request(sender, author_id, numbers)
        if kind is PacketKind.DATA:
            author_id = reader.read_str()
            number = reader.read_u32()
            created_at = reader.read_f64()
            body = reader.read_bytes()
            signature = reader.read_bytes()
            author_cert = reader.read_bytes()
            hops = int.from_bytes(reader.take(2), "big")
            message = StoredMessage(
                author_id=author_id,
                number=number,
                created_at=created_at,
                body=body,
                signature=signature,
                author_cert=author_cert,
                hops=hops,
            )
            return cls.data(sender, message)
        protocol = reader.read_str()
        payload = reader.read_bytes()
        return cls.control(sender, protocol, payload)


def canonical_message_bytes(author_id: str, number: int, created_at: float, body: bytes) -> bytes:
    """The byte string an author signs — identical on every device, so any
    node can verify provenance of a forwarded message (paper §IV: "verify
    the originating source of the information being forwarded")."""
    return (
        b"SOSM\x01"
        + _pack_str(author_id)
        + number.to_bytes(4, "big")
        + struct.pack(">d", created_at)
        + _pack_bytes(body)
    )
