"""Lint framework: findings, rule protocol, suppressions, file runner.

The framework is deliberately dependency-free (``ast`` + ``re``): it has
to run in the no-numpy CI lane and inside the tier-1 suite.  Rules are
small classes registered by :func:`repro.analysis.rules.default_rules`;
each sees one parsed module at a time plus, optionally, a finalisation
pass over the whole scan for cross-file checks (the trace-event
catalogue needs to know every emitting site before it can report an
event as unemitted).

Code domains
============

Not every file plays by sim rules.  The config classifies each path as

* ``sim`` — simulation code whose behaviour feeds the trace.  All five
  rule families apply.  Default: everything under ``src/repro`` except
  the carve-outs below.
* ``tool`` — developer tooling (this package, ``scripts/``,
  ``benchmarks/``, ``tests/``), where wall-clock timing and ambient
  entropy are legitimate.  Only the trace-registry family applies.

``crypto/drbg.py`` is the one sim module allowed to touch
``os.urandom``: it *defines* the boundary between real entropy and the
deterministic world (``SystemRandomSource`` wraps the OS; everything
else must go through a seeded DRBG).

Suppressions
============

A finding on line N is silenced by a comment on line N (or a
comment-only line N-1)::

    for device in self.devices.values():  # repro: ignore[nondet-iter] -- order cannot reach the trace: ...

Strict mode also reports suppressions with no ``-- justification``
text, suppressions naming unknown rules, and suppressions that matched
no finding (so stale ignores cannot accumulate).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Matches suppression comments: ignore[...] with one or more
#: comma-separated rule names, then an optional ``--`` justification.
_SUPPRESSION = re.compile(
    r"#\s*repro:\s*ignore\[(?P<rules>[A-Za-z0-9_\-, ]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)

#: Paths classified as tooling inside the default repo layout.  The
#: bench package measures the simulation from outside (wall-clock
#: sampling, host fingerprints, git calls are its whole job); nothing
#: in it feeds a trace, so it plays by tool rules like the analysis
#: package itself.
DEFAULT_TOOL_GLOBS = (
    "src/repro/analysis/*",
    "src/repro/analysis/**/*",
    "src/repro/bench/*",
    "src/repro/bench/**/*",
    "scripts/*",
    "tests/*",
    "tests/**/*",
    "benchmarks/*",
    "examples/*",
    "setup.py",
)

#: Sim modules allowed to consume operating-system entropy.
DEFAULT_ENTROPY_ALLOWED = ("src/repro/crypto/drbg.py",)


@dataclass(frozen=True)
class Finding:
    """One lint hit, pinned to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: ignore[...]`` comment."""

    path: str
    line: int
    rules: Tuple[str, ...]
    reason: str

    def covers(self, finding: Finding) -> bool:
        return finding.path == self.path and finding.line == self.line and (
            finding.rule in self.rules
        )


@dataclass(frozen=True)
class LintConfig:
    """Path classification for one repository root."""

    root: Path
    tool_globs: Tuple[str, ...] = DEFAULT_TOOL_GLOBS
    entropy_allowed: Tuple[str, ...] = DEFAULT_ENTROPY_ALLOWED
    #: Directory whose full coverage arms the cross-file registry check
    #: (scanning a single file must not report every other event as
    #: unemitted).
    sim_root: str = "src/repro"

    def rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def domain_of(self, rel_path: str) -> str:
        for pattern in self.tool_globs:
            if fnmatch(rel_path, pattern):
                return "tool"
        return "sim"

    def allows_entropy(self, rel_path: str) -> bool:
        return any(fnmatch(rel_path, pattern) for pattern in self.entropy_allowed)


@dataclass
class ModuleContext:
    """One parsed module, handed to every rule."""

    rel_path: str
    domain: str
    source: str
    tree: ast.Module
    config: LintConfig
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def entropy_allowed(self) -> bool:
        return self.config.allows_entropy(self.rel_path)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.name,
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` (the suppression identifier),
    :attr:`description` and :attr:`domains`, and implement
    :meth:`check`; cross-file rules may also implement
    :meth:`finalize`, which runs once after every module was checked.
    """

    name: str = ""
    description: str = ""
    #: Domains the rule applies to ("sim", "tool").
    domains: frozenset = frozenset({"sim"})

    @property
    def produces(self) -> Tuple[str, ...]:
        """Every finding name this rule can emit (suppression targets)."""
        return (self.name,)

    def applies_to(self, module: ModuleContext) -> bool:
        return module.domain in self.domains

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finalize(
        self, modules: Sequence[ModuleContext], full_sim_scan: bool
    ) -> Iterator[Finding]:
        return iter(())


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    suppressed: List[Finding]
    suppressions: List[Suppression]
    files_scanned: int
    #: Strict-mode hygiene findings about the suppressions themselves.
    hygiene: List[Finding] = field(default_factory=list)

    def all_findings(self, strict: bool) -> List[Finding]:
        out = list(self.findings)
        if strict:
            out.extend(self.hygiene)
        return sorted(out, key=Finding.sort_key)

    def ok(self, strict: bool) -> bool:
        return not self.all_findings(strict)


def _comment_lines(source: str, lines: Sequence[str]) -> Iterator[Tuple[int, str]]:
    """(line number, comment text) for every real comment token.

    Tokenising (rather than regex-scanning raw lines) keeps suppression
    examples inside docstrings from being parsed as live suppressions.
    Falls back to the raw scan only if tokenisation fails — the file
    already parsed as Python by the time we get here, so it should not.
    """
    import io
    import tokenize

    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parsed OK upstream
        for number, line in enumerate(lines, start=1):
            yield number, line


def _parse_suppressions(
    rel_path: str, source: str, lines: Sequence[str]
) -> List[Suppression]:
    out = []
    for number, comment in _comment_lines(source, lines):
        match = _SUPPRESSION.search(comment)
        if match is None:
            continue
        rules = tuple(
            name.strip() for name in match.group("rules").split(",") if name.strip()
        )
        out.append(
            Suppression(
                path=rel_path,
                line=number,
                rules=rules,
                reason=(match.group("reason") or "").strip(),
            )
        )
    return out


def _suppression_lines(
    suppressions: Sequence[Suppression], lines: Sequence[str]
) -> Dict[int, Suppression]:
    """Map effective line -> suppression.

    A suppression on a comment-only line covers the next line of code,
    so long justifications can sit above the statement they silence.
    """
    by_line: Dict[int, Suppression] = {}
    for suppression in suppressions:
        index = suppression.line - 1
        text = lines[index] if index < len(lines) else ""
        if text.lstrip().startswith("#"):
            # Comment-only line: attach to the next non-blank line.
            target = suppression.line + 1
            while target <= len(lines) and not lines[target - 1].strip():
                target += 1
            by_line[target] = suppression
        else:
            by_line[suppression.line] = suppression
    return by_line


def _apply_suppressions(
    findings: Sequence[Finding],
    suppressions: Sequence[Suppression],
    lines_by_path: Dict[str, Sequence[str]],
) -> Tuple[List[Finding], List[Finding], Dict[Tuple[str, int], bool]]:
    """Split findings into (active, suppressed) and track suppression use."""
    by_path: Dict[str, Dict[int, Suppression]] = {}
    used: Dict[Tuple[str, int], bool] = {
        (s.path, s.line): False for s in suppressions
    }
    for suppression in suppressions:
        lines = lines_by_path.get(suppression.path, ())
        by_path.setdefault(suppression.path, {}).update(
            _suppression_lines([suppression], lines)
        )
    active: List[Finding] = []
    silenced: List[Finding] = []
    for finding in findings:
        suppression = by_path.get(finding.path, {}).get(finding.line)
        if suppression is not None and finding.rule in suppression.rules:
            silenced.append(finding)
            used[(suppression.path, suppression.line)] = True
        else:
            active.append(finding)
    return active, silenced, used


def _hygiene_findings(
    suppressions: Sequence[Suppression],
    used: Dict[Tuple[str, int], bool],
    known_rules: Iterable[str],
) -> List[Finding]:
    known = set(known_rules)
    out: List[Finding] = []
    for suppression in suppressions:
        if not suppression.reason:
            out.append(
                Finding(
                    rule="suppression-no-reason",
                    path=suppression.path,
                    line=suppression.line,
                    message="suppression must justify itself: "
                    "# repro: ignore[rule] -- why this is safe",
                )
            )
        for name in suppression.rules:
            if name not in known:
                out.append(
                    Finding(
                        rule="suppression-unknown-rule",
                        path=suppression.path,
                        line=suppression.line,
                        message=f"suppression names unknown rule {name!r}",
                    )
                )
        if not used.get((suppression.path, suppression.line), False):
            out.append(
                Finding(
                    rule="suppression-unused",
                    path=suppression.path,
                    line=suppression.line,
                    message="suppression matches no finding (stale ignore — "
                    "delete it or fix the rule name)",
                )
            )
    return out


#: Hygiene rule names, addressable from ``--list-rules`` and docs.
HYGIENE_RULES = (
    "suppression-no-reason",
    "suppression-unknown-rule",
    "suppression-unused",
)


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _load_module(
    path: Path, config: LintConfig
) -> Tuple[Optional[ModuleContext], Optional[Finding]]:
    rel_path = config.rel(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, Finding("parse-error", rel_path, 1, f"unreadable: {exc}")
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return None, Finding(
            "parse-error", rel_path, exc.lineno or 1, f"syntax error: {exc.msg}"
        )
    return (
        ModuleContext(
            rel_path=rel_path,
            domain=config.domain_of(rel_path),
            source=source,
            tree=tree,
            config=config,
        ),
        None,
    )


def _covers_sim_root(paths: Sequence[Path], config: LintConfig) -> bool:
    sim_root = (config.root / config.sim_root).resolve()
    for path in paths:
        resolved = path.resolve()
        if resolved == sim_root or sim_root.is_relative_to(resolved):
            return True
    return False


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with ``rules``.

    Returns a :class:`LintReport`; callers decide strictness at render
    time (`report.all_findings(strict=...)`), so one scan serves both
    the advisory and the CI behaviour.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()

    modules: List[ModuleContext] = []
    findings: List[Finding] = []
    suppressions: List[Suppression] = []
    lines_by_path: Dict[str, Sequence[str]] = {}
    for path in _iter_python_files(paths):
        module, error = _load_module(path, config)
        if error is not None:
            findings.append(error)
            continue
        assert module is not None
        modules.append(module)
        lines_by_path[module.rel_path] = module.lines
        suppressions.extend(
            _parse_suppressions(module.rel_path, module.source, module.lines)
        )
        for rule in rules:
            if rule.applies_to(module):
                findings.extend(rule.check(module))

    full_sim_scan = _covers_sim_root(paths, config)
    for rule in rules:
        findings.extend(rule.finalize(modules, full_sim_scan))

    active, silenced, used = _apply_suppressions(
        findings, suppressions, lines_by_path
    )
    known_rules = [name for rule in rules for name in rule.produces]
    hygiene = _hygiene_findings(suppressions, used, known_rules)
    return LintReport(
        findings=sorted(active, key=Finding.sort_key),
        suppressed=sorted(silenced, key=Finding.sort_key),
        suppressions=suppressions,
        files_scanned=len(modules),
        hygiene=hygiene,
    )


def lint_source(
    source: str,
    rules: Optional[Sequence[Rule]] = None,
    rel_path: str = "src/repro/snippet.py",
    root: Optional[Path] = None,
) -> List[Finding]:
    """Lint a source string as if it lived at ``rel_path`` (test helper).

    Suppressions apply; returns the active findings only.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    config = LintConfig(root=root or Path("."))
    tree = ast.parse(source, filename=rel_path)
    module = ModuleContext(
        rel_path=rel_path,
        domain=config.domain_of(rel_path),
        source=source,
        tree=tree,
        config=config,
    )
    findings: List[Finding] = []
    for rule in rules:
        if rule.applies_to(module):
            findings.extend(rule.check(module))
    for rule in rules:
        findings.extend(rule.finalize([module], False))
    suppressions = _parse_suppressions(module.rel_path, module.source, module.lines)
    active, _, _ = _apply_suppressions(
        findings, suppressions, {module.rel_path: module.lines}
    )
    return sorted(active, key=Finding.sort_key)
