"""Shared AST utilities for the lint rules.

Nothing here is clever: rules need the same three questions answered
over and over — *what does this name import*, *which function am I
in*, and *what does this function call* — so the answers are computed
once per module and shared.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> imported module for ``import X [as Y]`` statements.

    Dotted imports map their binding name to the full dotted path
    (``import os.path`` binds ``os`` -> ``os``).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    aliases[name.name.split(".")[0]] = name.name.split(".")[0]
    return aliases


def from_imports(tree: ast.Module) -> Dict[str, Tuple[str, str]]:
    """Local name -> (module, original name) for ``from M import N``."""
    imports: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                imports[name.asname or name.name] = (node.module, name.name)
    return imports


def call_name(node: ast.Call) -> Optional[str]:
    """The bare name a call resolves through (``f()`` -> ``f``,
    ``self.f()`` / ``obj.f()`` -> ``f``), or None for computed calls."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None if the chain has a non-name root."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


@dataclass
class FunctionInfo:
    """Summary of one function for the call-graph analyses."""

    node: FunctionNode
    qualname: str
    #: Qualname of the enclosing function, if nested.
    parent: Optional[str]
    #: Bare names of everything the body calls (``f`` and ``self.f``).
    calls: Set[str] = field(default_factory=set)
    #: The body contains a direct order-sensitive sink (emit/schedule/
    #: RNG draw) — seeds the trace-reaching closure.
    has_sink: bool = False


#: Method names that make iteration order observable: trace emission,
#: event scheduling, and RNG draws (a draw consumed in iteration order
#: perturbs every later draw on that stream).
SINK_METHODS = frozenset({"emit", "schedule_at", "schedule_in"})
RNG_DRAW_METHODS = frozenset(
    {
        "random", "randint", "randrange", "getrandbits", "randbytes",
        "choice", "choices", "sample", "shuffle", "uniform", "triangular",
        "gauss", "normalvariate", "lognormvariate", "expovariate",
        "vonmisesvariate", "paretovariate", "weibullvariate", "betavariate",
        "gammavariate",
    }
)


class _FunctionCollector(ast.NodeVisitor):
    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self._stack: List[str] = []
        #: Qualnames of enclosing functions (class frames excluded).
        self._func_stack: List[str] = []

    def _visit_function(self, node: FunctionNode) -> None:
        qualname = ".".join(self._stack + [node.name]) if self._stack else node.name
        parent = self._func_stack[-1] if self._func_stack else None
        info = FunctionInfo(node=node, qualname=qualname, parent=parent)
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                name = call_name(child)
                if name is not None:
                    info.calls.add(name)
                    if name in SINK_METHODS or name in RNG_DRAW_METHODS:
                        info.has_sink = True
        self.functions[qualname] = info
        self._stack.append(node.name)
        self._func_stack.append(qualname)
        self.generic_visit(node)
        self._func_stack.pop()
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()


def collect_functions(tree: ast.Module) -> Dict[str, FunctionInfo]:
    """Every function/method in the module, keyed by qualname."""
    collector = _FunctionCollector()
    collector.visit(tree)
    return collector.functions


def trace_reaching_functions(functions: Dict[str, FunctionInfo]) -> Set[str]:
    """Qualnames on an order-sensitive path, within one module.

    A function qualifies when it contains a sink call, transitively
    calls (by bare name, same module) a function that does, or is a
    direct callee of one — the last hop catches helpers like
    ``Medium._mobility_groups`` whose ordering feeds an emitting tick
    without emitting themselves.
    """
    by_bare: Dict[str, List[FunctionInfo]] = {}
    for info in functions.values():
        by_bare.setdefault(info.node.name, []).append(info)

    marked: Set[str] = {q for q, info in functions.items() if info.has_sink}
    changed = True
    while changed:
        changed = False
        for qualname, info in functions.items():
            if qualname in marked:
                continue
            for called in info.calls:
                if any(c.qualname in marked for c in by_bare.get(called, ())):
                    marked.add(qualname)
                    changed = True
                    break

    helpers: Set[str] = set()
    for qualname in marked:
        for called in functions[qualname].calls:
            for callee in by_bare.get(called, ()):
                helpers.add(callee.qualname)
    return marked | helpers


def walk_with_parents(
    root: ast.AST,
) -> Iterator[Tuple[ast.AST, Optional[ast.AST]]]:
    """Yield (node, parent) over the subtree."""
    stack: List[Tuple[ast.AST, Optional[ast.AST]]] = [(root, None)]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        for child in ast.iter_child_nodes(node):
            stack.append((child, node))
