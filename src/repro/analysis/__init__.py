"""Static analysis for determinism and simulation hygiene (``repro lint``).

The repo's load-bearing invariant — byte-identical traces under a fixed
seed across every optimisation knob — is enforced dynamically by the
trace-equivalence benchmarks.  This package enforces it *statically*, at
review time, by scanning the tree for the hazard classes that have
actually produced nondeterminism bugs here (unsorted link emission,
bare ``except`` swallowing diagnostics, wall-clock leaking into
sim-time code) plus the classes that sharded/multiprocess execution
will make harder to debug after the fact (fork-unsafe workers,
unseeded RNG streams).

Entry points
============

* ``repro lint [paths...]`` — the CLI lane (see :mod:`repro.cli`).
* :func:`repro.analysis.core.lint_paths` — the programmatic API the
  tests and the CI lane use.
* :mod:`repro.analysis.trace_registry` — the declared catalogue of
  every trace event the simulation may emit; rule family 2 checks the
  tree against it and ``docs/TRACE_EVENTS.md`` is generated from it.

Rule families
=============

1. **Nondeterminism hazards** (``nondet-*``) — ambient entropy, wall
   clock, unsorted set/dict-view iteration on trace-reaching paths,
   ``hash()``/``id()`` in sort keys.
2. **Trace-event registry** (``trace-*``) — every ``emit`` literal must
   name a catalogued event, and every catalogued event must have an
   emitting site.
3. **Fork safety** (``fork-*``) — workers handed to
   ``repro.sim.parallel.parallel_map`` must be module-level pure
   functions, not closures over live simulation state.
4. **Exception hygiene** (``except-swallow``) — broad handlers in sim
   code must re-raise or emit a trace diagnostic.
5. **Seeded-stream discipline** (``rng-*``) — RNGs in sim code come
   from a named seeded source, never from ambient entropy.

Findings are suppressed per line with ``# repro: ignore[rule] -- why``;
strict mode (the CI lane) additionally rejects suppressions that carry
no justification, name unknown rules, or no longer match a finding.
"""

from repro.analysis.core import (
    Finding,
    LintConfig,
    LintReport,
    Rule,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import default_rules

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "default_rules",
    "lint_paths",
    "lint_source",
]
