"""``repro lint`` command implementation (rendering + exit codes).

Kept out of :mod:`repro.cli` so the CI lane and the tier-1 tests can
call :func:`run_lint` without argparse in the way.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from repro.analysis.core import HYGIENE_RULES, LintConfig, LintReport, lint_paths
from repro.analysis.rules import default_rules

DEFAULT_LINT_PATHS = ("src",)


def find_repo_root(start: Optional[Path] = None) -> Path:
    """The nearest ancestor containing ``src/repro`` (else the CWD).

    The lint config is expressed in repo-relative paths, so ``repro
    lint`` must work from any subdirectory of a checkout.
    """
    probe = (start or Path.cwd()).resolve()
    for candidate in (probe, *probe.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return probe


def run_lint(
    paths: Sequence[str],
    strict: bool = False,
    output_format: str = "text",
    root: Optional[Path] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """Lint ``paths`` (repo-relative or absolute); return the exit code."""
    stream = stream or sys.stdout
    root = find_repo_root(root)
    config = LintConfig(root=root)
    resolved: List[Path] = []
    for raw in paths or DEFAULT_LINT_PATHS:
        path = Path(raw)
        resolved.append(path if path.is_absolute() else root / path)
    missing = [p for p in resolved if not p.exists()]
    if missing:
        print(f"repro lint: no such path: {missing[0]}", file=sys.stderr)
        return 2

    report = lint_paths(resolved, config, default_rules())
    findings = report.all_findings(strict)
    if output_format == "json":
        print(json.dumps(_to_json(report, strict), indent=2, sort_keys=True), file=stream)
    else:
        for finding in findings:
            print(finding.render(), file=stream)
        summary = (
            f"repro lint: {report.files_scanned} files, "
            f"{len(findings)} finding(s), "
            f"{len(report.suppressed)} suppressed"
        )
        if strict:
            summary += " [strict]"
        print(summary, file=stream)
    return 1 if findings else 0


def _to_json(report: LintReport, strict: bool) -> dict:
    return {
        "files_scanned": report.files_scanned,
        "strict": strict,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in report.all_findings(strict)
        ],
        "suppressed": [
            {"rule": f.rule, "path": f.path, "line": f.line}
            for f in report.suppressed
        ],
    }


def list_rules(stream: Optional[TextIO] = None) -> int:
    """Print every rule name and description (``repro lint --list-rules``)."""
    stream = stream or sys.stdout
    for rule in default_rules():
        print(f"{rule.name:24} {rule.description}", file=stream)
        for extra in rule.produces:
            if extra != rule.name:
                print(f"{extra:24} (variant of {rule.name})", file=stream)
    for name in HYGIENE_RULES:
        print(f"{name:24} (strict mode: suppression hygiene)", file=stream)
    return 0
