"""Rule family 4: exception hygiene in sim code.

The bug class fixed by hand twice already (PRs 5 and 6): a broad
``except`` around a sim-path operation that swallows the error, so a
malformed payload or a failed store write disappears instead of
surfacing in the trace.  Narrow handlers (``except ValueError``) are
encouraged and never flagged; a *broad* handler — bare ``except:``,
``except Exception``, ``except BaseException`` — must either re-raise
or emit a trace diagnostic so the failure is accounted for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True  # bare except
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(element, ast.Name) and element.id in _BROAD
            for element in node.elts
        )
    return False


def _accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or emits a trace diagnostic."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        ):
            return True
    return False


class ExceptSwallowRule(Rule):
    name = "except-swallow"
    description = (
        "broad except in sim code must re-raise or emit a trace diagnostic"
    )
    domains = frozenset({"sim"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _accounts_for_failure(node):
                continue
            what = (
                "bare except"
                if node.type is None
                else f"except {ast.unparse(node.type)}"
            )
            yield module.finding(
                self, node,
                f"{what} neither re-raises nor emits a trace diagnostic: the "
                "failure vanishes from the record (the PR 5/6 bug class) — "
                "narrow the exception type, re-raise, or emit a diagnostic "
                "event",
            )
