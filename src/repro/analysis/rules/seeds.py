"""Rule family 5: seeded-stream discipline.

Being *free of ambient entropy* (family 1) is necessary but not
sufficient: a ``random.Random()`` constructed without a seed pulls its
state from the OS anyway, and a seed derived from the wall clock or
``os.urandom`` launders entropy through a "seeded" constructor.  In
sim code every RNG must descend from a named source: the simulator's
``RandomStreams`` (``sim.streams.get(name)``), an
``HmacDrbg.spawn(label)`` substream, or an explicit
``random.Random(seed)`` whose seed is itself derived data.

``rng-unseeded`` flags, in sim code:

* ``random.Random()`` with no arguments (OS-seeded),
* ``random.SystemRandom(...)`` (OS entropy regardless of arguments),
* ``numpy.random.default_rng()`` with no arguments, and module-level
  ``numpy.random.*`` draws (the shared legacy global state),
* a seed argument that is itself a wall-clock or entropy call
  (``random.Random(time.time())``),
* ``SystemRandomSource(...)`` outside the DRBG boundary module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import astutil
from repro.analysis.core import Finding, ModuleContext, Rule

_ENTROPY_SEED_FUNCS = frozenset({"time", "time_ns", "monotonic", "perf_counter"})


def _seed_is_entropy(arg: ast.expr) -> bool:
    """True when the seed expression contains a wall-clock/entropy call."""
    for node in ast.walk(arg):
        if not isinstance(node, ast.Call):
            continue
        chain = astutil.attribute_chain(node.func)
        if chain is None:
            continue
        if chain[-1] == "urandom" or chain[0] == "secrets":
            return True
        if len(chain) >= 2 and chain[0] == "time" and chain[-1] in _ENTROPY_SEED_FUNCS:
            return True
    return False


class RngDisciplineRule(Rule):
    name = "rng-unseeded"
    description = (
        "RNGs in sim code must come from a named seeded source "
        "(sim.streams.get, HmacDrbg.spawn, random.Random(seed))"
    )
    domains = frozenset({"sim"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        aliases = astutil.module_aliases(module.tree)
        froms = astutil.from_imports(module.tree)
        numpy_aliases = {
            local for local, mod in aliases.items() if mod == "numpy"
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = astutil.attribute_chain(node.func)
            # random.Random / random.SystemRandom via the module.
            if chain is not None and len(chain) == 2 and aliases.get(chain[0]) == "random":
                if chain[1] == "SystemRandom":
                    yield module.finding(
                        self, node,
                        "random.SystemRandom draws OS entropy regardless of "
                        "arguments; use a seeded stream",
                    )
                elif chain[1] == "Random":
                    yield from self._check_random_ctor(module, node)
            # from random import Random / SystemRandom.
            elif isinstance(node.func, ast.Name):
                origin = froms.get(node.func.id)
                if origin == ("random", "SystemRandom"):
                    yield module.finding(
                        self, node,
                        "random.SystemRandom draws OS entropy regardless of "
                        "arguments; use a seeded stream",
                    )
                elif origin == ("random", "Random"):
                    yield from self._check_random_ctor(module, node)
                elif node.func.id == "SystemRandomSource" and not module.entropy_allowed:
                    yield module.finding(
                        self, node,
                        "SystemRandomSource is the real-entropy boundary for "
                        "deployments; sim code must stay reproducible from "
                        "the master seed (inject HmacDrbg instead)",
                    )
            # numpy.random.*: default_rng() unseeded, or legacy global draws.
            if (
                chain is not None
                and len(chain) >= 3
                and chain[0] in numpy_aliases
                and chain[1] == "random"
            ):
                if chain[2] == "default_rng":
                    if not node.args and not node.keywords:
                        yield module.finding(
                            self, node,
                            "numpy.random.default_rng() without a seed pulls "
                            "OS entropy; pass seed material derived from the "
                            "master seed",
                        )
                    elif any(_seed_is_entropy(arg) for arg in node.args):
                        yield module.finding(
                            self, node,
                            "numpy default_rng seeded from wall clock/entropy "
                            "is still nondeterministic; derive the seed from "
                            "the master seed",
                        )
                elif chain[2] not in {"Generator", "SeedSequence", "Random"}:
                    yield module.finding(
                        self, node,
                        f"numpy.random.{chain[2]}() draws from the shared "
                        "legacy global state; construct a seeded Generator "
                        "instead",
                    )

    def _check_random_ctor(
        self, module: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        if not node.args and not node.keywords:
            yield module.finding(
                self, node,
                "random.Random() without a seed pulls OS entropy; every sim "
                "stream must be constructed from explicit seed material",
            )
            return
        for arg in node.args:
            if _seed_is_entropy(arg):
                yield module.finding(
                    self, node,
                    "random.Random seeded from wall clock/entropy is still "
                    "nondeterministic; derive the seed from the master seed",
                )
