"""Rule family 1: nondeterminism hazards in sim code.

Four rules, all scoped to the ``sim`` domain:

* ``nondet-entropy`` — ambient entropy (module-level ``random.*``,
  ``os.urandom``, ``uuid1/uuid4``, ``secrets``) anywhere outside the
  DRBG boundary module.  Sim randomness must flow from a named, seeded
  stream or the run is unreproducible by construction.
* ``nondet-wallclock`` — host-clock reads (``time.time``,
  ``perf_counter``, ``datetime.now``...) inside sim code.  Simulation
  time is ``sim.now``; wall clock in a sim path couples results to
  host speed (the hazard class fixed by hand in PR 6's fault
  schedules).
* ``nondet-iter`` — iteration over ``set`` / ``dict.values()`` /
  ``dict.keys()`` in a function on a trace-reaching path, without
  ``sorted()``.  Set iteration order depends on ``PYTHONHASHSEED``;
  dict order is insertion order, which silently changes when callers
  reorder (the PR 1 unsorted-link-emission bug class).
* ``nondet-hash-key`` — ``hash()`` / ``id()`` inside a sort key.
  ``hash(str)`` is salted per process and ``id()`` is allocation
  order, so the "sorted" result is stable within a run and different
  across runs — the worst kind of almost-deterministic.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis import astutil
from repro.analysis.core import Finding, ModuleContext, Rule

#: Wall-clock functions in the ``time`` module.
_TIME_FUNCS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
        "localtime", "gmtime",
    }
)
#: Wall-clock constructors on ``datetime.datetime`` / ``datetime.date``.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: ``random``-module constructors that are *not* ambient entropy: the
#: seeded-stream rule (family 5) owns their discipline instead.
_RANDOM_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})

#: Builtins whose arguments are order-insensitive, so a set/dict-view
#: comprehension feeding them directly is safe.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "sum", "len", "min", "max", "any", "all", "dict"}
)


class NondetEntropyRule(Rule):
    name = "nondet-entropy"
    description = (
        "ambient entropy (random.*, os.urandom, uuid1/uuid4, secrets) in sim "
        "code outside the DRBG boundary module"
    )
    domains = frozenset({"sim"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.entropy_allowed:
            return
        aliases = astutil.module_aliases(module.tree)
        froms = astutil.from_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                owner = aliases.get(func.value.id)
                if owner == "random" and func.attr not in _RANDOM_CONSTRUCTORS:
                    yield module.finding(
                        self, node,
                        f"module-level random.{func.attr}() draws from the shared "
                        "ambient RNG; use a named seeded stream "
                        "(sim.streams.get(name) or HmacDrbg.spawn)",
                    )
                elif owner == "os" and func.attr == "urandom":
                    yield module.finding(
                        self, node,
                        "os.urandom() is OS entropy; sim code must stay "
                        "reproducible from the master seed (crypto/drbg.py "
                        "owns the entropy boundary)",
                    )
                elif owner == "uuid" and func.attr in {"uuid1", "uuid4"}:
                    yield module.finding(
                        self, node,
                        f"uuid.{func.attr}() is entropy/host-state; derive ids "
                        "from seeded streams or counters",
                    )
                elif owner == "secrets":
                    yield module.finding(
                        self, node,
                        "the secrets module is OS entropy by design; sim code "
                        "must draw from seeded streams",
                    )
            elif isinstance(func, ast.Name):
                origin = froms.get(func.id)
                if origin is None:
                    continue
                origin_module, origin_name = origin
                if origin_module == "random" and origin_name not in _RANDOM_CONSTRUCTORS:
                    yield module.finding(
                        self, node,
                        f"random.{origin_name} imported and called directly "
                        "draws from the shared ambient RNG",
                    )
                elif (origin_module, origin_name) == ("os", "urandom") or (
                    origin_module == "secrets"
                ):
                    yield module.finding(
                        self, node,
                        f"{origin_module}.{origin_name} is OS entropy; sim code "
                        "must stay reproducible from the master seed",
                    )
                elif origin_module == "uuid" and origin_name in {"uuid1", "uuid4"}:
                    yield module.finding(
                        self, node,
                        f"uuid.{origin_name}() is entropy/host-state; derive "
                        "ids from seeded streams or counters",
                    )


class NondetWallclockRule(Rule):
    name = "nondet-wallclock"
    description = "wall-clock reads (time.time, perf_counter, datetime.now) in sim code"
    domains = frozenset({"sim"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        aliases = astutil.module_aliases(module.tree)
        froms = astutil.from_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                chain = astutil.attribute_chain(func)
                if chain is None:
                    continue
                root = chain[0]
                # time.time(), time.perf_counter(), ...
                if (
                    len(chain) == 2
                    and aliases.get(root) == "time"
                    and chain[1] in _TIME_FUNCS
                ):
                    yield module.finding(
                        self, node,
                        f"time.{chain[1]}() reads the host clock; sim code "
                        "keeps time with sim.now",
                    )
                # datetime.datetime.now() / datetime.date.today().
                elif (
                    len(chain) == 3
                    and aliases.get(root) == "datetime"
                    and chain[2] in _DATETIME_FUNCS
                ):
                    yield module.finding(
                        self, node,
                        f"datetime {'.'.join(chain[1:])}() reads the host "
                        "clock; sim code keeps time with sim.now",
                    )
                # from datetime import datetime; datetime.now().
                elif (
                    len(chain) == 2
                    and froms.get(root, ("", ""))[0] == "datetime"
                    and chain[1] in _DATETIME_FUNCS
                ):
                    yield module.finding(
                        self, node,
                        f"{root}.{chain[1]}() reads the host clock; sim code "
                        "keeps time with sim.now",
                    )
            elif isinstance(func, ast.Name):
                origin = froms.get(func.id)
                if origin is not None and origin[0] == "time" and origin[1] in _TIME_FUNCS:
                    yield module.finding(
                        self, node,
                        f"time.{origin[1]} imported and called reads the host "
                        "clock; sim code keeps time with sim.now",
                    )


def _unsorted_iterable_reason(node: ast.expr) -> Optional[str]:
    """Why iterating ``node`` is order-hazardous, or None if it is not."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set literal iterates in hash order (PYTHONHASHSEED-dependent)"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return (
                f"{func.id}() iterates in hash order (PYTHONHASHSEED-dependent)"
            )
        if isinstance(func, ast.Attribute) and func.attr in {"values", "keys"}:
            return (
                f".{func.attr}() iterates in insertion order, which changes "
                "silently when callers reorder inserts"
            )
    return None


class NondetIterRule(Rule):
    name = "nondet-iter"
    description = (
        "unsorted set/dict-view iteration in a function that reaches trace "
        "emission, event scheduling, or RNG draws"
    )
    domains = frozenset({"sim"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        functions = astutil.collect_functions(module.tree)
        reaching = astutil.trace_reaching_functions(functions)
        seen_lines: Set[int] = set()
        for qualname in sorted(reaching):
            info = functions[qualname]
            for finding in self._check_function(module, info):
                # A nested function's body is walked by its parent too;
                # report each hazardous line once.
                if finding.line not in seen_lines:
                    seen_lines.add(finding.line)
                    yield finding

    def _check_function(
        self, module: ModuleContext, info: astutil.FunctionInfo
    ) -> Iterator[Finding]:
        #: Nodes whose iteration order cannot matter (direct argument of
        #: an order-insensitive call such as sorted()).
        order_ok: Set[int] = set()
        for node, _parent in astutil.walk_with_parents(info.node):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_INSENSITIVE_CALLS
                ):
                    for arg in node.args:
                        order_ok.add(id(arg))
                        # sorted(x for x in d.values()) — bless the
                        # generator's source too.
                        if isinstance(
                            arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                        ):
                            for comp in arg.generators:
                                order_ok.add(id(comp.iter))

        for node, _parent in astutil.walk_with_parents(info.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                reason = _unsorted_iterable_reason(node.iter)
                if reason is not None and id(node.iter) not in order_ok:
                    yield module.finding(
                        self, node,
                        f"{reason}; this loop runs in {info.qualname}, which "
                        "is on a trace/schedule/RNG path — wrap in sorted() "
                        "or justify why order cannot reach the trace",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                if id(node) in order_ok:
                    continue
                for comp in node.generators:
                    reason = _unsorted_iterable_reason(comp.iter)
                    if reason is not None and id(comp.iter) not in order_ok:
                        yield module.finding(
                            self, node,
                            f"{reason}; this comprehension runs in "
                            f"{info.qualname}, which is on a "
                            "trace/schedule/RNG path — wrap in sorted() or "
                            "justify why order cannot reach the trace",
                        )


class HashSortKeyRule(Rule):
    name = "nondet-hash-key"
    description = "hash()/id() used inside a sort key (salted/allocation order)"
    domains = frozenset({"sim"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sorter = (
                isinstance(func, ast.Name) and func.id in {"sorted", "min", "max"}
            ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
            if not is_sorter:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                for culprit in self._hash_uses(keyword.value):
                    yield module.finding(
                        self, node,
                        f"sort key uses {culprit}(): salted per process / "
                        "allocation order, so the order differs across runs — "
                        "key on stable identity (ids, tuples) instead",
                    )

    @staticmethod
    def _hash_uses(expr: ast.expr) -> Iterator[str]:
        # key=hash / key=id passed directly.
        if isinstance(expr, ast.Name) and expr.id in {"hash", "id"}:
            yield expr.id
            return
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"hash", "id"}
            ):
                yield node.func.id
