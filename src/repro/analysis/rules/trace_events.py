"""Rule family 2: the trace-event registry check.

Every analysis the harness produces is reconstructed from the trace
stream, so the set of events *is* the public API of the simulation.
This family pins that API to a declared catalogue
(:mod:`repro.analysis.trace_registry`), in both directions:

* ``trace-unknown-event`` — an ``emit`` call whose ``(category,
  kind)`` literal is not catalogued (typo or undocumented event), or
  one emitted from a module the catalogue does not list.
* ``trace-dynamic-event`` — category/kind built at runtime, which the
  registry cannot check; name events with string literals (or
  suppress with a justification explaining the closed value set).
* ``trace-unemitted-event`` — a catalogued event with no emitting
  site anywhere in the tree: dead documentation, or a collector
  counter (``fault_counts``/``cloud_counts``) that can never tick.
  Only reported when the scan covered the whole sim root, so linting
  one file cannot report every other module's events as missing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.trace_registry import TRACE_EVENTS


def iter_emit_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Every ``<something>.emit(...)`` call in the module."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        ):
            yield node


class TraceEventRule(Rule):
    name = "trace-unknown-event"
    description = "emit() literals must name events in the declared trace catalogue"
    domains = frozenset({"sim"})

    #: Secondary finding names this rule can produce (suppressions
    #: address each independently).
    DYNAMIC = "trace-dynamic-event"
    UNEMITTED = "trace-unemitted-event"

    @property
    def produces(self):
        return (self.name, self.DYNAMIC, self.UNEMITTED)

    def __init__(self) -> None:
        #: (category, kind) -> modules that emitted it, across the scan.
        self._seen: Dict[Tuple[str, str], Set[str]] = {}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for call in iter_emit_calls(module.tree):
            if len(call.args) < 3:
                # TraceRecorder.emit(time, category, kind, **data): fewer
                # than three positional args is some other emit() API
                # (e.g. a logging handler); not ours to police.
                continue
            category_node, kind_node = call.args[1], call.args[2]
            category = _literal(category_node)
            kind = _literal(kind_node)
            if category is None or kind is None:
                yield Finding(
                    rule=self.DYNAMIC,
                    path=module.rel_path,
                    line=call.lineno,
                    message="emit() category/kind built at runtime cannot be "
                    "checked against the trace catalogue; use string "
                    "literals per event",
                )
                continue
            spec = TRACE_EVENTS.get((category, kind))
            if spec is None:
                yield module.finding(
                    self, call,
                    f"emit of uncatalogued event {category}/{kind} — typo, or "
                    "add it to src/repro/analysis/trace_registry.py and "
                    "regenerate docs/TRACE_EVENTS.md",
                )
                continue
            self._seen.setdefault((category, kind), set()).add(module.rel_path)
            if module.rel_path not in spec.modules and not module.rel_path.endswith(
                "snippet.py"
            ):
                yield module.finding(
                    self, call,
                    f"event {category}/{kind} emitted from a module the "
                    f"catalogue does not list (expected: "
                    f"{', '.join(spec.modules)}) — update the registry entry",
                )

    def finalize(
        self, modules: Sequence[ModuleContext], full_sim_scan: bool
    ) -> Iterator[Finding]:
        if not full_sim_scan:
            return
        registry_path = "src/repro/analysis/trace_registry.py"
        for key, spec in sorted(TRACE_EVENTS.items()):
            if key not in self._seen:
                yield Finding(
                    rule=self.UNEMITTED,
                    path=registry_path,
                    line=1,
                    message=f"catalogued event {key[0]}/{key[1]} has no "
                    "emitting site in the tree — dead documentation, or a "
                    "collector counter that can never tick "
                    f"(consumer: {spec.consumer or 'none declared'})",
                )


def _literal(node: ast.expr) -> "str | None":
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
