"""Rule family 3: fork safety of cross-process worker functions.

``repro.sim.parallel`` promises bit-identical results between its
forked and in-process fallbacks, which only holds when workers are pure
functions of their inputs.  With the medium sharded across processes,
workers that close over live simulation state are the bug class that
gets strictly harder to debug after the fact — a forked child mutates a
*copy* of the lock/file/Simulator/Medium and the divergence surfaces as
a trace mismatch long after the fork.

Three call shapes are checked — the one-shot map, the persistent shard
pool's init function, and per-tick task dispatch:

* ``parallel_map(worker, items, n)``
* ``WorkerPool(init_fn, payloads)``
* ``pool.dispatch(worker, tasks)`` (in modules that import the
  ``repro.sim.parallel`` API — other ``dispatch`` methods are not ours
  to police)

``fork-unsafe`` flags a worker argument that is:

* a lambda or locally nested function (closes over frame state, and is
  unpicklable under non-fork start methods anyway),
* a bound-method / attribute reference (drags its whole instance —
  a Simulator, a Medium — through the fork),
* a module-level function that declares ``global`` (mutates parent
  state the children cannot see), or
* a module-level function referencing module globals bound to live
  resources — ``open(...)``, ``threading.Lock()``,
  ``multiprocessing.Lock()``, a ``Simulator(...)`` or a ``Medium(...)``.

A worker imported from another module passes here and is checked where
it is defined (the sharded engine imports its shard-task functions by
name from ``repro.net.medium_engines.shard_worker`` for exactly this
reason).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis import astutil
from repro.analysis.core import Finding, ModuleContext, Rule

#: Module-level bindings considered live resources when referenced by a
#: worker function: ``NAME = <constructor>(...)``.
_LIVE_RESOURCE_CONSTRUCTORS = frozenset(
    {"open", "Lock", "RLock", "Semaphore", "Condition", "Event", "Simulator", "Medium"}
)


class ForkSafetyRule(Rule):
    name = "fork-unsafe"
    description = (
        "parallel_map / WorkerPool / dispatch workers must be module-level "
        "pure functions, not closures over locks, files, Simulators, "
        "Mediums, or module globals"
    )
    domains = frozenset({"sim"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        froms = astutil.from_imports(module.tree)
        map_names = {
            local
            for local, (origin, name) in froms.items()
            if name == "parallel_map" and origin.endswith("parallel")
        }
        pool_names = {
            local
            for local, (origin, name) in froms.items()
            if name == "WorkerPool" and origin.endswith("parallel")
        }
        # dispatch() is a generic method name; only police it in modules
        # that actually use the repro.sim.parallel API.
        check_dispatch = bool(map_names or pool_names)
        functions = astutil.collect_functions(module.tree)
        nested = {
            info.node.name for info in functions.values() if info.parent is not None
        }
        module_level = {
            info.node.name: info
            for info in functions.values()
            if info.parent is None and "." not in info.qualname
        }
        live_globals = _live_resource_globals(module.tree)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            is_worker_call = (
                isinstance(node.func, ast.Name)
                and node.func.id in (map_names | pool_names)
            ) or (
                isinstance(node.func, ast.Attribute)
                and (
                    node.func.attr in ("parallel_map", "WorkerPool")
                    or (check_dispatch and node.func.attr == "dispatch")
                )
            )
            if not is_worker_call or not node.args:
                continue
            worker = node.args[0]
            yield from self._check_worker(
                module, node, worker, nested, module_level, live_globals
            )

    def _check_worker(
        self,
        module: ModuleContext,
        call: ast.Call,
        worker: ast.expr,
        nested: Set[str],
        module_level: Dict[str, astutil.FunctionInfo],
        live_globals: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(worker, ast.Lambda):
            yield module.finding(
                self, call,
                "lambda worker closes over the enclosing frame and cannot be "
                "pickled under non-fork start methods; hoist it to a "
                "module-level pure function",
            )
            return
        if isinstance(worker, ast.Attribute):
            yield module.finding(
                self, call,
                "bound-method / attribute worker drags its whole object "
                "through the fork; hoist the work into a module-level pure "
                "function of the item",
            )
            return
        if not isinstance(worker, ast.Name):
            return
        if worker.id in nested:
            yield module.finding(
                self, call,
                f"worker {worker.id!r} is a nested function: it closes over "
                "the enclosing frame; hoist it to module level and pass all "
                "state through the item",
            )
            return
        info = module_level.get(worker.id)
        if info is None:
            return  # imported worker: checked where it is defined
        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.Global):
                yield module.finding(
                    self, call,
                    f"worker {worker.id!r} declares global "
                    f"{', '.join(stmt.names)}: forked children mutate a copy "
                    "the parent never sees",
                )
                return
        referenced = {
            n.id for n in ast.walk(info.node) if isinstance(n, ast.Name)
        }
        touched = sorted(referenced & live_globals)
        if touched:
            yield module.finding(
                self, call,
                f"worker {worker.id!r} references module-level live "
                f"resource(s) {', '.join(touched)} (lock/file/Simulator): "
                "per-fork copies diverge silently; pass serialisable state "
                "through the item instead",
            )


def _live_resource_globals(tree: ast.Module) -> Set[str]:
    """Module-level names bound to live resources (``X = open(...)``)."""
    out: Set[str] = set()
    for stmt in tree.body:
        targets = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not isinstance(value, ast.Call):
            continue
        name = astutil.call_name(value)
        if name not in _LIVE_RESOURCE_CONSTRUCTORS:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out
