"""Rule registry: the five determinism / hygiene rule families.

``default_rules()`` returns fresh instances — rules may accumulate
cross-file state between ``check`` and ``finalize``, so a rule list is
single-use (one :func:`repro.analysis.core.lint_paths` call).
"""

from __future__ import annotations

from typing import List

from repro.analysis.core import Rule
from repro.analysis.rules.determinism import (
    HashSortKeyRule,
    NondetEntropyRule,
    NondetIterRule,
    NondetWallclockRule,
)
from repro.analysis.rules.exceptions import ExceptSwallowRule
from repro.analysis.rules.fork_safety import ForkSafetyRule
from repro.analysis.rules.seeds import RngDisciplineRule
from repro.analysis.rules.trace_events import TraceEventRule


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule, in reporting order."""
    return [
        NondetEntropyRule(),
        NondetWallclockRule(),
        NondetIterRule(),
        HashSortKeyRule(),
        TraceEventRule(),
        ForkSafetyRule(),
        ExceptSwallowRule(),
        RngDisciplineRule(),
    ]


__all__ = [
    "ExceptSwallowRule",
    "ForkSafetyRule",
    "HashSortKeyRule",
    "NondetEntropyRule",
    "NondetIterRule",
    "NondetWallclockRule",
    "RngDisciplineRule",
    "TraceEventRule",
    "default_rules",
]
