"""The declared catalogue of every trace event the simulation emits.

Rule family 2 (``trace-unknown-event`` / ``trace-unemitted-event``)
checks the tree against this catalogue in both directions: an ``emit``
call whose ``(category, kind)`` literal is not listed here is a typo or
an undocumented event, and a catalogued event with no emitting site in
the scanned tree is drift (dead documentation, or a collector counter
that can never tick).  ``docs/TRACE_EVENTS.md`` is generated verbatim
from :func:`render_markdown` and verified by ``scripts/check_docs.py``,
so the human-readable catalogue cannot diverge from the one the linter
enforces.

Adding an event
===============

1. Add the :class:`EventSpec` here (module list = every file that emits
   it, ``consumer`` = the analysis-side reader, if any).
2. Regenerate the doc: ``python scripts/gen_trace_docs.py``.
3. Emit it.  ``repro lint --strict`` fails until all three agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class EventSpec:
    """One catalogued ``(category, kind)`` trace event."""

    category: str
    kind: str
    #: Modules (repo-relative) expected to emit the event.
    modules: Tuple[str, ...]
    #: What the event records (one line, for docs/TRACE_EVENTS.md).
    description: str
    #: Analysis-side reader, e.g. a TraceCollector record or counter.
    consumer: str = ""

    @property
    def key(self) -> Tuple[str, str]:
        return (self.category, self.kind)


def _spec(
    category: str,
    kind: str,
    modules: Tuple[str, ...],
    description: str,
    consumer: str = "",
) -> EventSpec:
    return EventSpec(category, kind, modules, description, consumer)


_MEDIUM = ("src/repro/net/medium.py", "src/repro/net/tracefile.py")
_APP = ("src/repro/alleyoop/app.py",)
_INJECTOR = ("src/repro/faults/injector.py",)
_CONNECTIVITY = ("src/repro/faults/connectivity.py",)

#: Every event the simulation may emit, keyed by (category, kind).
TRACE_EVENTS: Dict[Tuple[str, str], EventSpec] = {
    spec.key: spec
    for spec in (
        # -- contact: the physical layer's link diff --------------------------
        _spec(
            "contact", "up", _MEDIUM,
            "a device pair came within radio range (best common radio)",
            "ContactTracker / contact metrics",
        ),
        _spec(
            "contact", "down", _MEDIUM,
            "an active link dropped (range, power, crash or forced flap)",
            "ContactTracker / contact metrics",
        ),
        # -- message: creation and delivery -----------------------------------
        _spec(
            "message", "created", ("src/repro/core/middleware.py",),
            "a user authored a post (the paper's unique-message count)",
            "TraceCollector.messages",
        ),
        _spec(
            "message", "received", ("src/repro/core/message_manager.py",),
            "a device accepted a message copy (hops, created_at, interest)",
            "TraceCollector.deliveries",
        ),
        # -- social: the follow graph over time --------------------------------
        _spec(
            "social", "follow", _APP,
            "one user subscribed to another",
            "TraceCollector.subscription_windows",
        ),
        _spec(
            "social", "follow_many", _APP,
            "bulk day-0 subscription (expanded to per-pair windows)",
            "TraceCollector.subscription_windows",
        ),
        _spec(
            "social", "unfollow", _APP,
            "one user unsubscribed from another",
            "TraceCollector.subscription_windows",
        ),
        # -- app: feed-level outcomes ------------------------------------------
        _spec(
            "app", "feed", _APP,
            "a delivered post surfaced in a subscriber's feed",
        ),
        _spec(
            "app", "malformed_payload", _APP,
            "a received post body failed to parse (diagnostic, not silent)",
        ),
        # -- cloud: resilient sync under faults --------------------------------
        _spec(
            "cloud", "sync_failed", _APP,
            "a cloud sync round failed (error, attempt, pending backlog)",
            "TraceCollector.cloud_counts",
        ),
        _spec(
            "cloud", "sync_retry", _APP,
            "a backoff retry of a failed sync was scheduled",
            "TraceCollector.cloud_counts",
        ),
        # -- security / router: protocol diagnostics ---------------------------
        _spec(
            "security", "failure", ("src/repro/core/adhoc.py",),
            "peer authentication or frame verification failed",
        ),
        _spec(
            "router", "control_send_failed", ("src/repro/core/message_manager.py",),
            "a routing control message could not be signed/sent",
        ),
        # -- fault: injected hazards (all counted by fault_counts) -------------
        _spec(
            "fault", "crash", _INJECTOR,
            "a device crashed (volatile state lost)",
            "TraceCollector.fault_counts",
        ),
        _spec(
            "fault", "reboot", _INJECTOR,
            "a crashed device came back (durable state intact)",
            "TraceCollector.fault_counts",
        ),
        _spec(
            "fault", "link_flap", _INJECTOR,
            "an active link was force-dropped while still in range",
            "TraceCollector.fault_counts",
        ),
        _spec(
            "fault", "frame_drop", _INJECTOR,
            "a radio frame was silently dropped in flight",
            "TraceCollector.fault_counts",
        ),
        _spec(
            "fault", "frame_corrupt", _INJECTOR,
            "one byte of a radio frame was flipped in flight",
            "TraceCollector.fault_counts",
        ),
        _spec(
            "fault", "cloud_down", _CONNECTIVITY,
            "the cloud entered an outage window",
            "TraceCollector.fault_counts",
        ),
        _spec(
            "fault", "cloud_up", _CONNECTIVITY,
            "the cloud outage window ended",
            "TraceCollector.fault_counts",
        ),
        _spec(
            "fault", "cloud_rate_limited", _CONNECTIVITY,
            "a sync round was rejected by the rate limiter",
            "TraceCollector.fault_counts",
        ),
        _spec(
            "fault", "cloud_timeout", _CONNECTIVITY,
            "a sync round hit a transient timeout",
            "TraceCollector.fault_counts",
        ),
        _spec(
            "fault", "cloud_partial", _CONNECTIVITY,
            "the cloud accepted only a prefix of an offered batch",
            "TraceCollector.fault_counts",
        ),
    )
}


def render_markdown() -> str:
    """The generated body of ``docs/TRACE_EVENTS.md``.

    One line per catalogued event, grouped by category; regenerate with
    ``python scripts/gen_trace_docs.py`` whenever the catalogue changes
    (``scripts/check_docs.py`` fails on drift).
    """
    lines = [
        "# Trace events",
        "",
        "Generated from `src/repro/analysis/trace_registry.py` by",
        "`scripts/gen_trace_docs.py` — do not edit by hand",
        "(`scripts/check_docs.py` verifies this file matches the registry,",
        "and `repro lint` verifies the registry matches the code).",
        "",
        "Every analysis in the harness — delay CDFs, delivery ratios, the",
        "map overlay, fault accounting — is reconstructed from this event",
        "stream, never from protocol internals.  The *consumed by* column",
        "names the analysis-side reader where one exists.",
        "",
    ]
    by_category: Dict[str, list] = {}
    for spec in TRACE_EVENTS.values():
        by_category.setdefault(spec.category, []).append(spec)
    for category in sorted(by_category):
        lines.append(f"## `{category}`")
        lines.append("")
        lines.append("| kind | emitted by | consumed by | meaning |")
        lines.append("|---|---|---|---|")
        for spec in sorted(by_category[category], key=lambda s: s.kind):
            modules = ", ".join(f"`{m}`" for m in spec.modules)
            consumer = spec.consumer or "—"
            lines.append(
                f"| `{spec.kind}` | {modules} | {consumer} | {spec.description} |"
            )
        lines.append("")
    return "\n".join(lines)
