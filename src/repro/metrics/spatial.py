"""Spatial overlay — Fig. 4b.

The paper's map shows "where users created messages (blue) and passed
messages (red)" over the ~11 km x 8 km study area.  We reproduce the
overlay as point sets plus grid-cell occupancy statistics (coverage area,
creation/dissemination centroids, hot cells) — the quantities a text
harness can assert on.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.geo.point import Point
from repro.geo.region import Region


@dataclass(frozen=True)
class SpatialEvent:
    """A message event pinned to a map location."""

    kind: str  # "created" (blue) | "disseminated" (red)
    time: float
    position: Point
    user: str


class MapOverlay:
    """Accumulates spatial events and derives Fig. 4b statistics."""

    CREATED = "created"
    DISSEMINATED = "disseminated"

    def __init__(self, region: Region, cell_size: float = 500.0) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.region = region
        self.cell_size = float(cell_size)
        self.events: List[SpatialEvent] = []

    def add(self, kind: str, time: float, position: Point, user: str) -> None:
        if kind not in (self.CREATED, self.DISSEMINATED):
            raise ValueError(f"unknown spatial event kind {kind!r}")
        self.events.append(SpatialEvent(kind=kind, time=time, position=position, user=user))

    # -- views ---------------------------------------------------------------------
    def points(self, kind: str) -> List[Point]:
        return [e.position for e in self.events if e.kind == kind]

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (int(math.floor(p.x / self.cell_size)), int(math.floor(p.y / self.cell_size)))

    def occupied_cells(self, kind: str) -> Dict[Tuple[int, int], int]:
        return dict(Counter(self._cell_of(p) for p in self.points(kind)))

    def coverage_km2(self, kind: str) -> float:
        """Area of grid cells touched by events of this kind."""
        return len(self.occupied_cells(kind)) * (self.cell_size ** 2) / 1e6

    def centroid(self, kind: str) -> Point:
        pts = self.points(kind)
        if not pts:
            raise ValueError(f"no {kind!r} events recorded")
        return Point(sum(p.x for p in pts) / len(pts), sum(p.y for p in pts) / len(pts))

    def bounding_box(self, kind: str) -> Region:
        pts = self.points(kind)
        if not pts:
            raise ValueError(f"no {kind!r} events recorded")
        return Region(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(max(p.x for p in pts), min(p.x for p in pts) + 1e-9),
            max(max(p.y for p in pts), min(p.y for p in pts) + 1e-9),
        )

    def hot_cells(self, kind: str, top: int = 5) -> List[Tuple[Tuple[int, int], int]]:
        cells = self.occupied_cells(kind)
        return sorted(cells.items(), key=lambda kv: (-kv[1], kv[0]))[:top]

    def ascii_map(self, width: int = 44, height: int = 32) -> str:
        """A terminal rendering of Fig. 4b: '.' empty, 'b' creation,
        'r' dissemination, 'x' both in the same cell."""
        created = set()
        disseminated = set()
        for event in self.events:
            gx = int((event.position.x - self.region.x0) / self.region.width * (width - 1))
            gy = int((event.position.y - self.region.y0) / self.region.height * (height - 1))
            gx = min(max(gx, 0), width - 1)
            gy = min(max(gy, 0), height - 1)
            (created if event.kind == self.CREATED else disseminated).add((gx, gy))
        rows = []
        for gy in range(height - 1, -1, -1):
            row = []
            for gx in range(width):
                cell = (gx, gy)
                if cell in created and cell in disseminated:
                    row.append("x")
                elif cell in created:
                    row.append("b")
                elif cell in disseminated:
                    row.append("r")
                else:
                    row.append(".")
            rows.append("".join(row))
        return "\n".join(rows)
