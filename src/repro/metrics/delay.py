"""Delay analysis — Fig. 4c.

"Figure 4c provides the delay results for messages disseminated via
'1-hop' and 'All' hops."  Delay is measured from message creation to the
first time an *interested* user (a subscriber of the author) receives it;
the "1-hop" series restricts to copies received directly from the
author's device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.metrics.cdf import EmpiricalCdf
from repro.metrics.collector import TraceCollector

HOURS = 3600.0


@dataclass
class DelayAnalysis:
    """Delay CDFs over interested first-deliveries."""

    all_hops: EmpiricalCdf
    one_hop: EmpiricalCdf

    @classmethod
    def from_collector(cls, collector: TraceCollector) -> "DelayAnalysis":
        firsts = collector.first_deliveries().values()
        all_delays = [d.delay for d in firsts]
        one_hop_delays = [d.delay for d in firsts if d.hops == 1]
        return cls(all_hops=EmpiricalCdf(all_delays), one_hop=EmpiricalCdf(one_hop_delays))

    # -- the paper's point reads ----------------------------------------------------
    def fraction_within_hours(self, hours: float, one_hop: bool = False) -> float:
        cdf = self.one_hop if one_hop else self.all_hops
        return cdf.at(hours * HOURS)

    def paper_points(self) -> Dict[str, float]:
        """The four numbers §VI-B quotes from Fig. 4c."""
        return {
            "all_within_24h": self.fraction_within_hours(24),
            "all_within_94h": self.fraction_within_hours(94),
            "one_hop_within_24h": self.fraction_within_hours(24, one_hop=True),
            "one_hop_within_94h": self.fraction_within_hours(94, one_hop=True),
        }

    def curve_hours(self, grid_hours: List[float] = None) -> List[tuple]:
        """(hours, F_all, F_1hop) rows for the bench output."""
        if grid_hours is None:
            grid_hours = [1, 2, 4, 8, 12, 24, 36, 48, 60, 72, 94, 120, 144, 168]
        return [
            (h, self.all_hops.at(h * HOURS), self.one_hop.at(h * HOURS))
            for h in grid_hours
        ]
