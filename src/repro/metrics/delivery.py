"""Delivery-ratio analysis — Fig. 4d.

For every subscription (follower -> followee) the ratio of the followee's
messages that actually reached the follower.  The paper reads this CDF at
several points: "0.30 of the subscriptions had a delivery ratio greater
than 0.80 for 'All' messages.  0.50 of the subscriptions had a delivery
ratio greater than 0.70 ... 0.25 of the subscriptions had a delivery
ratio of 0.80 for '1-hop' messages."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.metrics.cdf import EmpiricalCdf
from repro.metrics.collector import TraceCollector


@dataclass(frozen=True)
class SubscriptionRatio:
    """Delivery outcome of one subscription."""

    follower: str
    followee: str
    messages_posted: int
    delivered_all: int
    delivered_one_hop: int

    @property
    def ratio_all(self) -> Optional[float]:
        if self.messages_posted == 0:
            return None
        return self.delivered_all / self.messages_posted

    @property
    def ratio_one_hop(self) -> Optional[float]:
        if self.messages_posted == 0:
            return None
        return self.delivered_one_hop / self.messages_posted


@dataclass
class DeliveryAnalysis:
    """Per-subscription ratios + the Fig. 4d CDFs."""

    ratios: List[SubscriptionRatio]

    @classmethod
    def from_collector(
        cls,
        collector: TraceCollector,
        subscriptions: Iterable[Tuple[str, str]],
        window_end: Optional[float] = None,
    ) -> "DeliveryAnalysis":
        """Compute ratios for the given (follower, followee) pairs.

        ``subscriptions`` is the evaluated set (the field study's 46).
        Only messages created while the subscription was active (and
        before ``window_end``) count toward the denominator.
        """
        firsts = collector.first_deliveries()
        windows = {
            (w.follower, w.followee): w for w in collector.subscription_windows
        }
        by_author = collector.messages_by_author()
        ratios = []
        for follower, followee in subscriptions:
            window = windows.get((follower, followee))
            posted = 0
            delivered_all = 0
            delivered_one_hop = 0
            for record in by_author.get(followee, []):
                if window is not None and not window.active_at(record.created_at):
                    continue
                if window_end is not None and record.created_at > window_end:
                    continue
                posted += 1
                delivery = firsts.get((follower, followee, record.number))
                if delivery is not None:
                    delivered_all += 1
                    if delivery.hops == 1:
                        delivered_one_hop += 1
            ratios.append(
                SubscriptionRatio(
                    follower=follower,
                    followee=followee,
                    messages_posted=posted,
                    delivered_all=delivered_all,
                    delivered_one_hop=delivered_one_hop,
                )
            )
        return cls(ratios=ratios)

    # -- CDFs -------------------------------------------------------------------------
    def _measurable(self) -> List[SubscriptionRatio]:
        return [r for r in self.ratios if r.messages_posted > 0]

    def cdf_all(self) -> EmpiricalCdf:
        return EmpiricalCdf(r.ratio_all for r in self._measurable())

    def cdf_one_hop(self) -> EmpiricalCdf:
        return EmpiricalCdf(r.ratio_one_hop for r in self._measurable())

    def fraction_of_subscriptions_above(self, ratio: float, one_hop: bool = False) -> float:
        """Fraction of measurable subscriptions with delivery ratio > x."""
        cdf = self.cdf_one_hop() if one_hop else self.cdf_all()
        return cdf.fraction_greater(ratio)

    def fraction_of_subscriptions_at_least(self, ratio: float, one_hop: bool = False) -> float:
        cdf = self.cdf_one_hop() if one_hop else self.cdf_all()
        return cdf.fraction_at_least(ratio)

    def paper_points(self) -> Dict[str, float]:
        """The Fig. 4d point reads §VI-B quotes."""
        return {
            "subs_above_0.80_all": self.fraction_of_subscriptions_above(0.80),
            "subs_above_0.70_all": self.fraction_of_subscriptions_above(0.70),
            "subs_at_least_0.80_one_hop": self.fraction_of_subscriptions_at_least(
                0.80, one_hop=True
            ),
        }

    def overall_delivery_ratio(self) -> Optional[float]:
        posted = sum(r.messages_posted for r in self.ratios)
        delivered = sum(r.delivered_all for r in self.ratios)
        if posted == 0:
            return None
        return delivered / posted
