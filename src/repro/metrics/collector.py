"""Trace-to-record extraction.

The collector walks the simulator's trace and produces flat records for
the delay/delivery/spatial analyses.  It also maintains the subscription
timeline (from ``social/follow`` trace events) so a delivery can be
attributed to the right subscription even when follows changed mid-study.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class MessageRecord:
    """One created message."""

    author: str
    number: int
    created_at: float

    @property
    def key(self) -> Tuple[str, int]:
        return (self.author, self.number)


@dataclass(frozen=True)
class DeliveryRecord:
    """One device receiving one message copy."""

    owner: str
    author: str
    number: int
    received_at: float
    created_at: float
    hops: int
    interested: bool

    @property
    def key(self) -> Tuple[str, int]:
        return (self.author, self.number)

    @property
    def delay(self) -> float:
        return self.received_at - self.created_at


@dataclass
class SubscriptionWindow:
    """A (follower, followee) interest interval."""

    follower: str
    followee: str
    start: float
    end: Optional[float] = None

    def active_at(self, time: float) -> bool:
        return self.start <= time and (self.end is None or time < self.end)


class TraceCollector:
    """Extracts evaluation records from a finished run's trace."""

    def __init__(self, trace: TraceRecorder) -> None:
        self.messages: Dict[Tuple[str, int], MessageRecord] = {}
        self.deliveries: List[DeliveryRecord] = []
        self.subscription_windows: List[SubscriptionWindow] = []
        #: Injected-fault events by kind (``crash``, ``cloud_down``,
        #: ``frame_drop``, ...) — empty for a faultless run.
        self.fault_counts: Dict[str, int] = defaultdict(int)
        #: Resilient-sync events by kind (``sync_failed``, ``sync_retry``).
        self.cloud_counts: Dict[str, int] = defaultdict(int)
        open_windows: Dict[Tuple[str, str], SubscriptionWindow] = {}

        for event in trace:
            if event.category == "message" and event.kind == "created":
                record = MessageRecord(
                    author=event.data["author"],
                    number=event.data["number"],
                    created_at=event.time,
                )
                self.messages[record.key] = record
            elif event.category == "message" and event.kind == "received":
                self.deliveries.append(
                    DeliveryRecord(
                        owner=event.data["owner"],
                        author=event.data["author"],
                        number=event.data["number"],
                        received_at=event.time,
                        created_at=event.data["created_at"],
                        hops=event.data["hops"],
                        interested=event.data.get("interested", False),
                    )
                )
            elif event.category == "social" and event.kind == "follow":
                self._open_window(
                    open_windows, event.data["follower"], event.data["followee"],
                    event.time,
                )
            elif event.category == "social" and event.kind == "follow_many":
                # One aggregated bulk-bootstrap event stands in for a run
                # of per-edge follows; expand it to the identical
                # per-pair subscription windows, in the same order.
                follower = event.data["follower"]
                for followee in event.data["followees"]:
                    self._open_window(open_windows, follower, followee, event.time)
            elif event.category == "social" and event.kind == "unfollow":
                key = (event.data["follower"], event.data["followee"])
                window = open_windows.pop(key, None)
                if window is not None:
                    window.end = event.time
            elif event.category == "fault":
                self.fault_counts[event.kind] += 1
            elif event.category == "cloud":
                self.cloud_counts[event.kind] += 1

    def _open_window(
        self,
        open_windows: Dict[Tuple[str, str], SubscriptionWindow],
        follower: str,
        followee: str,
        time: float,
    ) -> None:
        key = (follower, followee)
        if key not in open_windows:
            window = SubscriptionWindow(follower=follower, followee=followee, start=time)
            open_windows[key] = window
            self.subscription_windows.append(window)

    # -- derived views -------------------------------------------------------------
    @property
    def unique_message_count(self) -> int:
        """The paper's "unique messages" count (259 in the field study)."""
        return len(self.messages)

    @property
    def dissemination_count(self) -> int:
        """User-to-user message transfers (967 in the field study)."""
        return len(self.deliveries)

    def interested_deliveries(self) -> List[DeliveryRecord]:
        """Deliveries to users subscribed to the author — the events the
        delay and delivery figures are computed from."""
        return [d for d in self.deliveries if d.interested]

    def first_deliveries(self) -> Dict[Tuple[str, str, int], DeliveryRecord]:
        """Earliest interested delivery per (receiver, author, number)."""
        firsts: Dict[Tuple[str, str, int], DeliveryRecord] = {}
        for delivery in self.interested_deliveries():
            key = (delivery.owner, delivery.author, delivery.number)
            current = firsts.get(key)
            if current is None or delivery.received_at < current.received_at:
                firsts[key] = delivery
        return firsts

    def messages_by_author(self) -> Dict[str, List[MessageRecord]]:
        by_author: Dict[str, List[MessageRecord]] = defaultdict(list)
        for record in self.messages.values():
            by_author[record.author].append(record)
        for records in by_author.values():
            records.sort(key=lambda r: r.number)
        return dict(by_author)

    def subscriptions_active_during(
        self, start: float, end: float
    ) -> List[SubscriptionWindow]:
        """Windows overlapping [start, end]."""
        out = []
        for window in self.subscription_windows:
            window_end = window.end if window.end is not None else float("inf")
            if window.start <= end and window_end >= start:
                out.append(window)
        return out
