"""Evaluation metrics (paper §VI, Fig. 4).

Everything is computed from the simulator's structured trace — the
equivalent of the on-phone logs the real deployment post-processed —
never from protocol internals:

* :mod:`repro.metrics.cdf` — empirical CDFs (the Fig. 4c/4d curves),
* :mod:`repro.metrics.delay` — message delay analysis, "1-hop" vs "All",
* :mod:`repro.metrics.delivery` — per-subscription delivery ratios,
* :mod:`repro.metrics.spatial` — the Fig. 4b map overlay (creation vs
  dissemination locations),
* :mod:`repro.metrics.collector` — the trace-to-record extraction,
* :mod:`repro.metrics.report` — plain-text tables mirroring the paper's
  reported numbers.
"""

from repro.metrics.cdf import EmpiricalCdf
from repro.metrics.collector import DeliveryRecord, MessageRecord, TraceCollector
from repro.metrics.delay import DelayAnalysis
from repro.metrics.delivery import DeliveryAnalysis, SubscriptionRatio
from repro.metrics.spatial import MapOverlay, SpatialEvent
from repro.metrics.contacts import ContactAnalysis

__all__ = [
    "EmpiricalCdf",
    "TraceCollector",
    "MessageRecord",
    "DeliveryRecord",
    "DelayAnalysis",
    "DeliveryAnalysis",
    "SubscriptionRatio",
    "MapOverlay",
    "SpatialEvent",
    "ContactAnalysis",
]
