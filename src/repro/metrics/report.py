"""Plain-text report tables.

The benchmark harness prints the same rows/series the paper reports; this
module renders them.  Every table carries the paper's published value
next to the measured one so divergence is visible at a glance.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def format_table(
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Fixed-width table rendering."""
    materialised: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in header]
    for row in materialised:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for row in materialised:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def comparison_row(
    metric: str, paper: Optional[float], measured: Optional[float]
) -> Tuple[str, str, str, str]:
    """A (metric, paper, measured, delta) row."""
    paper_s = f"{paper:.3f}" if paper is not None else "-"
    measured_s = f"{measured:.3f}" if measured is not None else "-"
    if paper is not None and measured is not None and paper != 0:
        delta = f"{(measured - paper) / abs(paper) * 100:+.1f}%"
    elif paper is not None and measured is not None:
        delta = f"{measured - paper:+.3f}"
    else:
        delta = "-"
    return (metric, paper_s, measured_s, delta)
