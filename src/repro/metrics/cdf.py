"""Empirical cumulative distribution functions.

Fig. 4c (delay) and Fig. 4d (delivery ratio) are ECDF plots; this class
reproduces the curves and the point reads the paper quotes (e.g. "0.43 of
the messages delivered had a delay of 24 hours or less" is
``cdf.at(24 * 3600)``).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, List, Sequence, Tuple


class EmpiricalCdf:
    """ECDF over a sample of real numbers."""

    def __init__(self, samples: Iterable[float]) -> None:
        self._sorted: List[float] = sorted(float(s) for s in samples)

    @property
    def n(self) -> int:
        return len(self._sorted)

    @property
    def samples(self) -> Sequence[float]:
        return tuple(self._sorted)

    def at(self, x: float) -> float:
        """F(x) = fraction of samples <= x.  0.0 for an empty sample."""
        if not self._sorted:
            return 0.0
        return bisect_right(self._sorted, x) / len(self._sorted)

    def fraction_greater(self, x: float) -> float:
        """1 - F(x): fraction of samples strictly greater than x."""
        if not self._sorted:
            return 0.0
        return (len(self._sorted) - bisect_right(self._sorted, x)) / len(self._sorted)

    def fraction_at_least(self, x: float) -> float:
        """Fraction of samples >= x."""
        if not self._sorted:
            return 0.0
        return (len(self._sorted) - bisect_left(self._sorted, x)) / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Smallest x with F(x) >= q.  Raises on empty samples."""
        if not self._sorted:
            raise ValueError("quantile of empty CDF")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return self._sorted[0]
        import math

        index = max(0, min(len(self._sorted) - 1, math.ceil(q * len(self._sorted)) - 1))
        return self._sorted[index]

    def curve(self) -> List[Tuple[float, float]]:
        """(x, F(x)) step points suitable for plotting or table output."""
        points = []
        n = len(self._sorted)
        for i, x in enumerate(self._sorted):
            if i + 1 < n and self._sorted[i + 1] == x:
                continue  # collapse ties to the last occurrence
            points.append((x, (i + 1) / n))
        return points

    def series(self, xs: Iterable[float]) -> List[Tuple[float, float]]:
        """Evaluate F at the given grid (the benches print fixed grids)."""
        return [(float(x), self.at(x)) for x in xs]

    def mean(self) -> float:
        if not self._sorted:
            raise ValueError("mean of empty CDF")
        return sum(self._sorted) / len(self._sorted)

    def median(self) -> float:
        return self.quantile(0.5)
