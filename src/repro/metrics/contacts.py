"""Contact-pattern analysis.

DTN performance is a function of the contact process, so the literature
characterises deployments by contact count, contact-duration distribution
and inter-contact-time distribution (whose heavy tail is the defining
difficulty of real human traces).  This module derives those from a
:class:`~repro.net.contact.ContactTracker` or from trace events, giving
the reproduction the same characterisation the ONE-simulator reports
produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.cdf import EmpiricalCdf
from repro.net.contact import ContactTracker


@dataclass
class ContactAnalysis:
    """Summary of a run's contact process."""

    total_contacts: int
    duration_cdf: EmpiricalCdf
    inter_contact_cdf: EmpiricalCdf
    contacts_per_pair: Dict[Tuple[str, str], int]

    @classmethod
    def from_tracker(cls, tracker: ContactTracker) -> "ContactAnalysis":
        return cls(
            total_contacts=tracker.total_contacts(),
            duration_cdf=EmpiricalCdf(tracker.contact_durations()),
            inter_contact_cdf=EmpiricalCdf(tracker.inter_contact_times()),
            contacts_per_pair=tracker.contacts_per_pair(),
        )

    # -- headline quantities -----------------------------------------------------
    def mean_contact_duration(self) -> Optional[float]:
        if self.duration_cdf.n == 0:
            return None
        return self.duration_cdf.mean()

    def median_inter_contact_hours(self) -> Optional[float]:
        if self.inter_contact_cdf.n == 0:
            return None
        return self.inter_contact_cdf.median() / 3600.0

    def pairs_with_repeat_contacts(self) -> int:
        """Pairs that met more than once — the substrate of recurring
        social contact the working-day model must produce."""
        return sum(1 for count in self.contacts_per_pair.values() if count > 1)

    def degree_distribution(self) -> Dict[str, int]:
        """Distinct contact partners per node."""
        partners: Dict[str, set] = {}
        for (a, b) in self.contacts_per_pair:
            partners.setdefault(a, set()).add(b)
            partners.setdefault(b, set()).add(a)
        return {node: len(peers) for node, peers in sorted(partners.items())}

    def summary_rows(self) -> List[Tuple[str, str]]:
        """(label, value) rows for report tables."""
        mean_duration = self.mean_contact_duration()
        median_ict = self.median_inter_contact_hours()
        return [
            ("contacts", str(self.total_contacts)),
            ("distinct pairs", str(len(self.contacts_per_pair))),
            ("pairs meeting repeatedly", str(self.pairs_with_repeat_contacts())),
            ("mean contact duration",
             "-" if mean_duration is None else f"{mean_duration / 60.0:.1f} min"),
            ("median inter-contact time",
             "-" if median_ict is None else f"{median_ict:.1f} h"),
        ]
