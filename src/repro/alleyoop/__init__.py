"""AlleyOop Social — the delay tolerant social network built on SOS.

The application layer of the paper (§III-A, §V): user accounts with the
one-time PKI sign-up (Fig. 2a), posts and follow/unfollow actions saved to
the local database and synchronised with the cloud when the Internet is
available, message dissemination over whatever DTN routing protocol the
user selects, and a feed of received posts from followed users.

Named after the basketball "alley oop": a message that cannot reach its
destination is caught by intermediate devices, which keep passing it until
it scores.
"""

from repro.alleyoop.cloud import CloudAccount, CloudService
from repro.alleyoop.signup import SignupResult, sign_up
from repro.alleyoop.post import Post
from repro.alleyoop.feed import Feed, FeedEntry
from repro.alleyoop.app import AlleyOopApp

__all__ = [
    "CloudAccount",
    "CloudService",
    "SignupResult",
    "sign_up",
    "Post",
    "Feed",
    "FeedEntry",
    "AlleyOopApp",
]
