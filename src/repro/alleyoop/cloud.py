"""The AlleyOop cloud: account directory, CA front-end, action sync.

The cloud is infrastructure — it exists so the *one-time* requirement of
Fig. 2a has something to talk to, and to absorb action syncs "when the
Internet becomes available" (§V).  Crucially, nothing in dissemination
depends on it after sign-up; the integration tests assert that a study
with the cloud switched off after t=0 produces identical D2D results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.advertisement import validate_user_id
from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate, CertificateError
from repro.pki.csr import CertificateSigningRequest
from repro.storage.actionlog import Action


class CloudError(RuntimeError):
    """Cloud-side rejection (unknown account, offline, bad credentials)."""


@dataclass
class CloudAccount:
    """One registered AlleyOop user."""

    username: str
    user_id: str
    created_at: float
    certificate_serial: Optional[int] = None
    synced_actions: List[Action] = field(default_factory=list)
    last_synced_seq: int = 0


class CloudService:
    """Account registry + CA bridge + sync endpoint."""

    #: ``validate_user_id`` fixes identifiers to ``u`` + 9 digits, so the
    #: service can mint at most one billion distinct accounts.
    MAX_ACCOUNTS = 10**9

    def __init__(self, ca: Optional[CertificateAuthority] = None, **ca_kwargs) -> None:
        self.ca = ca or CertificateAuthority(**ca_kwargs)
        self._accounts: Dict[str, CloudAccount] = {}  # by username
        self._by_user_id: Dict[str, CloudAccount] = {}
        #: Monotonic id counter.  Deliberately *not* ``len(self._accounts)``:
        #: if account removal is ever added, a length-derived id would be
        #: re-minted and collide with the removed user's certificates and
        #: message history.
        self._next_account_index = 0
        self.online = True
        #: Optional fault gate (``(user_id, batch) -> batch``), installed
        #: by the fault injector.  Runs inside :meth:`sync_batch` after the
        #: online check and before any state changes; it may raise
        #: :class:`CloudError` (transient timeout, rate limit) or return a
        #: truncated batch (partial durable acceptance).
        self.sync_faults: Optional[Callable[[str, List[Action]], List[Action]]] = None
        self.stats = {"signups": 0, "certificates_issued": 0, "syncs": 0, "actions_accepted": 0}

    def _require_online(self) -> None:
        if not self.online:
            raise CloudError("no Internet connectivity")

    # -- accounts -----------------------------------------------------------------
    def create_account(self, username: str, now: float) -> CloudAccount:
        """Register a user and mint the unique 10-byte user-identifier."""
        self._require_online()
        if not username:
            raise CloudError("username must be non-empty")
        if username in self._accounts:
            raise CloudError(f"username {username!r} is taken")
        if self._next_account_index >= self.MAX_ACCOUNTS:
            raise CloudError(
                f"user-id space exhausted ({self.MAX_ACCOUNTS} accounts minted; "
                "the paper fixes identifiers at 10 bytes, §V-A)"
            )
        user_id = validate_user_id(f"u{self._next_account_index:09d}")
        self._next_account_index += 1
        account = CloudAccount(username=username, user_id=user_id, created_at=now)
        self._accounts[username] = account
        self._by_user_id[user_id] = account
        self.stats["signups"] += 1
        return account

    def account_for(self, username: str) -> CloudAccount:
        account = self._accounts.get(username)
        if account is None:
            raise CloudError(f"unknown account {username!r}")
        return account

    def account_by_user_id(self, user_id: str) -> Optional[CloudAccount]:
        return self._by_user_id.get(user_id)

    # -- certificates (the Fig. 2a flow) ---------------------------------------------
    def request_certificate(
        self, username: str, csr: CertificateSigningRequest, now: float
    ) -> Certificate:
        """Relay a CSR to the CA with the logged-in user's identifier.

        The cloud performs the paper's §IV mitigation: it asks the CA to
        "compare and validate the unique user-identifier provided in the
        certificate with the unique user-identifier affiliated with the
        logged in user" — a CSR claiming someone else's id is rejected.
        """
        self._require_online()
        account = self.account_for(username)
        try:
            certificate = self.ca.issue(csr, now=now, expected_user_id=account.user_id)
        except CertificateError as exc:
            raise CloudError(f"certificate issuance refused: {exc}") from exc
        account.certificate_serial = certificate.serial
        self.stats["certificates_issued"] += 1
        return certificate

    def fulfil_deferred_certificate(
        self,
        username: str,
        csr: CertificateSigningRequest,
        serial: int,
        signup_time: float,
    ) -> Certificate:
        """Complete a lazily-deferred Fig. 2a issuance.

        Lazy provisioning (:mod:`repro.pki.provisioning`) reserves the
        account and certificate serial while the cloud is reachable and
        defers the CPU-heavy part (key generation, CSR, CA signature) to
        first use.  Deferral is a *simulator* optimisation, not a protocol
        change: the certificate produced here is byte-identical to the one
        the eager flow would have issued at ``signup_time`` — same serial
        (reserved back then), same validity window — so this method
        deliberately skips the online check that a genuinely *new*
        issuance would require.
        """
        account = self.account_for(username)
        try:
            certificate = self.ca.issue(
                csr, now=signup_time, expected_user_id=account.user_id, serial=serial
            )
        except CertificateError as exc:
            raise CloudError(f"certificate issuance refused: {exc}") from exc
        account.certificate_serial = certificate.serial
        self.stats["certificates_issued"] += 1
        return certificate

    @property
    def root_certificate(self) -> Certificate:
        return self.ca.root_certificate

    def revoke_user(self, username: str, now: float, reason: str = "compromised") -> None:
        """Revoke a user's certificate (requires infrastructure, §IV)."""
        self._require_online()
        account = self.account_for(username)
        if account.certificate_serial is None:
            raise CloudError(f"{username!r} holds no certificate")
        self.ca.revoke(account.certificate_serial, now=now, reason=reason)

    # -- action sync -------------------------------------------------------------------
    def sync_batch(self, user_id: str, batch: List[Action]) -> int:
        """The bulk sync endpoint: accept a whole action batch in one round.

        Accepts the contiguous prefix of ``batch`` that extends the
        account's acknowledged log (a sequence gap stops acceptance, the
        same at-least-once contract the per-action loop honoured) and
        returns the highest sequence number durably accepted.  One call
        is one billed "round": the world-bootstrap path flushes a user's
        entire day-0 follow list (one FOLLOW_MANY record, or the
        oracle's per-edge FOLLOW suffix) in a single round instead of
        one round per edge.
        """
        self._require_online()
        if self.sync_faults is not None:
            batch = self.sync_faults(user_id, batch)
        account = self._by_user_id.get(user_id)
        if account is None:
            raise CloudError(f"unknown user id {user_id!r}")
        accepted = account.last_synced_seq
        prefix = 0
        for action in batch:
            if action.seq != accepted + prefix + 1:
                break  # gap: accept the contiguous prefix only
            prefix += 1
        if prefix:
            account.synced_actions.extend(batch[:prefix])
            accepted += prefix
            account.last_synced_seq = accepted
        self.stats["syncs"] += 1
        self.stats["actions_accepted"] += prefix
        return accepted

    def sync_uplink(self, user_id: str):
        """An uplink callable for :class:`repro.storage.syncqueue.SyncQueue`.

        Raises :class:`CloudError` when offline — the sync queue keeps the
        batch pending, which is exactly the at-least-once behaviour §V
        describes.
        """

        def _uplink(batch: List[Action]) -> int:
            return self.sync_batch(user_id, batch)

        return _uplink
