"""The one-time infrastructure requirement (paper Fig. 2a).

The full flow, executed exactly once per user, while Internet is
available:

1. the device generates an RSA key pair,
2. it builds a self-signed CSR claiming the account's unique
   user-identifier (proof of key possession),
3. the cloud cross-checks the claimed identifier against the logged-in
   account and relays to the CA,
4. the CA issues the user certificate,
5. the device installs private key + user certificate + CA root
   certificate in its keystore.

"After the one-time infrastructure requirement, Internet connectivity is
no longer needed for privacy, security, and message dissemination."
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from repro.alleyoop.cloud import CloudService
from repro.crypto.drbg import RandomSource
from repro.crypto.rsa import RsaKeyPair, generate_keypair
from repro.pki.certificate import Certificate, DistinguishedName
from repro.pki.csr import CertificateSigningRequest
from repro.pki.keystore import KeyStore


@dataclass(frozen=True)
class SignupResult:
    """Everything a device leaves sign-up with.

    ``certificate`` is ``None`` under *lazy* provisioning
    (:mod:`repro.pki.provisioning`): the placeholder keystore issues it on
    first use; read ``keystore.own_certificate`` to force it.
    """

    username: str
    user_id: str
    keystore: KeyStore
    certificate: Optional[Certificate]


def sign_up(
    cloud: CloudService,
    username: str,
    rng: RandomSource,
    now: float,
    key_bits: int = 1024,
    keypair: Optional[RsaKeyPair] = None,
) -> SignupResult:
    """Run the Fig. 2a flow end to end.  Raises
    :class:`~repro.alleyoop.cloud.CloudError` if the cloud is offline —
    sign-up is the one step that genuinely needs the Internet.

    ``keypair`` injects a pre-generated key pair (the keypair-pool path of
    :mod:`repro.pki.provisioning`); by default a fresh one is generated
    from ``rng``, which is the paper's on-device keygen."""
    account = cloud.create_account(username, now=now)
    keypair = keypair or generate_keypair(key_bits, rng=rng)
    csr = CertificateSigningRequest.create(
        subject=DistinguishedName(common_name=username),
        private_key=keypair.private,
        user_id=account.user_id,
    )
    certificate = cloud.request_certificate(username, csr, now=now)
    keystore = KeyStore()
    keystore.provision(
        private_key=keypair.private,
        certificate=certificate,
        root=cloud.root_certificate,
    )
    keystore.sync_revocations(cloud.ca.revocations)
    return SignupResult(
        username=username,
        user_id=account.user_id,
        keystore=keystore,
        certificate=certificate,
    )
