"""The user's feed: posts from followed users, newest first."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.alleyoop.post import Post, PostFormatError
from repro.storage.messagestore import StoredMessage


@dataclass(frozen=True)
class FeedEntry:
    """One rendered feed item."""

    author_id: str
    number: int
    created_at: float
    received_at: float
    hops: int
    post: Post

    @property
    def delay(self) -> float:
        """Seconds from creation to this device receiving it."""
        return self.received_at - self.created_at


class Feed:
    """Ordered, deduplicated collection of received posts."""

    def __init__(self) -> None:
        self._entries: List[FeedEntry] = []
        self._seen: set = set()

    def ingest(self, message: StoredMessage) -> Optional[FeedEntry]:
        """Add a verified message to the feed.  Returns the entry, or
        None for duplicates and undecodable payloads."""
        key: Tuple[str, int] = (message.author_id, message.number)
        if key in self._seen:
            return None
        try:
            post = Post.from_message(message)
        except PostFormatError:
            return None
        entry = FeedEntry(
            author_id=message.author_id,
            number=message.number,
            created_at=message.created_at,
            received_at=message.received_at if message.received_at is not None else message.created_at,
            hops=message.hops,
            post=post,
        )
        self._seen.add(key)
        self._entries.append(entry)
        return entry

    def entries(self, newest_first: bool = True) -> List[FeedEntry]:
        return sorted(
            self._entries, key=lambda e: (e.created_at, e.author_id, e.number),
            reverse=newest_first,
        )

    def from_author(self, author_id: str) -> List[FeedEntry]:
        return sorted(
            (e for e in self._entries if e.author_id == author_id),
            key=lambda e: e.number,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._seen
