"""Post content encoding.

A post is the application payload inside a SOS message: UTF-8 text plus a
small amount of structured metadata, encoded as JSON bytes (the middleware
neither knows nor cares — it signs and moves opaque bytes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.storage.messagestore import StoredMessage


class PostFormatError(ValueError):
    """Payload did not decode as an AlleyOop post."""


@dataclass(frozen=True)
class Post:
    """One AlleyOop Social post."""

    text: str
    topic: Optional[str] = None
    attributes: Dict[str, str] = field(default_factory=dict)

    MAX_TEXT_BYTES = 8192

    def encode(self) -> bytes:
        raw = self.text.encode("utf-8")
        if len(raw) > self.MAX_TEXT_BYTES:
            raise PostFormatError(
                f"post text too long ({len(raw)} > {self.MAX_TEXT_BYTES} bytes)"
            )
        payload = {"v": 1, "text": self.text}
        if self.topic is not None:
            payload["topic"] = self.topic
        if self.attributes:
            payload["attrs"] = dict(self.attributes)
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")

    @classmethod
    def decode(cls, body: bytes) -> "Post":
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise PostFormatError(f"undecodable post payload: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("v") != 1 or "text" not in payload:
            raise PostFormatError(f"unrecognised post structure: {payload!r}")
        attrs = payload.get("attrs", {})
        topic = payload.get("topic")
        # Well-formed JSON can still carry the wrong shapes; misshapen
        # fields must surface as PostFormatError (the decode contract),
        # not as a raw TypeError/ValueError from the constructor.
        if not isinstance(attrs, dict) or not (topic is None or isinstance(topic, str)):
            raise PostFormatError(f"unrecognised post structure: {payload!r}")
        return cls(
            text=str(payload["text"]),
            topic=topic,
            attributes=dict(attrs),
        )

    @classmethod
    def from_message(cls, message: StoredMessage) -> "Post":
        return cls.decode(message.body)
