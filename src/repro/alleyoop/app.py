"""The AlleyOop Social application.

Composes the SOS middleware with the app-level concerns the paper assigns
to the application layer (§III-A, §V): the local database (action log),
cloud sync when online, the follow list (wired into the middleware as the
interest set), and the feed.

Every user interaction follows §V's two-step rule:

1. save the action to the local database,
2. queue it for cloud sync (delivered whenever the Internet is next
   available) — and, independently, let the DTN disseminate it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.alleyoop.cloud import CloudError, CloudService
from repro.alleyoop.feed import Feed, FeedEntry
from repro.alleyoop.post import Post, PostFormatError
from repro.core.config import SosConfig
from repro.core.delegates import SosDelegate
from repro.core.middleware import SOSMiddleware
from repro.core.routing.registry import RoutingRegistry
from repro.crypto.drbg import RandomSource
# Imported from the dependency-free module, not the repro.faults package,
# so attaching a retry policy never drags the injector into this import graph.
from repro.faults.retry import RetryPolicy
from repro.mpc.framework import MpcFramework
from repro.pki.keystore import KeyStore
from repro.sim.engine import Event, Simulator
from repro.storage.actionlog import ActionKind, ActionLog
from repro.storage.messagestore import StoredMessage
from repro.storage.syncqueue import SyncQueue


class AlleyOopApp(SosDelegate):
    """One user's AlleyOop Social instance on one device."""

    def __init__(
        self,
        sim: Simulator,
        framework: MpcFramework,
        device_id: str,
        user_id: str,
        username: str,
        keystore: KeyStore,
        cloud: CloudService,
        rng: RandomSource,
        config: Optional[SosConfig] = None,
        registry: Optional[RoutingRegistry] = None,
        resilience: Optional[RetryPolicy] = None,
    ) -> None:
        self.sim = sim
        self.user_id = user_id
        self.username = username
        self.cloud = cloud
        self.actions = ActionLog()
        self.sync_queue = SyncQueue(self.actions)
        self.feed = Feed()
        #: Retry schedule for failed cloud syncs; None keeps the seed's
        #: fire-and-forget behaviour (no retry events, no trace emissions).
        self.resilience = resilience
        #: Failed sync attempts over this app's lifetime (counts always,
        #: with or without a retry policy).
        self.sync_failures = 0
        self._sync_attempt = 0
        self._retry_event: Optional[Event] = None
        # Jitter draws come from a named sim stream so a fixed seed fully
        # determines the retry schedule; created only when resilience is
        # on, keeping faults=none runs byte-identical to the seed.
        self._retry_rng = (
            sim.streams.get(f"sync-retry:{user_id}") if resilience is not None else None
        )
        self.follows: Set[str] = set()
        #: Subscription knowledge gossiped by other users (author ->
        #: followee set), maintained when gossip_follows is enabled.
        self.social_map: dict = {}
        #: Latest applied gossip action per (follower, followee), as the
        #: (created_at, message number) pair of the action message.  A
        #: user's actions are totally ordered by their message number, so
        #: gossip arriving out of order (a stale unfollow overtaken by a
        #: newer follow) is detected and ignored instead of clobbering
        #: the social map and the routing hints derived from it.
        self._gossip_applied: Dict[Tuple[str, str], Tuple[float, int]] = {}
        self._notifications: List[str] = []
        self.sos = SOSMiddleware(
            sim=sim,
            framework=framework,
            device_id=device_id,
            user_id=user_id,
            keystore=keystore,
            rng=rng,
            config=config,
            delegate=self,
            registry=registry,
        )

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        self.sos.start()

    def stop(self) -> None:
        self.sos.stop()

    # -- user actions (§V: local save + cloud sync + dissemination) -----------------
    def post(self, text: str, topic: Optional[str] = None) -> StoredMessage:
        """Publish a post."""
        body = Post(text=text, topic=topic).encode()
        message = self.sos.send(body)
        self.actions.append(
            ActionKind.POST,
            actor=self.user_id,
            created_at=self.sim.now,
            number=message.number,
            text=text,
        )
        self.try_cloud_sync()
        return message

    def follow(self, user_id: str) -> None:
        """Subscribe to another user's posts."""
        if user_id == self.user_id:
            raise ValueError("cannot follow yourself")
        if user_id in self.follows:
            return
        self.follows.add(user_id)
        self.sos.set_interests(self.follows)
        self.actions.append(
            ActionKind.FOLLOW, actor=self.user_id, created_at=self.sim.now, target=user_id
        )
        self.sim.trace.emit(self.sim.now, "social", "follow", follower=self.user_id, followee=user_id)
        self._gossip_action("follow", user_id)
        self.try_cloud_sync()

    def follow_many(self, user_ids: Iterable[str]) -> int:
        """Bulk-subscribe to several users in one round (bootstrap path).

        Semantically equivalent to calling :meth:`follow` once per id —
        same resulting follow set and interest set, same subscription
        windows in the analysis — but the aggregate work is O(1) records
        instead of O(edges): the middleware interest set is updated
        *once*; the local log gains one compact
        :attr:`~repro.storage.actionlog.ActionKind.FOLLOW_MANY` action
        whose payload carries the ordered target tuple (the per-edge
        path logs one FOLLOW per target — the oracle for what the batch
        record must expand to); one aggregated ``social``/``follow_many``
        trace event stands in for the per-edge ``follow`` events (the
        trace collector expands it to the identical per-pair
        subscription windows); and the pending suffix is flushed through
        the cloud's bulk sync endpoint
        (:meth:`repro.alleyoop.cloud.CloudService.sync_batch`) in a
        single round instead of one round per edge.

        Subscription gossip is deliberately suppressed: this is the
        day-0 world-bootstrap semantics (the initial follow graph
        predates any encounter, so there is no one to gossip to), which
        matches what the per-edge wiring does in every shipped scenario
        (``gossip_follows`` is off during world construction).

        Returns the number of *new* follows (already-followed ids and
        duplicates in the input are skipped, like :meth:`follow`).
        """
        new_ids: List[str] = []
        seen: Set[str] = set()
        for user_id in user_ids:
            if user_id == self.user_id:
                raise ValueError("cannot follow yourself")
            if user_id in self.follows or user_id in seen:
                continue
            seen.add(user_id)
            new_ids.append(user_id)
        if not new_ids:
            return 0
        self.follows.update(new_ids)
        self.sos.set_interests(self.follows)
        now = self.sim.now
        targets = tuple(new_ids)
        self.actions.append(
            ActionKind.FOLLOW_MANY, actor=self.user_id, created_at=now,
            targets=targets,
        )
        self.sim.trace.emit(
            now, "social", "follow_many", follower=self.user_id, followees=targets
        )
        self.try_cloud_sync()
        return len(new_ids)

    def unfollow(self, user_id: str) -> None:
        if user_id not in self.follows:
            return
        self.follows.discard(user_id)
        self.sos.set_interests(self.follows)
        self.actions.append(
            ActionKind.UNFOLLOW, actor=self.user_id, created_at=self.sim.now, target=user_id
        )
        self.sim.trace.emit(self.sim.now, "social", "unfollow", follower=self.user_id, followee=user_id)
        self._gossip_action("unfollow", user_id)
        self.try_cloud_sync()

    def _gossip_action(self, action: str, target: str) -> None:
        """Publish a follow/unfollow as a system message (§V), when the
        middleware is configured to gossip subscription changes."""
        if not self.sos.config.gossip_follows:
            return
        body = Post(
            text="", topic="sys:subscription",
            attributes={"action": action, "followee": target},
        ).encode()
        self.sos.send(body)

    def select_routing(self, name: str) -> None:
        """The in-app scheme toggle (§VII)."""
        self.sos.select_protocol(name)

    # -- lifecycle under faults ---------------------------------------------------------
    def crash(self) -> None:
        """Abrupt device loss.  Volatile state — the feed, notifications,
        the retry timer and attempt counter, every middleware cache and
        secure channel — is gone; durable state — the action log, the
        acknowledged sync prefix, the keystore and its anti-replay
        record — survives for :meth:`reboot`."""
        self._cancel_retry()
        self._sync_attempt = 0
        self.feed = Feed()
        self._notifications.clear()
        self.sos.crash()

    def reboot(self) -> None:
        """Come back up after :meth:`crash`: go on-air again and, when a
        retry policy is attached, immediately re-attempt the sync of the
        surviving unacknowledged suffix (§V's "when the Internet becomes
        available" applies across restarts too)."""
        self.sos.reboot()
        if self.resilience is not None and self.sync_queue.pending_count:
            self.try_cloud_sync()

    # -- cloud --------------------------------------------------------------------------
    def try_cloud_sync(self) -> int:
        """Opportunistically sync pending actions; 0 when the sync failed.

        Failures always increment :attr:`sync_failures`.  With a
        :class:`~repro.faults.retry.RetryPolicy` attached, a failure also
        emits a ``cloud/sync_failed`` trace event and schedules a single
        outstanding retry with exponential backoff + jitter; without one
        (the seed configuration — whose default study runs with the cloud
        offline, failing every post-time sync) the failure stays silent so
        ``faults=none`` traces remain byte-identical to the seed.
        """
        try:
            newly = self.sync_queue.sync(self.cloud.sync_uplink(self.user_id))
        except CloudError as exc:
            self.sync_failures += 1
            if self.resilience is not None:
                self.sim.trace.emit(
                    self.sim.now,
                    "cloud",
                    "sync_failed",
                    owner=self.user_id,
                    pending=self.sync_queue.pending_count,
                    attempt=self._sync_attempt,
                    error=str(exc),
                )
                self._schedule_retry()
            return 0
        if newly > 0:
            self._sync_attempt = 0
        if self.resilience is not None:
            if self.sync_queue.pending_count:
                # Partial acceptance: the unacknowledged suffix needs
                # another round (backoff still grows if no progress).
                self._schedule_retry()
            else:
                self._cancel_retry()
        return newly

    def _schedule_retry(self) -> None:
        """Keep exactly one outstanding retry; backoff grows per attempt."""
        if self._retry_event is not None:
            return
        delay = self.resilience.schedule(self._sync_attempt, self._retry_rng.random)
        self._sync_attempt += 1
        self._retry_event = self.sim.schedule_in(
            delay, self._retry_sync, name=f"sync-retry:{self.user_id}"
        )
        self.sim.trace.emit(
            self.sim.now,
            "cloud",
            "sync_retry",
            owner=self.user_id,
            attempt=self._sync_attempt,
            delay=round(delay, 3),
        )

    def _retry_sync(self) -> None:
        self._retry_event = None
        self.try_cloud_sync()

    def _cancel_retry(self) -> None:
        if self._retry_event is not None:
            self._retry_event.cancel()
            self._retry_event = None

    def refresh_revocations(self) -> bool:
        """Pull the CA's CRL — only works with infrastructure (§IV)."""
        if not self.cloud.online:
            return False
        self.sos.adhoc.keystore.sync_revocations(self.cloud.ca.revocations)
        return True

    # -- SosDelegate --------------------------------------------------------------------
    def sos_message_received(self, message: StoredMessage, from_user: str) -> None:
        if self._maybe_apply_subscription_gossip(message):
            return
        if message.author_id in self.follows or message.author_id == self.user_id:
            entry = self.feed.ingest(message)
            if entry is not None:
                self.sim.trace.emit(
                    self.sim.now,
                    "app",
                    "feed",
                    owner=self.user_id,
                    author=message.author_id,
                    number=message.number,
                    hops=message.hops,
                    delay=entry.delay,
                )

    def _maybe_apply_subscription_gossip(self, message: StoredMessage) -> bool:
        """Apply a gossiped follow/unfollow action (returns True when the
        message was subscription gossip, which never enters the feed).

        DTN delivery reorders freely, so follow/unfollow actions by the
        same author can arrive in any order.  Actions are applied in
        *action* order, not arrival order: each (follower, followee) pair
        remembers the newest applied action's (created_at, number) stamp
        and older gossip is acknowledged but not applied.
        """
        try:
            post = Post.from_message(message)
        except PostFormatError as exc:
            # The message passed originator verification but its body is
            # not an AlleyOop post at all.  That is evidence of a buggy
            # or hostile sender — record it instead of silently moving
            # on (the old bare ``except`` also masked our own bugs).
            self.sim.trace.emit(
                self.sim.now,
                "app",
                "malformed_payload",
                owner=self.user_id,
                author=message.author_id,
                number=message.number,
                error=str(exc),
            )
            return False
        if post.topic != "sys:subscription":
            return False
        action = post.attributes.get("action")
        followee = post.attributes.get("followee")
        # Attribute *values* are sender-controlled too: a non-string
        # followee must not crash the pair lookup (lists are unhashable)
        # or pollute the social map with non-user keys.
        if not isinstance(followee, str) or not followee:
            return True
        if not isinstance(action, str):
            return True
        if action in ("follow", "unfollow"):
            pair = (message.author_id, followee)
            stamp = (message.created_at, message.number)
            if stamp <= self._gossip_applied.get(pair, (float("-inf"), -1)):
                return True  # stale: a newer action for this pair already applied
            self._gossip_applied[pair] = stamp
        followers = self.social_map.setdefault(followee, set())
        if action == "follow":
            followers.add(message.author_id)
        elif action == "unfollow":
            followers.discard(message.author_id)
        # Feed destination knowledge to hint-aware routing protocols.
        protocol = self.sos.messages.protocol
        hints = getattr(protocol, "subscriber_hints", None)
        if hints is not None:
            hints[followee] = set(followers)
        return True

    def sos_surrounding_users_changed(self, user_ids: List[str]) -> None:
        self._notifications.append(f"nearby: {', '.join(user_ids) if user_ids else '(none)'}")

    def sos_peer_verified(self, user_id: str) -> None:
        self._notifications.append(f"verified: {user_id}")

    def sos_security_event(self, user_id: str, reason: str) -> None:
        self._notifications.append(f"security: {user_id}: {reason}")

    # -- views ---------------------------------------------------------------------------
    @property
    def notifications(self) -> List[str]:
        return list(self._notifications)

    def timeline(self) -> List[FeedEntry]:
        return self.feed.entries()

    def own_post_count(self) -> int:
        return self.sos.store.highest_number(self.user_id)
