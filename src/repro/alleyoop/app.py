"""The AlleyOop Social application.

Composes the SOS middleware with the app-level concerns the paper assigns
to the application layer (§III-A, §V): the local database (action log),
cloud sync when online, the follow list (wired into the middleware as the
interest set), and the feed.

Every user interaction follows §V's two-step rule:

1. save the action to the local database,
2. queue it for cloud sync (delivered whenever the Internet is next
   available) — and, independently, let the DTN disseminate it.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.alleyoop.cloud import CloudError, CloudService
from repro.alleyoop.feed import Feed, FeedEntry
from repro.alleyoop.post import Post
from repro.core.config import SosConfig
from repro.core.delegates import SosDelegate
from repro.core.middleware import SOSMiddleware
from repro.core.routing.registry import RoutingRegistry
from repro.crypto.drbg import RandomSource
from repro.mpc.framework import MpcFramework
from repro.pki.keystore import KeyStore
from repro.sim.engine import Simulator
from repro.storage.actionlog import ActionKind, ActionLog
from repro.storage.messagestore import StoredMessage
from repro.storage.syncqueue import SyncQueue


class AlleyOopApp(SosDelegate):
    """One user's AlleyOop Social instance on one device."""

    def __init__(
        self,
        sim: Simulator,
        framework: MpcFramework,
        device_id: str,
        user_id: str,
        username: str,
        keystore: KeyStore,
        cloud: CloudService,
        rng: RandomSource,
        config: Optional[SosConfig] = None,
        registry: Optional[RoutingRegistry] = None,
    ) -> None:
        self.sim = sim
        self.user_id = user_id
        self.username = username
        self.cloud = cloud
        self.actions = ActionLog()
        self.sync_queue = SyncQueue(self.actions)
        self.feed = Feed()
        self.follows: Set[str] = set()
        #: Subscription knowledge gossiped by other users (author ->
        #: followee set), maintained when gossip_follows is enabled.
        self.social_map: dict = {}
        self._notifications: List[str] = []
        self.sos = SOSMiddleware(
            sim=sim,
            framework=framework,
            device_id=device_id,
            user_id=user_id,
            keystore=keystore,
            rng=rng,
            config=config,
            delegate=self,
            registry=registry,
        )

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        self.sos.start()

    def stop(self) -> None:
        self.sos.stop()

    # -- user actions (§V: local save + cloud sync + dissemination) -----------------
    def post(self, text: str, topic: Optional[str] = None) -> StoredMessage:
        """Publish a post."""
        body = Post(text=text, topic=topic).encode()
        message = self.sos.send(body)
        self.actions.append(
            ActionKind.POST,
            actor=self.user_id,
            created_at=self.sim.now,
            number=message.number,
            text=text,
        )
        self.try_cloud_sync()
        return message

    def follow(self, user_id: str) -> None:
        """Subscribe to another user's posts."""
        if user_id == self.user_id:
            raise ValueError("cannot follow yourself")
        if user_id in self.follows:
            return
        self.follows.add(user_id)
        self.sos.set_interests(self.follows)
        self.actions.append(
            ActionKind.FOLLOW, actor=self.user_id, created_at=self.sim.now, target=user_id
        )
        self.sim.trace.emit(self.sim.now, "social", "follow", follower=self.user_id, followee=user_id)
        self._gossip_action("follow", user_id)
        self.try_cloud_sync()

    def unfollow(self, user_id: str) -> None:
        if user_id not in self.follows:
            return
        self.follows.discard(user_id)
        self.sos.set_interests(self.follows)
        self.actions.append(
            ActionKind.UNFOLLOW, actor=self.user_id, created_at=self.sim.now, target=user_id
        )
        self.sim.trace.emit(self.sim.now, "social", "unfollow", follower=self.user_id, followee=user_id)
        self._gossip_action("unfollow", user_id)
        self.try_cloud_sync()

    def _gossip_action(self, action: str, target: str) -> None:
        """Publish a follow/unfollow as a system message (§V), when the
        middleware is configured to gossip subscription changes."""
        if not self.sos.config.gossip_follows:
            return
        body = Post(
            text="", topic="sys:subscription",
            attributes={"action": action, "followee": target},
        ).encode()
        self.sos.send(body)

    def select_routing(self, name: str) -> None:
        """The in-app scheme toggle (§VII)."""
        self.sos.select_protocol(name)

    # -- cloud --------------------------------------------------------------------------
    def try_cloud_sync(self) -> int:
        """Opportunistically sync pending actions; 0 when offline."""
        try:
            return self.sync_queue.sync(self.cloud.sync_uplink(self.user_id))
        except CloudError:
            return 0

    def refresh_revocations(self) -> bool:
        """Pull the CA's CRL — only works with infrastructure (§IV)."""
        if not self.cloud.online:
            return False
        self.sos.adhoc.keystore.sync_revocations(self.cloud.ca.revocations)
        return True

    # -- SosDelegate --------------------------------------------------------------------
    def sos_message_received(self, message: StoredMessage, from_user: str) -> None:
        if self._maybe_apply_subscription_gossip(message):
            return
        if message.author_id in self.follows or message.author_id == self.user_id:
            entry = self.feed.ingest(message)
            if entry is not None:
                self.sim.trace.emit(
                    self.sim.now,
                    "app",
                    "feed",
                    owner=self.user_id,
                    author=message.author_id,
                    number=message.number,
                    hops=message.hops,
                    delay=entry.delay,
                )

    def _maybe_apply_subscription_gossip(self, message: StoredMessage) -> bool:
        """Apply a gossiped follow/unfollow action (returns True when the
        message was subscription gossip, which never enters the feed)."""
        try:
            post = Post.from_message(message)
        except Exception:
            return False
        if post.topic != "sys:subscription":
            return False
        action = post.attributes.get("action")
        followee = post.attributes.get("followee")
        if not followee:
            return True
        followers = self.social_map.setdefault(followee, set())
        if action == "follow":
            followers.add(message.author_id)
        elif action == "unfollow":
            followers.discard(message.author_id)
        # Feed destination knowledge to hint-aware routing protocols.
        protocol = self.sos.messages.protocol
        hints = getattr(protocol, "subscriber_hints", None)
        if hints is not None:
            hints[followee] = set(followers)
        return True

    def sos_surrounding_users_changed(self, user_ids: List[str]) -> None:
        self._notifications.append(f"nearby: {', '.join(user_ids) if user_ids else '(none)'}")

    def sos_peer_verified(self, user_id: str) -> None:
        self._notifications.append(f"verified: {user_id}")

    def sos_security_event(self, user_id: str, reason: str) -> None:
        self._notifications.append(f"security: {user_id}: {reason}")

    # -- views ---------------------------------------------------------------------------
    @property
    def notifications(self) -> List[str]:
        return list(self._notifications)

    def timeline(self) -> List[FeedEntry]:
        return self.feed.entries()

    def own_post_count(self) -> int:
        return self.sos.store.highest_number(self.user_id)
