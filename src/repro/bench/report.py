"""The cross-PR trajectory report.

Consolidates every ``BENCH_*.json`` in a directory into one trend
table: suite → run → repetition with timings, memory, the domain
counters and the trace digest.  Output is markdown (for humans and PR
descriptions) or JSON (for tooling); both orderings are fully
deterministic — artifacts sort by ``(suite, filename)``, runs by
``(name, repetition)`` — so the report itself can be golden-tested.

Requested-but-absent suites (``--suites a,b``) are reported as missing
rather than silently dropped, and files matching the glob that fail
schema validation land in a trailing "skipped" section: a trajectory
that quietly loses a point is worse than no trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.schema import BenchSchemaError, load_artifact

#: Metric columns the table always shows, in order (absent → "-").
TABLE_METRICS = ("wall_s", "cpu_s", "max_rss_kb", "disseminations", "delivery_ratio")


def consolidate(
    directory: Path,
    pattern: str = "BENCH_*.json",
    suites: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Load every artifact under ``directory`` matching ``pattern``.

    Returns ``{"artifacts": [...], "missing_suites": [...],
    "skipped": [...]}`` with deterministic ordering throughout.
    """
    directory = Path(directory)
    artifacts: List[Dict[str, Any]] = []
    skipped: List[Dict[str, str]] = []
    for path in sorted(directory.glob(pattern)):
        try:
            data = load_artifact(path)
        except BenchSchemaError as exc:
            skipped.append({"path": path.name, "error": str(exc)})
            continue
        artifacts.append(
            {
                "path": path.name,
                "suite": data["suite"],
                "git_rev": data.get("git_rev"),
                "created_utc": data.get("created_utc"),
                "host_fingerprint": data["host"].get("fingerprint"),
                "sampler": data["host"].get("sampler"),
                "runs": sorted(
                    data["runs"], key=lambda run: (run["name"], run["repetition"])
                ),
            }
        )
    artifacts.sort(key=lambda item: (item["suite"], item["path"]))
    present = {item["suite"] for item in artifacts}
    if suites is not None:
        wanted = list(suites)
        artifacts = [item for item in artifacts if item["suite"] in set(wanted)]
        missing = [name for name in wanted if name not in present]
    else:
        missing = []
    return {"artifacts": artifacts, "missing_suites": missing, "skipped": skipped}


def _metric_cell(metrics: Dict[str, float], key: str) -> str:
    value = metrics.get(key)
    if value is None:
        return "-"
    if key in ("wall_s", "cpu_s"):
        return f"{value:.3f}"
    if key == "delivery_ratio":
        return f"{value:.3f}"
    return f"{value:.0f}"


def render_markdown(consolidated: Dict[str, Any]) -> str:
    """The markdown trend report."""
    lines: List[str] = ["# Benchmark trajectory", ""]
    artifacts = consolidated["artifacts"]
    if not artifacts:
        lines.append("No benchmark artifacts found.")
        lines.append("")
    for item in artifacts:
        rev = (item["git_rev"] or "unknown")[:12]
        lines.append(f"## suite `{item['suite']}` — `{item['path']}`")
        lines.append("")
        lines.append(
            f"git `{rev}` · host `{item['host_fingerprint']}` · "
            f"sampler `{item['sampler']}` · created {item['created_utc'] or '-'}"
        )
        lines.append("")
        header = ["run", "rep"] + list(TABLE_METRICS) + ["trace"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for run in item["runs"]:
            sha = run.get("trace_sha256")
            cells = [run["name"], str(run["repetition"])]
            cells += [_metric_cell(run["metrics"], key) for key in TABLE_METRICS]
            cells.append(sha[:12] if sha else "-")
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    for suite in consolidated["missing_suites"]:
        lines.append(f"## suite `{suite}` — missing")
        lines.append("")
        lines.append("No `BENCH_*.json` artifact found for this suite.")
        lines.append("")
    if consolidated["skipped"]:
        lines.append("## skipped files")
        lines.append("")
        for entry in consolidated["skipped"]:
            lines.append(f"* `{entry['path']}`: {entry['error']}")
        lines.append("")
    return "\n".join(lines)


def render_json(consolidated: Dict[str, Any]) -> str:
    """The JSON trend report (sorted keys, trailing newline)."""
    return json.dumps(consolidated, indent=2, sort_keys=True) + "\n"
