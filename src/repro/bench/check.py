"""The regression gate: ``repro bench check --against baseline``.

Compares a current artifact against a baseline on their shared
``(run, repetition)`` keys with two independent checks:

* **slowdown** — a timing metric (``cpu_s`` by default; wall time is
  noisier) may grow by at most ``threshold`` relative to the baseline
  (``0.5`` = fail beyond 1.5x).  Points whose baseline *and* current
  values both sit under ``min_seconds`` are skipped — a 5 ms point
  doubling is measurement noise, not a regression.
* **trace divergence** — shared runs whose configs match must carry
  identical ``trace_sha256``.  Unlike timings this comparison is exact
  and host-independent: a mismatch means the simulation itself changed
  behaviour for a fixed seed, which is either an intentional
  re-baseline (update the committed artifact) or a determinism bug.

Cross-host honesty: absolute timings from different host fingerprints
are only loosely comparable; the gate reports the fingerprint mismatch
and CI lanes run with a generous threshold, leaning on the trace check
for the exact signal.  No shared runs at all is a *failure*, not a
pass — a gate that silently compares nothing is no gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.bench.schema import runs_by_key

#: Default allowed relative slowdown (0.5 == fail beyond 1.5x).
DEFAULT_THRESHOLD = 0.5
#: Points faster than this in both artifacts are never judged.
DEFAULT_MIN_SECONDS = 0.05


@dataclass
class CheckEntry:
    """One compared point."""

    name: str
    repetition: int
    status: str  # "ok" | "slow" | "trace-mismatch" | "skipped-small" | "config-drift"
    detail: str = ""
    baseline: float = 0.0
    current: float = 0.0

    @property
    def failed(self) -> bool:
        return self.status in ("slow", "trace-mismatch")


@dataclass
class CheckReport:
    """The gate's verdict over every shared point."""

    metric: str
    threshold: float
    entries: List[CheckEntry] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[CheckEntry]:
        return [entry for entry in self.entries if entry.failed]

    @property
    def compared(self) -> int:
        return sum(1 for entry in self.entries if entry.status != "config-drift")

    @property
    def ok(self) -> bool:
        return not self.failures and self.compared > 0

    def render(self) -> str:
        lines = [
            f"bench check: metric={self.metric} threshold=+{self.threshold * 100:.0f}%"
        ]
        for note in self.notes:
            lines.append(f"note: {note}")
        for entry in sorted(self.entries, key=lambda e: (e.name, e.repetition)):
            label = f"{entry.name}#{entry.repetition}"
            if entry.status == "ok":
                lines.append(
                    f"  ok    {label}: {entry.baseline:.3f} -> {entry.current:.3f} "
                    f"({_ratio(entry):+.1f}%)"
                )
            elif entry.status == "slow":
                lines.append(
                    f"  FAIL  {label}: {entry.baseline:.3f} -> {entry.current:.3f} "
                    f"({_ratio(entry):+.1f}% > +{self.threshold * 100:.0f}%)"
                )
            elif entry.status == "trace-mismatch":
                lines.append(f"  FAIL  {label}: {entry.detail}")
            else:
                lines.append(f"  skip  {label}: {entry.detail}")
        if self.compared == 0:
            lines.append("  FAIL  no comparable runs between the two artifacts")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {self.compared} compared, {len(self.failures)} regressed"
        )
        return "\n".join(lines)


def _ratio(entry: CheckEntry) -> float:
    if entry.baseline <= 0:
        return 0.0
    return (entry.current / entry.baseline - 1.0) * 100.0


def compare_artifacts(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    metric: str = "cpu_s",
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    check_traces: bool = True,
) -> CheckReport:
    """Gate ``current`` against ``baseline`` (both validated artifact
    dicts); returns a :class:`CheckReport` whose ``ok`` decides CI."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    report = CheckReport(metric=metric, threshold=threshold)
    cur_host = current.get("host", {}).get("fingerprint")
    base_host = baseline.get("host", {}).get("fingerprint")
    if cur_host != base_host:
        report.notes.append(
            f"host fingerprints differ (baseline {base_host}, current {cur_host}): "
            "absolute timings are loosely comparable; trust the trace check"
        )
    base_runs = runs_by_key(baseline)
    cur_runs = runs_by_key(current)
    for key in sorted(set(base_runs) & set(cur_runs)):
        name, repetition = key
        base, cur = base_runs[key], cur_runs[key]
        if base["config"] != cur["config"]:
            report.entries.append(
                CheckEntry(
                    name, repetition, "config-drift",
                    detail="same run key but different configs — not comparable "
                    "(suite definition changed; re-baseline)",
                )
            )
            continue
        if check_traces:
            base_sha, cur_sha = base["trace_sha256"], cur["trace_sha256"]
            if base_sha and cur_sha and base_sha != cur_sha:
                report.entries.append(
                    CheckEntry(
                        name, repetition, "trace-mismatch",
                        detail=f"trace sha256 diverged ({base_sha[:12]} -> "
                        f"{cur_sha[:12]}): behaviour changed for a fixed seed "
                        "— re-baseline deliberately or fix the determinism bug",
                    )
                )
                continue
        base_value = base["metrics"].get(metric)
        cur_value = cur["metrics"].get(metric)
        if base_value is None or cur_value is None:
            report.entries.append(
                CheckEntry(
                    name, repetition, "skipped-small",
                    detail=f"metric {metric!r} absent from one side",
                )
            )
            continue
        entry = CheckEntry(
            name, repetition, "ok", baseline=float(base_value), current=float(cur_value)
        )
        if base_value < min_seconds and cur_value < min_seconds:
            entry.status = "skipped-small"
            entry.detail = (
                f"both under min_seconds={min_seconds}: too small to judge"
            )
        elif base_value > 0 and cur_value > base_value * (1.0 + threshold):
            entry.status = "slow"
        report.entries.append(entry)
    return report
