"""Declarative benchmark suites.

A suite is data, not code (the doe-suite idea): a name plus a list of
runs, each naming a point in scenario space — a dict of
``ScenarioConfig`` keyword overrides — and a repetition count.  The
built-ins live here as plain dicts and go through exactly the same
:meth:`BenchSuite.from_dict` path as a user's ``--suite-file`` JSON, so
there is one validated format::

    {
      "suite": "smoke",
      "description": "...",
      "runs": [
        {"name": "smoke_default", "repetitions": 2,
         "config": {"duration_days": 1, "total_posts": 40}},
        ...
      ]
    }

Design rule: the ``smoke`` suite's runs are a strict subset of the
``default`` suite's runs (same names, same configs).  The committed
``BENCH_default.json`` baseline therefore contains every smoke point,
which is what lets the cheap CI lane gate ``BENCH_smoke.json`` against
it — shared keys compare, the full-study point simply has no
counterpart.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple


class SuiteError(ValueError):
    """A suite definition is malformed or unknown."""


@dataclass(frozen=True)
class BenchRun:
    """One named point: ScenarioConfig overrides + repetition count."""

    name: str
    config: Dict[str, Any]
    repetitions: int = 1

    def keys(self) -> List[Tuple[str, int]]:
        """The journal/artifact keys this run expands to."""
        return [(self.name, rep) for rep in range(self.repetitions)]


@dataclass(frozen=True)
class BenchSuite:
    """A named, ordered list of runs."""

    name: str
    runs: Tuple[BenchRun, ...]
    description: str = ""

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchSuite":
        if not isinstance(data, dict):
            raise SuiteError(f"suite must be an object, got {type(data).__name__}")
        name = data.get("suite")
        if not isinstance(name, str) or not name:
            raise SuiteError("suite definition missing non-empty string 'suite'")
        raw_runs = data.get("runs")
        if not isinstance(raw_runs, list) or not raw_runs:
            raise SuiteError(f"suite {name!r} missing non-empty list 'runs'")
        runs: List[BenchRun] = []
        seen = set()
        for index, raw in enumerate(raw_runs):
            where = f"suite {name!r} runs[{index}]"
            if not isinstance(raw, dict):
                raise SuiteError(f"{where} must be an object")
            run_name = raw.get("name")
            if not isinstance(run_name, str) or not run_name:
                raise SuiteError(f"{where} missing non-empty string 'name'")
            if run_name in seen:
                raise SuiteError(f"{where} duplicates run name {run_name!r}")
            seen.add(run_name)
            config = raw.get("config", {})
            if not isinstance(config, dict):
                raise SuiteError(f"{where} 'config' must be an object")
            repetitions = raw.get("repetitions", 1)
            if not isinstance(repetitions, int) or repetitions < 1:
                raise SuiteError(f"{where} 'repetitions' must be a positive int")
            runs.append(BenchRun(name=run_name, config=dict(config), repetitions=repetitions))
        description = data.get("description", "")
        if not isinstance(description, str):
            raise SuiteError(f"suite {name!r} 'description' must be a string")
        return cls(name=name, runs=tuple(runs), description=description)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.name,
            "description": self.description,
            "runs": [dataclasses.asdict(run) for run in self.runs],
        }

    def validate_configs(self) -> None:
        """Reject bad scenario overrides at definition time, not
        mid-suite (the same discipline ScenarioConfig applies to fault
        specs)."""
        from repro.experiments.scenario import ScenarioConfig

        field_names = {field.name for field in dataclasses.fields(ScenarioConfig)}
        for run in self.runs:
            unknown = sorted(set(run.config) - field_names)
            if unknown:
                raise SuiteError(
                    f"run {run.name!r} sets unknown ScenarioConfig fields {unknown}"
                )
            # Constructing the config runs __post_init__ validation.
            scenario_config(run.config)


def scenario_config(overrides: Dict[str, Any]):
    """A ScenarioConfig built from a run's override dict (tuple-valued
    fields arrive as JSON lists and are coerced back)."""
    from repro.experiments.scenario import ScenarioConfig

    tuple_fields = {
        field.name
        for field in dataclasses.fields(ScenarioConfig)
        if "Tuple" in str(field.type)
    }
    kwargs = {
        key: tuple(value) if key in tuple_fields and isinstance(value, list) else value
        for key, value in overrides.items()
    }
    return ScenarioConfig(**kwargs)


#: Shared smoke-size points (see the module docstring: the smoke suite
#: is a subset of the default suite so the committed default baseline
#: can gate CI smoke artifacts).  Day-length worlds keep the lane under
#: a minute; two repetitions of the first point let the runner (and the
#: gate) verify trace-repetition determinism inside one artifact.
_SMOKE_RUNS: List[Dict[str, Any]] = [
    {
        "name": "smoke_default",
        "repetitions": 2,
        "config": {"duration_days": 1, "total_posts": 40},
    },
    {
        "name": "smoke_legacy_crypto",
        "repetitions": 1,
        "config": {"duration_days": 1, "total_posts": 40, "session_crypto": False},
    },
    {
        "name": "smoke_sparse_n16",
        "repetitions": 1,
        "config": {
            "num_users": 16,
            "duration_days": 1,
            "total_posts": 40,
            "social_graph": "degree_bounded",
            "provisioning": "pooled",
        },
    },
    # Identical scenario to smoke_default but on the sharded engine:
    # its trace_sha256 must equal smoke_default's in every artifact
    # (benchmarks/test_bench_shard_scale.py asserts this), which puts the
    # batched/sharded equivalence guarantee under the CI bench gate.
    {
        "name": "smoke_sharded",
        "repetitions": 1,
        "config": {"duration_days": 1, "total_posts": 40, "medium_shards": 2},
    },
]

#: Secured 500-user world for the sharded-engine equivalence points:
#: full crypto stack on (the default require_encryption), sparse social
#: graph so build and post-run analysis stay proportional to N.
_SECURED_N500: Dict[str, Any] = {
    "num_users": 500,
    "duration_days": 1,
    "total_posts": 200,
    "social_graph": "degree_bounded",
    "provisioning": "pooled",
    "social_graph_stats": False,
}

#: Sparse large-N world for the shard throughput points: 10 km × 10 km,
#: degree-bounded follow graph, lazy identities and no encryption
#: requirement so world build stays O(N); 300 s medium ticks keep the
#: per-point cost in sweep work rather than tick count.  Social-graph
#: stats are off — they are post-run analysis and would dominate the
#: point's wall time without touching the quantity under test.
_SPARSE_N10K: Dict[str, Any] = {
    "num_users": 10000,
    "duration_days": 1,
    "total_posts": 100,
    "area": [10000.0, 10000.0],
    "social_graph": "degree_bounded",
    "provisioning": "lazy",
    "require_encryption": False,
    "medium_tick_s": 300.0,
    "social_graph_stats": False,
}


def _with_shards(base: Dict[str, Any], shards: int) -> Dict[str, Any]:
    out = dict(base)
    out["medium_shards"] = shards
    return out

BUILTIN_SUITES: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "suite": "smoke",
        "description": "CI-cheap day-length points; subset of 'default'",
        "runs": _SMOKE_RUNS,
    },
    "default": {
        "suite": "default",
        "description": "the committed baseline: every smoke point plus "
        "the full 7-day field-study reconstruction",
        "runs": _SMOKE_RUNS
        + [
            {"name": "default_study", "repetitions": 1, "config": {}},
        ],
    },
    "shard_scale": {
        "suite": "shard_scale",
        "description": "sharded-engine equivalence (secured N=500, shards "
        "0/1/2/4 — identical trace_sha256 expected) and tick throughput "
        "(sparse N=10k, batched vs 2/4 shards; trend "
        "device_ticks_per_cpu_s)",
        "runs": [
            {"name": "shard_equiv_n500_batched", "repetitions": 1, "config": _SECURED_N500},
            {
                "name": "shard_equiv_n500_shards1",
                "repetitions": 1,
                "config": _with_shards(_SECURED_N500, 1),
            },
            {
                "name": "shard_equiv_n500_shards2",
                "repetitions": 1,
                "config": _with_shards(_SECURED_N500, 2),
            },
            {
                "name": "shard_equiv_n500_shards4",
                "repetitions": 1,
                "config": _with_shards(_SECURED_N500, 4),
            },
            {"name": "shard_n10k_batched", "repetitions": 1, "config": _SPARSE_N10K},
            {
                "name": "shard_n10k_shards2",
                "repetitions": 1,
                "config": _with_shards(_SPARSE_N10K, 2),
            },
            {
                "name": "shard_n10k_shards4",
                "repetitions": 1,
                "config": _with_shards(_SPARSE_N10K, 4),
            },
        ],
    },
}


def builtin_suite_names() -> List[str]:
    return sorted(BUILTIN_SUITES)


def load_suite(name: str, suite_file: Optional[Path] = None) -> BenchSuite:
    """Resolve a suite: from ``suite_file`` JSON when given (the file's
    own 'suite' key must match ``name`` unless name is empty), else the
    built-in registry."""
    if suite_file is not None:
        try:
            data = json.loads(Path(suite_file).read_text(encoding="utf-8"))
        except OSError as exc:
            raise SuiteError(f"cannot read suite file {suite_file}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SuiteError(f"suite file {suite_file} is not valid JSON: {exc}") from exc
        suite = BenchSuite.from_dict(data)
        if name and suite.name != name:
            raise SuiteError(
                f"suite file defines {suite.name!r}, but {name!r} was requested"
            )
        return suite
    if name not in BUILTIN_SUITES:
        raise SuiteError(
            f"unknown suite {name!r} (built-ins: {', '.join(builtin_suite_names())})"
        )
    return BenchSuite.from_dict(BUILTIN_SUITES[name])
