"""The resumable on-disk run journal.

A suite execution appends one JSON line per completed point to
``<journal_dir>/journal.jsonl`` (write → flush → fsync, so a killed
process loses at most the point it was inside).  Rerunning the same
suite loads the journal first and *skips* every point whose
``(name, repetition)`` key is present **and** whose recorded config
matches the suite's current definition — editing a run's config
invalidates its stale journal entries instead of resurrecting results
for a world that no longer exists.

The journal is scratch state (one directory per suite, safe to delete);
the artifact is the durable product assembled from it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

JOURNAL_NAME = "journal.jsonl"


class Journal:
    """Append-only completion log for one suite's points."""

    def __init__(self, directory: Path, suite: str) -> None:
        self.directory = Path(directory)
        self.suite = suite
        self.path = self.directory / JOURNAL_NAME
        self._entries: Dict[Tuple[str, int], Dict[str, Any]] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A torn final line from a killed writer: ignore it; the
                # point reruns.
                continue
            if not isinstance(entry, dict) or entry.get("suite") != self.suite:
                continue
            name, rep = entry.get("name"), entry.get("repetition")
            if isinstance(name, str) and isinstance(rep, int):
                self._entries[(name, rep)] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def completed(self, name: str, repetition: int, config: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """The recorded entry for this point, or None if it must run.

        A key match with a *different* config is treated as not
        completed (the suite definition changed under the journal).
        """
        entry = self._entries.get((name, repetition))
        if entry is None or entry.get("config") != config:
            return None
        return entry

    def record(
        self,
        name: str,
        repetition: int,
        config: Dict[str, Any],
        metrics: Dict[str, float],
        trace_sha256: Optional[str],
    ) -> Dict[str, Any]:
        """Durably append one completed point and return its entry."""
        entry = {
            "suite": self.suite,
            "name": name,
            "repetition": repetition,
            "config": dict(config),
            "metrics": dict(metrics),
            "trace_sha256": trace_sha256,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._entries[(name, repetition)] = entry
        return entry

    def entries(self) -> Iterator[Dict[str, Any]]:
        """All recorded entries, in key order."""
        for key in sorted(self._entries):
            yield self._entries[key]

    def clear(self) -> None:
        """Forget everything (``bench run --fresh``)."""
        self._entries.clear()
        if self.path.exists():
            self.path.unlink()


def stale_keys(journal: Journal, expected: List[Tuple[str, int]]) -> List[Tuple[str, int]]:
    """Journal keys the current suite definition no longer names."""
    wanted = set(expected)
    return sorted(key for key in journal._entries if key not in wanted)
