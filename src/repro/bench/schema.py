"""The ``BENCH_*.json`` artifact schema.

One artifact captures one suite execution on one host at one git
revision.  The layout is versioned (:data:`SCHEMA_VERSION`) so future
PRs can evolve it without silently invalidating committed baselines —
readers reject artifacts whose version they do not understand.

Top-level layout (version ``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "suite": "smoke",
      "created_utc": "2026-08-08T12:00:00Z",     # informational only
      "git_rev": "08a6fed..." | null,
      "host": {
        "fingerprint": "9f2c4e1a0b3d5f67",       # stable hash of platform
        "platform": "Linux-...-x86_64",
        "python": "3.11.7",
        "cpu_count": 8,
        "sampler": "proc"                        # memory backend used
      },
      "runs": [
        {
          "name": "smoke_default",
          "repetition": 0,
          "config": {"duration_days": 1, ...},   # ScenarioConfig overrides
          "metrics": {"wall_s": 7.1, "cpu_s": 7.0, "max_rss_kb": 48000, ...},
          "trace_sha256": "ab34..." | null       # null for recorder entries
        }, ...
      ]
    }

Determinism contract: for a fixed suite and seed, everything except
``created_utc``, ``git_rev``, ``host`` and the timing/memory metrics is
identical across runs — in particular every ``trace_sha256``.  The
regression gate leans on exactly that split: timings are compared with
a tolerance, trace digests with equality.
"""

from __future__ import annotations

import json
import hashlib
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Bump on any backwards-incompatible layout change, and teach
#: :func:`validate_artifact` about the migration.
SCHEMA_VERSION = "repro-bench/1"

#: Metrics every runner-produced run carries (recorder entries may carry
#: an arbitrary subset — a ratio measurement has no RSS).
CORE_METRICS = ("wall_s", "cpu_s")


class BenchSchemaError(ValueError):
    """An artifact violates the schema (wrong version, missing keys...)."""


def host_fingerprint() -> str:
    """A short stable identifier for "same machine class".

    Hashes platform/python/CPU-count — deliberately *not* hostname or
    MAC, so two identical CI runners compare as the same host class.
    """
    material = "|".join(
        (platform.platform(), platform.machine(), platform.python_version(),
         str(os.cpu_count() or 0))
    )
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def host_info(sampler: str = "unknown") -> Dict[str, Any]:
    """The ``host`` block of a new artifact."""
    return {
        "fingerprint": host_fingerprint(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 0,
        "sampler": sampler,
    }


def git_revision(repo_root: Optional[Path] = None) -> Optional[str]:
    """The current git HEAD, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def utc_stamp() -> str:
    """Informational creation stamp (never part of any comparison)."""
    import datetime

    return (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
        .replace("+00:00", "Z")
    )


def new_artifact(
    suite: str,
    runs: Optional[List[Dict[str, Any]]] = None,
    sampler: str = "unknown",
    repo_root: Optional[Path] = None,
) -> Dict[str, Any]:
    """A fresh artifact dict with the environment blocks filled in."""
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "created_utc": utc_stamp(),
        "git_rev": git_revision(repo_root),
        "host": host_info(sampler),
        "runs": list(runs or []),
    }


def make_run_entry(
    name: str,
    repetition: int,
    config: Dict[str, Any],
    metrics: Dict[str, float],
    trace_sha256: Optional[str],
) -> Dict[str, Any]:
    """One ``runs[]`` element (validated shape in one place)."""
    return {
        "name": name,
        "repetition": int(repetition),
        "config": dict(config),
        "metrics": dict(metrics),
        "trace_sha256": trace_sha256,
    }


def validate_artifact(data: Any) -> Dict[str, Any]:
    """Check ``data`` against the schema; return it, or raise
    :class:`BenchSchemaError` naming the first violation."""
    if not isinstance(data, dict):
        raise BenchSchemaError(f"artifact must be a JSON object, got {type(data).__name__}")
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise BenchSchemaError(
            f"unsupported schema {schema!r} (this reader understands {SCHEMA_VERSION!r})"
        )
    for key, kind in (("suite", str), ("host", dict), ("runs", list)):
        if key not in data:
            raise BenchSchemaError(f"artifact missing required key {key!r}")
        if not isinstance(data[key], kind):
            raise BenchSchemaError(
                f"artifact key {key!r} must be {kind.__name__}, "
                f"got {type(data[key]).__name__}"
            )
    if "git_rev" in data and not isinstance(data["git_rev"], (str, type(None))):
        raise BenchSchemaError("artifact key 'git_rev' must be a string or null")
    host = data["host"]
    for key in ("fingerprint", "platform", "python"):
        if not isinstance(host.get(key), str):
            raise BenchSchemaError(f"host block missing string key {key!r}")
    seen = set()
    for index, run in enumerate(data["runs"]):
        where = f"runs[{index}]"
        if not isinstance(run, dict):
            raise BenchSchemaError(f"{where} must be an object")
        if not isinstance(run.get("name"), str) or not run["name"]:
            raise BenchSchemaError(f"{where} missing non-empty string 'name'")
        if not isinstance(run.get("repetition"), int) or run["repetition"] < 0:
            raise BenchSchemaError(f"{where} missing non-negative int 'repetition'")
        if not isinstance(run.get("config"), dict):
            raise BenchSchemaError(f"{where} missing object 'config'")
        metrics = run.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise BenchSchemaError(f"{where} missing non-empty object 'metrics'")
        for metric, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise BenchSchemaError(
                    f"{where} metric {metric!r} must be a number, "
                    f"got {type(value).__name__}"
                )
        sha = run.get("trace_sha256")
        if sha is not None and (not isinstance(sha, str) or len(sha) != 64):
            raise BenchSchemaError(
                f"{where} 'trace_sha256' must be a 64-hex-char string or null"
            )
        key = (run["name"], run["repetition"])
        if key in seen:
            raise BenchSchemaError(f"{where} duplicates run key {key!r}")
        seen.add(key)
    return data


def dump_artifact(data: Dict[str, Any], path: Path) -> None:
    """Validate and write an artifact (sorted keys, trailing newline —
    byte-stable for identical content, so committed baselines diff
    cleanly)."""
    validate_artifact(data)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def load_artifact(path: Path) -> Dict[str, Any]:
    """Read + validate an artifact file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise BenchSchemaError(f"cannot read artifact {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"artifact {path} is not valid JSON: {exc}") from exc
    return validate_artifact(data)


def runs_by_key(data: Dict[str, Any]) -> Dict[tuple, Dict[str, Any]]:
    """Index an artifact's runs by ``(name, repetition)``."""
    return {(run["name"], run["repetition"]): run for run in data["runs"]}
