"""Per-run resource sampling.

One context manager measures a run's wall time, CPU time and memory.
CPU and wall clocks come from :mod:`time` (always available); the
memory side degrades gracefully across three backends so the
dependency-free lane still works:

* ``psutil``   — ``Process().memory_info().rss`` (preferred when the
  package is importable),
* ``proc``     — ``/proc/self/status`` ``VmRSS``/``VmHWM`` (Linux),
* ``resource`` — ``getrusage(RUSAGE_SELF).ru_maxrss`` (POSIX; the
  high-water mark only, so the current-RSS reading is absent),
* ``none``     — memory metrics omitted entirely.

The backend is auto-detected once per sampler but injectable
(``ResourceSampler(backend="resource")``) so tests can exercise every
fallback on any host.  Note the high-water-mark caveat: ``max_rss_kb``
is a *process* peak, monotone over the process lifetime — comparable
across fresh CLI invocations (how the runner is used), not across runs
inside one long-lived process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

BACKENDS = ("psutil", "proc", "resource", "none")


@dataclass(frozen=True)
class SampleResult:
    """One run's resource readings."""

    wall_s: float
    cpu_s: float
    backend: str
    rss_kb: Optional[int] = None
    max_rss_kb: Optional[int] = None

    def metrics(self) -> Dict[str, float]:
        """The artifact ``metrics`` fragment (absent readings omitted)."""
        out: Dict[str, float] = {
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
        }
        if self.rss_kb is not None:
            out["rss_kb"] = float(self.rss_kb)
        if self.max_rss_kb is not None:
            out["max_rss_kb"] = float(self.max_rss_kb)
        return out


def _psutil_available() -> bool:
    try:
        import psutil  # noqa: F401
    except ImportError:
        return False
    return True


def _proc_status_kb() -> Optional[Dict[str, int]]:
    """VmRSS/VmHWM from /proc/self/status, or None off-Linux."""
    try:
        text = open("/proc/self/status", "r", encoding="ascii").read()
    except OSError:
        return None
    out: Dict[str, int] = {}
    for line in text.splitlines():
        for key in ("VmRSS", "VmHWM"):
            if line.startswith(key + ":"):
                parts = line.split()
                if len(parts) >= 2 and parts[1].isdigit():
                    out[key] = int(parts[1])
    return out or None


def detect_backend() -> str:
    """The best memory backend this interpreter/host supports."""
    if _psutil_available():
        return "psutil"
    if _proc_status_kb() is not None:
        return "proc"
    try:
        import resource  # noqa: F401
    except ImportError:
        return "none"
    return "resource"


class ResourceSampler:
    """``with ResourceSampler() as sampler: ...; sampler.result``."""

    def __init__(self, backend: Optional[str] = None) -> None:
        if backend is not None and backend not in BACKENDS:
            raise ValueError(f"unknown sampler backend {backend!r} (one of {BACKENDS})")
        self.backend = backend or detect_backend()
        self.result: Optional[SampleResult] = None
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "ResourceSampler":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall_s = time.perf_counter() - self._wall0
        cpu_s = time.process_time() - self._cpu0
        rss_kb, max_rss_kb = self._memory_kb()
        self.result = SampleResult(
            wall_s=wall_s,
            cpu_s=cpu_s,
            backend=self.backend,
            rss_kb=rss_kb,
            max_rss_kb=max_rss_kb,
        )

    def _memory_kb(self):
        if self.backend == "psutil":
            try:
                import psutil

                info = psutil.Process().memory_info()
                rss_kb = int(info.rss // 1024)
                # ru_maxrss still gives the peak; psutil adds current RSS.
                import resource

                max_rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
                return rss_kb, max_rss
            except (ImportError, OSError):
                return None, None
        if self.backend == "proc":
            status = _proc_status_kb()
            if status is None:
                return None, None
            return status.get("VmRSS"), status.get("VmHWM")
        if self.backend == "resource":
            try:
                import resource

                # Linux reports kilobytes; macOS reports bytes.
                max_rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
                import sys

                if sys.platform == "darwin":
                    max_rss //= 1024
                return None, max_rss
            except (ImportError, OSError):
                return None, None
        return None, None
