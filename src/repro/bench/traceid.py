"""Canonical trace identity.

Every equivalence assertion in the repo compares traces rendered as
``time|category|kind|sorted(data)`` lines (``tests/worldutil.trace_lines``
and the per-benchmark copies).  The bench artifacts pin the same
rendering as *the* canonical byte representation, hashed with sha256,
so an artifact's ``trace_sha256`` is directly comparable with the
runtime determinism guard in ``tests/test_invariants.py``.
"""

from __future__ import annotations

import hashlib
from typing import List


def trace_lines(sim) -> List[str]:
    """Render a simulator's trace stream as canonical lines."""
    return [
        f"{event.time!r}|{event.category}|{event.kind}|{sorted(event.data.items())!r}"
        for event in sim.trace
    ]


def trace_sha256(sim) -> str:
    """sha256 hexdigest of the newline-joined canonical trace."""
    payload = "\n".join(trace_lines(sim)).encode()
    return hashlib.sha256(payload).hexdigest()
