"""Recording measurements from the pytest benchmarks.

The ``benchmarks/test_bench_*.py`` contracts measure speedup ratios and
throughputs that used to live only in printed tables and assert
messages.  A :class:`BenchRecorder` collects them as artifact run
entries — one entry per named measurement, metrics carrying whatever
the bench measured — so a benchmark session can emit the same
``BENCH_*.json`` format the suite runner produces and the numbers land
in the trajectory report next to the orchestrated runs.

The ``bench_recorder`` session fixture in ``benchmarks/conftest.py``
hands one recorder to every bench and writes the artifact at session
end when ``$REPRO_BENCH_OUT`` names a destination path (unset: the
measurements are collected but nothing is written, so plain local
pytest runs leave no stray files).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional

from repro.bench import schema


class BenchRecorder:
    """Accumulates measurement entries; writes one artifact."""

    def __init__(self, suite: str = "pytest") -> None:
        self.suite = suite
        self._entries: Dict[tuple, Dict[str, Any]] = {}

    def record(
        self,
        name: str,
        metrics: Dict[str, float],
        context: Optional[Dict[str, Any]] = None,
        trace_sha256: Optional[str] = None,
        repetition: int = 0,
    ) -> None:
        """Add one measurement (re-recording a key overwrites it — the
        benches' remeasure-on-noise paths report their final number)."""
        clean = {
            key: float(value)
            for key, value in metrics.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        if not clean:
            raise ValueError(f"measurement {name!r} carries no numeric metrics")
        self._entries[(name, repetition)] = schema.make_run_entry(
            name, repetition, context or {}, clean, trace_sha256
        )

    def __len__(self) -> int:
        return len(self._entries)

    def artifact(self) -> Dict[str, Any]:
        """The artifact dict for everything recorded so far."""
        from repro.bench.sampler import detect_backend

        runs = [self._entries[key] for key in sorted(self._entries)]
        return schema.new_artifact(self.suite, runs=runs, sampler=detect_backend())

    def write(self, path: Path) -> Optional[Path]:
        """Write the artifact; no-op (returns None) when empty."""
        if not self._entries:
            return None
        destination = Path(path)
        schema.dump_artifact(self.artifact(), destination)
        return destination
