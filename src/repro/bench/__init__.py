"""Benchmark orchestration: declarative suites, trajectory artifacts.

The repo's optimisation history (batched medium, session crypto,
provisioning, bulk bootstrap) reports its speedups in prose tables and
coarse in-test ratio asserts.  This package turns them into a
machine-readable *trajectory*:

* :mod:`repro.bench.suites`   — declarative suite configs (a suite is a
  list of named runs, each a ``ScenarioConfig`` override dict plus a
  repetition count; built-ins ``smoke``/``default``, JSON-loadable).
* :mod:`repro.bench.runner`   — a resumable runner: executes points,
  skips already-completed ones via an on-disk journal, samples per-run
  CPU/RSS/wall time and emits a versioned ``BENCH_<suite>.json``.
* :mod:`repro.bench.sampler`  — resource sampling with a psutil backend
  when available and ``resource``/``/proc`` fallbacks so the
  dependency-free lane still works.
* :mod:`repro.bench.report`   — consolidates every ``BENCH_*.json``
  into a cross-PR markdown/JSON trend table.
* :mod:`repro.bench.check`    — the regression gate: fails on
  configurable slowdowns against a baseline artifact and on
  trace-sha256 divergence (a determinism regression).
* :mod:`repro.bench.recorder` — lets the pytest benchmarks record their
  measured ratios into the same artifact format.

CLI: ``repro bench run|report|check|list``.
"""

from repro.bench.check import CheckReport, compare_artifacts
from repro.bench.journal import Journal
from repro.bench.recorder import BenchRecorder
from repro.bench.report import consolidate, render_markdown
from repro.bench.runner import run_suite
from repro.bench.sampler import ResourceSampler, SampleResult
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchSchemaError,
    dump_artifact,
    load_artifact,
    new_artifact,
    validate_artifact,
)
from repro.bench.suites import BenchRun, BenchSuite, builtin_suite_names, load_suite
from repro.bench.traceid import trace_lines, trace_sha256

__all__ = [
    "BenchRecorder",
    "BenchRun",
    "BenchSchemaError",
    "BenchSuite",
    "CheckReport",
    "Journal",
    "ResourceSampler",
    "SCHEMA_VERSION",
    "SampleResult",
    "builtin_suite_names",
    "compare_artifacts",
    "consolidate",
    "dump_artifact",
    "load_artifact",
    "new_artifact",
    "render_markdown",
    "run_suite",
    "trace_lines",
    "trace_sha256",
    "validate_artifact",
]
