"""The resumable suite runner.

Executes every ``(run, repetition)`` point of a suite that the journal
does not already hold, sampling CPU/RSS/wall time per point and hashing
the run's full trace stream, then assembles the versioned
``BENCH_<suite>.json`` artifact.  Interrupt it anywhere; rerunning
skips the completed points and produces the identical artifact content
(modulo timings and the informational environment blocks).

Each point is measured on a freshly built
:class:`~repro.experiments.gainesville.GainesvilleStudy`, so the wall
and CPU readings cover world construction *and* the simulation run —
the same cost a user pays for ``repro study`` with that config.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.bench import schema
from repro.bench.journal import Journal
from repro.bench.sampler import ResourceSampler
from repro.bench.suites import BenchSuite, scenario_config
from repro.bench.traceid import trace_sha256


class BenchRunError(RuntimeError):
    """A suite execution violated a bench contract (e.g. two
    repetitions of one run diverged — a determinism regression)."""


def _domain_metrics(result) -> Dict[str, float]:
    """Simulation-side quantities worth trending alongside timings."""
    out: Dict[str, float] = {
        "unique_messages": float(result.unique_messages),
        "disseminations": float(result.disseminations),
        "contacts": float(result.contact_count),
    }
    ratio = result.delivery.overall_delivery_ratio()
    if ratio is not None:
        out["delivery_ratio"] = round(float(ratio), 6)
    return out


def _medium_metrics(medium) -> Dict[str, float]:
    """Contact-tick cost, in units that survive a 1-core CI host.

    ``medium_tick_cpu_s`` is parent-process CPU time inside the tick —
    for the sharded engine that is the serialised section (merge +
    link diff) which governs multi-core scaling, so
    ``device_ticks_per_cpu_s`` is the tick-throughput figure the shard
    benchmarks trend.
    """
    out: Dict[str, float] = {
        "medium_engine_shards": float(medium.shards),
        "medium_ticks": float(medium.tick_count),
        "medium_tick_cpu_s": round(medium.tick_cpu_s, 6),
    }
    if medium.tick_cpu_s > 0.0:
        out["device_ticks_per_cpu_s"] = round(
            len(medium.devices) * medium.tick_count / medium.tick_cpu_s, 3
        )
    return out


def run_point(config_overrides: Dict[str, Any], backend: Optional[str] = None):
    """Build + run one scenario under the sampler.

    Returns ``(metrics, trace_sha)`` — the artifact fragments for one
    journal entry.
    """
    from repro.experiments.gainesville import GainesvilleStudy

    config = scenario_config(config_overrides)
    with ResourceSampler(backend=backend) as sampler:
        study = GainesvilleStudy(config)
        result = study.run()
    metrics = sampler.result.metrics()
    metrics.update(_domain_metrics(result))
    metrics.update(_medium_metrics(study.medium))
    return metrics, trace_sha256(study.sim)


def run_suite(
    suite: BenchSuite,
    journal_dir: Path,
    out_path: Optional[Path] = None,
    fresh: bool = False,
    backend: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    repo_root: Optional[Path] = None,
) -> Dict[str, Any]:
    """Run ``suite`` resumably and write ``BENCH_<suite>.json``.

    Returns the artifact dict.  ``out_path`` defaults to
    ``BENCH_<suite>.json`` in the current directory; ``fresh`` discards
    the journal first; ``backend`` pins the sampler memory backend.
    """
    emit = log or (lambda message: None)
    suite.validate_configs()
    journal = Journal(Path(journal_dir), suite.name)
    if fresh:
        journal.clear()
    sampler_backend = ResourceSampler(backend=backend).backend
    total = sum(run.repetitions for run in suite.runs)
    done = 0
    shas_by_run: Dict[str, str] = {}
    entries = []
    for run in suite.runs:
        for repetition in range(run.repetitions):
            done += 1
            cached = journal.completed(run.name, repetition, run.config)
            if cached is not None:
                emit(f"[{done}/{total}] {run.name}#{repetition}: journaled, skipping")
                entry = cached
            else:
                emit(f"[{done}/{total}] {run.name}#{repetition}: running...")
                metrics, sha = run_point(run.config, backend=backend)
                entry = journal.record(run.name, repetition, run.config, metrics, sha)
                emit(
                    f"[{done}/{total}] {run.name}#{repetition}: "
                    f"wall={metrics['wall_s']:.2f}s cpu={metrics['cpu_s']:.2f}s "
                    f"trace={sha[:12]}"
                )
            sha = entry["trace_sha256"]
            previous = shas_by_run.setdefault(run.name, sha)
            if previous != sha:
                raise BenchRunError(
                    f"run {run.name!r} produced different traces across "
                    f"repetitions ({previous[:12]} vs {sha[:12]}) — "
                    "determinism regression; journal kept at "
                    f"{journal.path} for inspection"
                )
            entries.append(
                schema.make_run_entry(
                    run.name,
                    repetition,
                    entry["config"],
                    entry["metrics"],
                    entry["trace_sha256"],
                )
            )
    artifact = schema.new_artifact(
        suite.name, runs=entries, sampler=sampler_backend, repo_root=repo_root
    )
    destination = Path(out_path) if out_path else Path(f"BENCH_{suite.name}.json")
    schema.dump_artifact(artifact, destination)
    emit(f"wrote {destination} ({len(entries)} runs)")
    return artifact
