"""Digest helpers and constant-time comparison.

SHA-256 itself comes from the standard library's ``hashlib`` (a vetted C
implementation); everything layered on top of it in this package is ours.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac


def sha256(data: bytes) -> bytes:
    """Return the 32-byte SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as lowercase hex."""
    return hashlib.sha256(data).hexdigest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """Return HMAC-SHA256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without leaking a timing early-exit.

    Used for MAC and fingerprint comparisons in the session handshake.
    """
    return _hmac.compare_digest(a, b)


def fingerprint(data: bytes, length: int = 16) -> str:
    """Short human-auditable fingerprint, hex-encoded ``length`` bytes."""
    if not 1 <= length <= 32:
        raise ValueError(f"fingerprint length must be in [1, 32], got {length}")
    return hashlib.sha256(data).hexdigest()[: 2 * length]
