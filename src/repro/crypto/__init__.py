"""Pure-Python cryptographic substrate for the SOS security layer.

The paper's SOS middleware delegates key generation, certificate
validation, signing/verification and end-to-end encryption to Apple's
closed-source security frameworks (paper §III-D, §IV).  This package
re-implements those roles from scratch so the reproduction has no
dependency outside the standard library:

* :mod:`repro.crypto.numbers` — big-integer number theory (Miller–Rabin
  primality, safe modular inverse, deterministic prime generation),
* :mod:`repro.crypto.rsa` — RSA key generation, PKCS#1 v1.5-style
  signatures and OAEP-style encryption, plus a hybrid envelope scheme,
* :mod:`repro.crypto.chacha` — the ChaCha20 stream cipher (RFC 7539 core)
  used as the symmetric half of hybrid encryption,
* :mod:`repro.crypto.kdf` — HKDF (RFC 5869) for session-key derivation,
* :mod:`repro.crypto.session` — the per-link secure-session layer
  (RSA once per link direction, ChaCha20+HMAC per packet),
* :mod:`repro.crypto.drbg` — a deterministic HMAC-DRBG so experiments are
  reproducible from a seed (real deployments should inject ``os.urandom``),
* :mod:`repro.crypto.hashes` — digest helpers and constant-time compare.

These are *reproduction-grade* implementations: algorithmically faithful
and test-covered, but not hardened against side channels; see SECURITY
notes in each module.
"""

from repro.crypto.drbg import HmacDrbg, SystemRandomSource
from repro.crypto.hashes import constant_time_equal, sha256, sha256_hex
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract
from repro.crypto.chacha import ChaCha20, chacha20_decrypt, chacha20_encrypt
from repro.crypto.rsa import (
    RsaKeyPair,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
    hybrid_decrypt,
    hybrid_encrypt,
)
from repro.crypto.session import SecureChannel, SessionCryptoError

__all__ = [
    "HmacDrbg",
    "SystemRandomSource",
    "constant_time_equal",
    "sha256",
    "sha256_hex",
    "hkdf",
    "hkdf_extract",
    "hkdf_expand",
    "ChaCha20",
    "chacha20_encrypt",
    "chacha20_decrypt",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
    "hybrid_encrypt",
    "hybrid_decrypt",
    "SecureChannel",
    "SessionCryptoError",
]
