"""RSA key generation, signatures, OAEP encryption and hybrid envelopes.

This is the asymmetric workhorse of the SOS security layer (paper §IV):

* each AlleyOop Social user generates an RSA key pair at sign-up,
* the CA signs certificates with its RSA key (:mod:`repro.pki`),
* messages are signed by their originator so forwarders cannot tamper,
* payloads travel in a hybrid envelope — RSA-OAEP transports a fresh
  ChaCha20 key, and HMAC-SHA256 authenticates the ciphertext
  (encrypt-then-MAC).

SECURITY: the default simulation key size (1024 bits) is chosen for
simulation throughput, not for real-world security; pass ``bits=2048`` or
more for anything outside a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.drbg import RandomSource, SystemRandomSource
from repro.crypto.hashes import constant_time_equal, hmac_sha256, sha256
from repro.crypto.kdf import hkdf
from repro.crypto.chacha import ChaCha20
from repro.crypto.numbers import bytes_to_int, generate_prime, int_to_bytes, modinv

# DER prefix of the DigestInfo structure for SHA-256 (RFC 8017 §9.2 note 1).
_SHA256_DIGEST_INFO = bytes.fromhex("3031300d060960864801650304020105000420")

_DEFAULT_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_size(self) -> int:
        return (self.bits + 7) // 8

    def to_bytes(self) -> bytes:
        """Length-prefixed serialisation (used inside certificates)."""
        n_bytes = int_to_bytes(self.n)
        e_bytes = int_to_bytes(self.e)
        return (
            len(n_bytes).to_bytes(4, "big")
            + n_bytes
            + len(e_bytes).to_bytes(4, "big")
            + e_bytes
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RsaPublicKey":
        n_len = int.from_bytes(data[:4], "big")
        n = bytes_to_int(data[4 : 4 + n_len])
        offset = 4 + n_len
        e_len = int.from_bytes(data[offset : offset + 4], "big")
        e = bytes_to_int(data[offset + 4 : offset + 4 + e_len])
        if n <= 0 or e <= 0:
            raise ValueError("malformed public key encoding")
        return cls(n=n, e=e)

    def fingerprint(self) -> str:
        """Hex SHA-256 fingerprint of the encoded key."""
        return sha256(self.to_bytes()).hex()

    # -- raw primitive -----------------------------------------------------
    def _encrypt_int(self, m: int) -> int:
        if not 0 <= m < self.n:
            raise ValueError("message representative out of range")
        return pow(m, self.e, self.n)

    # -- signatures ---------------------------------------------------------
    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a PKCS#1 v1.5-style SHA-256 signature.  Never raises on
        malformed signatures; returns False."""
        if len(signature) != self.byte_size:
            return False
        try:
            s = bytes_to_int(signature)
            em = int_to_bytes(pow(s, self.e, self.n), self.byte_size)
        except (ValueError, OverflowError):
            return False
        expected = _pkcs1_v15_encode(message, self.byte_size)
        return constant_time_equal(em, expected)

    # -- encryption ----------------------------------------------------------
    def encrypt(self, plaintext: bytes, rng: Optional[RandomSource] = None) -> bytes:
        """RSA-OAEP (SHA-256/MGF1) encryption of a short plaintext."""
        # repro: ignore[rng-unseeded] -- deployment default: sim callers always inject a seeded DRBG (provisioning pool / session layer); the OS fallback exists for real-world use of the library.
        rng = rng or SystemRandomSource()
        k = self.byte_size
        max_len = k - 2 * 32 - 2
        if len(plaintext) > max_len:
            raise ValueError(f"plaintext too long for OAEP ({len(plaintext)} > {max_len})")
        em = _oaep_encode(plaintext, k, rng)
        return int_to_bytes(self._encrypt_int(bytes_to_int(em)), k)


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key with CRT acceleration parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def byte_size(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    def _decrypt_int(self, c: int) -> int:
        if not 0 <= c < self.n:
            raise ValueError("ciphertext representative out of range")
        # CRT: two half-size exponentiations instead of one full-size one.
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        qinv = modinv(self.q, self.p)
        m1 = pow(c, dp, self.p)
        m2 = pow(c, dq, self.q)
        h = (qinv * (m1 - m2)) % self.p
        return m2 + self.q * h

    def sign(self, message: bytes) -> bytes:
        """PKCS#1 v1.5-style SHA-256 signature of ``message``."""
        em = _pkcs1_v15_encode(message, self.byte_size)
        return int_to_bytes(self._decrypt_int(bytes_to_int(em)), self.byte_size)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """RSA-OAEP decryption; raises ``ValueError`` on any malformation."""
        k = self.byte_size
        if len(ciphertext) != k:
            raise ValueError(f"ciphertext must be {k} bytes, got {len(ciphertext)}")
        em = int_to_bytes(self._decrypt_int(bytes_to_int(ciphertext)), k)
        return _oaep_decode(em, k)


@dataclass(frozen=True)
class RsaKeyPair:
    """A generated key pair."""

    private: RsaPrivateKey

    @property
    def public(self) -> RsaPublicKey:
        return self.private.public_key()


class KeyGenerationError(ValueError):
    """RSA key generation exhausted its retry budget.

    With a healthy random source the retry paths (``p == q``, a modulus
    one bit short, an exponent sharing a factor with phi) each trigger
    with negligible probability, so hitting the budget means the
    :class:`~repro.crypto.drbg.RandomSource` is broken or stuck — the
    failure the bound exists to surface instead of spinning forever.
    """


#: Prime-pair draws before :func:`generate_keypair` gives up.  Each draw
#: independently succeeds with overwhelming probability, so 64 failures
#: indicate a degenerate random source, not bad luck.
DEFAULT_KEYGEN_ATTEMPTS = 64


def generate_keypair(
    bits: int = 1024,
    rng: Optional[RandomSource] = None,
    exponent: int = _DEFAULT_EXPONENT,
    max_attempts: int = DEFAULT_KEYGEN_ATTEMPTS,
) -> RsaKeyPair:
    """Generate an RSA key pair with an exactly-``bits`` modulus.

    Deterministic for a fixed deterministic ``rng``: every retry redraws
    *both* primes from the same stream, so two calls with equally-seeded
    DRBGs produce identical key pairs even when a retry path fires.
    Raises :class:`KeyGenerationError` after ``max_attempts`` failed
    prime-pair draws rather than looping forever on a stuck source.
    """
    if bits < 512:
        raise ValueError(f"modulus must be at least 512 bits, got {bits}")
    if bits % 2:
        raise ValueError("modulus bit size must be even")
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
    # repro: ignore[rng-unseeded] -- deployment default: sim keygen always passes a pooled/per-entry DRBG; OS entropy is the documented fallback for real deployments only.
    rng = rng or SystemRandomSource()
    half = bits // 2
    for _ in range(max_attempts):
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = modinv(exponent, phi)
        except ValueError:
            continue  # exponent not coprime with phi; rare, redraw primes
        private = RsaPrivateKey(n=n, e=exponent, d=d, p=p, q=q)
        return RsaKeyPair(private=private)
    raise KeyGenerationError(
        f"no usable prime pair after {max_attempts} attempts "
        f"({bits}-bit modulus); the random source looks degenerate"
    )


# ---------------------------------------------------------------------------
# Encoding internals
# ---------------------------------------------------------------------------

def _pkcs1_v15_encode(message: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message)."""
    t = _SHA256_DIGEST_INFO + sha256(message)
    if em_len < len(t) + 11:
        raise ValueError("key too small for PKCS#1 v1.5 SHA-256 signature")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def _mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation with SHA-256."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(sha256(seed + counter.to_bytes(4, "big")))
        counter += 1
    return bytes(out[:length])


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _oaep_encode(message: bytes, k: int, rng: RandomSource) -> bytes:
    h_len = 32
    l_hash = sha256(b"")
    ps = b"\x00" * (k - len(message) - 2 * h_len - 2)
    db = l_hash + ps + b"\x01" + message
    seed = rng.read(h_len)
    masked_db = _xor(db, _mgf1(seed, k - h_len - 1))
    masked_seed = _xor(seed, _mgf1(masked_db, h_len))
    return b"\x00" + masked_seed + masked_db


def _oaep_decode(em: bytes, k: int) -> bytes:
    h_len = 32
    if len(em) != k or em[0] != 0:
        raise ValueError("OAEP decryption error")
    masked_seed = em[1 : 1 + h_len]
    masked_db = em[1 + h_len :]
    seed = _xor(masked_seed, _mgf1(masked_db, h_len))
    db = _xor(masked_db, _mgf1(seed, k - h_len - 1))
    if not constant_time_equal(db[:h_len], sha256(b"")):
        raise ValueError("OAEP decryption error")
    try:
        sep = db.index(b"\x01", h_len)
    except ValueError:
        raise ValueError("OAEP decryption error") from None
    if any(db[h_len:sep]):
        raise ValueError("OAEP decryption error")
    return db[sep + 1 :]


# ---------------------------------------------------------------------------
# Hybrid envelope (RSA-OAEP key transport + ChaCha20 + HMAC-SHA256)
# ---------------------------------------------------------------------------

_ENVELOPE_MAGIC = b"SOSE"  # SOS Envelope, version 1
_NONCE_SIZE = 12
_MAC_SIZE = 32


def hybrid_envelope_len(plaintext_len: int, recipient_key_bytes: int) -> int:
    """Wire length of a :func:`hybrid_encrypt` envelope for a plaintext of
    ``plaintext_len`` bytes (the session layer pads its frames against
    this so both crypto modes drive the radio model identically)."""
    return (
        len(_ENVELOPE_MAGIC) + 2 + recipient_key_bytes + _NONCE_SIZE
        + plaintext_len + _MAC_SIZE
    )


def hybrid_encrypt(
    recipient: RsaPublicKey,
    plaintext: bytes,
    rng: Optional[RandomSource] = None,
    aad: bytes = b"",
) -> bytes:
    """Encrypt ``plaintext`` for ``recipient``.

    Wire format::

        "SOSE" | u16 keylen | RSA-OAEP(master) | nonce(12) | ct | mac(32)

    ``aad`` binds additional authenticated data (e.g. sender identity) into
    the MAC without encrypting it.
    """
    # repro: ignore[rng-unseeded] -- deployment default: the packet path wires the sender keystore DRBG in; OS entropy is the fallback for real deployments only.
    rng = rng or SystemRandomSource()
    master = rng.read(32)
    enc_key = hkdf(master, info=b"sos-enc", length=32)
    mac_key = hkdf(master, info=b"sos-mac", length=32)
    nonce = rng.read(_NONCE_SIZE)
    ciphertext = ChaCha20(enc_key, nonce).crypt(plaintext)
    wrapped = recipient.encrypt(master, rng=rng)
    mac = hmac_sha256(mac_key, aad + nonce + ciphertext)
    return (
        _ENVELOPE_MAGIC
        + len(wrapped).to_bytes(2, "big")
        + wrapped
        + nonce
        + ciphertext
        + mac
    )


def hybrid_decrypt(private: RsaPrivateKey, envelope: bytes, aad: bytes = b"") -> bytes:
    """Open a hybrid envelope; raises ``ValueError`` on any tampering."""
    if len(envelope) < len(_ENVELOPE_MAGIC) + 2 + _NONCE_SIZE + _MAC_SIZE:
        raise ValueError("envelope too short")
    if envelope[:4] != _ENVELOPE_MAGIC:
        raise ValueError("bad envelope magic")
    key_len = int.from_bytes(envelope[4:6], "big")
    offset = 6
    wrapped = envelope[offset : offset + key_len]
    offset += key_len
    nonce = envelope[offset : offset + _NONCE_SIZE]
    offset += _NONCE_SIZE
    body = envelope[offset:]
    if len(body) < _MAC_SIZE:
        raise ValueError("envelope truncated")
    ciphertext, mac = body[:-_MAC_SIZE], body[-_MAC_SIZE:]
    master = private.decrypt(wrapped)
    enc_key = hkdf(master, info=b"sos-enc", length=32)
    mac_key = hkdf(master, info=b"sos-mac", length=32)
    expected = hmac_sha256(mac_key, aad + nonce + ciphertext)
    if not constant_time_equal(mac, expected):
        raise ValueError("envelope authentication failed")
    return ChaCha20(enc_key, nonce).crypt(ciphertext)
