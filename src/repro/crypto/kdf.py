"""HKDF (RFC 5869) key derivation.

The MPC session layer derives per-session encryption and MAC keys from the
RSA-transported master secret with distinct ``info`` labels, so a session
never reuses one key for two purposes.
"""

from __future__ import annotations

from repro.crypto.hashes import hmac_sha256

_HASH_LEN = 32


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """Extract step: concentrate input keying material into a PRK."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand step: stretch the PRK to ``length`` bytes bound to ``info``."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if length > 255 * _HASH_LEN:
        raise ValueError(f"cannot expand to more than {255 * _HASH_LEN} bytes")
    blocks = bytearray()
    previous = b""
    counter = 1
    while len(blocks) < length:
        previous = hmac_sha256(prk, previous + info + bytes([counter]))
        blocks.extend(previous)
        counter += 1
    return bytes(blocks[:length])


def hkdf(ikm: bytes, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """Full extract-then-expand HKDF."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
