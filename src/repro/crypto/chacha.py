"""ChaCha20 stream cipher (RFC 7539 core).

Used as the symmetric half of the SOS hybrid envelope and as the bulk
cipher of the per-link secure session layer: RSA transports a 256-bit
master secret (once per envelope or once per session key), ChaCha20
encrypts the payload, and HMAC-SHA256 authenticates the ciphertext
(encrypt-then-MAC).

Scaling the symmetric layer
---------------------------

The seed implementation generated the keystream one 64-byte block at a
time through a list-based scalar block function and XOR'd per byte with a
generator expression — fine for the hybrid envelope's occasional short
payload, terrible once the session layer makes ChaCha20 the per-packet
hot path.  This version:

* generates the keystream in **one multi-block chunk** per request
  (scalar path: one ``bytes.join``; no per-block bytearray churn),
* **vectorises the block function with numpy** when a request spans
  enough blocks to amortise array setup — the 20 rounds run across all
  block counters at once, mirroring the ``SpatialHashIndex`` pair-sweep
  fast path (pure-Python fallback when numpy is unavailable),
* XORs **whole buffers as big integers** (``int.from_bytes``), which is
  C-speed for any payload size.

All three paths produce byte-identical output (the RFC 7539 vectors and
an equivalence test in ``tests/test_crypto_chacha.py`` hold them to it).
"""

from __future__ import annotations

import struct

try:  # pragma: no cover - exercised indirectly by the equivalence tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"
_MASK32 = 0xFFFFFFFF

#: Below this many blocks the scalar path beats numpy's fixed setup cost.
_NUMPY_BLOCK_MIN = 8


def _rotl32(v: int, n: int) -> int:
    return ((v << n) & _MASK32) | (v >> (32 - n))


def _quarter_round(state: list, a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


class ChaCha20:
    """The ChaCha20 block function and keystream generator.

    Parameters
    ----------
    key:
        32-byte secret key.
    nonce:
        12-byte nonce (RFC 7539 layout).  Never reuse a (key, nonce) pair.
    counter:
        Initial 32-bit block counter (0 by default).
    """

    KEY_SIZE = 32
    NONCE_SIZE = 12
    BLOCK_SIZE = 64

    def __init__(self, key: bytes, nonce: bytes, counter: int = 0) -> None:
        if len(key) != self.KEY_SIZE:
            raise ValueError(f"key must be {self.KEY_SIZE} bytes, got {len(key)}")
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"nonce must be {self.NONCE_SIZE} bytes, got {len(nonce)}")
        if not 0 <= counter <= _MASK32:
            raise ValueError(f"counter out of range: {counter}")
        self._key_words = struct.unpack("<8L", key)
        self._nonce_words = struct.unpack("<3L", nonce)
        self._counter = counter
        self._leftover = b""  # unused tail of the last generated chunk
        #: Generate at least this many blocks per refill.  Long-lived
        #: streams (the session layer) set this to amortise the block
        #: function's fixed cost over many packets; 0 = generate exactly
        #: what each call needs.  Read-ahead only buffers keystream — the
        #: produced stream is identical either way.
        self.prefetch_blocks = 0

    def _block(self, counter: int) -> bytes:
        state = list(_CONSTANTS) + list(self._key_words) + [counter] + list(self._nonce_words)
        working = state[:]
        for _ in range(10):  # 20 rounds = 10 double-rounds
            _quarter_round(working, 0, 4, 8, 12)
            _quarter_round(working, 1, 5, 9, 13)
            _quarter_round(working, 2, 6, 10, 14)
            _quarter_round(working, 3, 7, 11, 15)
            _quarter_round(working, 0, 5, 10, 15)
            _quarter_round(working, 1, 6, 11, 12)
            _quarter_round(working, 2, 7, 8, 13)
            _quarter_round(working, 3, 4, 9, 14)
        out = [(w + s) & _MASK32 for w, s in zip(working, state)]
        return struct.pack("<16L", *out)

    def _chunk(self, counter: int, nblocks: int) -> bytes:
        """``nblocks`` consecutive keystream blocks starting at ``counter``
        (counters wrap at 2**32, matching the scalar stream)."""
        if _np is not None and nblocks >= _NUMPY_BLOCK_MIN:
            return self._chunk_numpy(counter, nblocks)
        return b"".join(self._block((counter + i) & _MASK32) for i in range(nblocks))

    def _chunk_numpy(self, counter: int, nblocks: int) -> bytes:
        np = _np
        state = np.empty((16, nblocks), dtype=np.uint32)
        for row, word in enumerate(_CONSTANTS):
            state[row] = word
        for row, word in enumerate(self._key_words):
            state[4 + row] = word
        state[12] = (
            (counter + np.arange(nblocks, dtype=np.uint64)) & _MASK32
        ).astype(np.uint32)
        for row, word in enumerate(self._nonce_words):
            state[13 + row] = word
        # Four-lane layout: the four quarter-rounds of each phase are
        # independent, so one vector op covers all of them — a[i], b[i],
        # c[i], d[i] are the i-th quarter-round's operands.
        working = state.copy().reshape(4, 4, nblocks)
        a, b, c, d = working[0], working[1], working[2], working[3]

        def quarter_lanes(a, b, c, d) -> None:
            a += b
            x = d ^ a
            d[...] = (x << 16) | (x >> 16)
            c += d
            x = b ^ c
            b[...] = (x << 12) | (x >> 20)
            a += b
            x = d ^ a
            d[...] = (x << 8) | (x >> 24)
            c += d
            x = b ^ c
            b[...] = (x << 7) | (x >> 25)

        for _ in range(10):
            quarter_lanes(a, b, c, d)  # column round
            # Diagonalise: rotate lanes so the diagonal quarter-rounds
            # line up element-wise, run them, rotate back.
            b[...] = np.roll(b, -1, axis=0)
            c[...] = np.roll(c, -2, axis=0)
            d[...] = np.roll(d, -3, axis=0)
            quarter_lanes(a, b, c, d)
            b[...] = np.roll(b, 1, axis=0)
            c[...] = np.roll(c, 2, axis=0)
            d[...] = np.roll(d, 3, axis=0)
        out = working.reshape(16, nblocks) + state
        # Serialised per block: 16 words, little-endian each (the transpose
        # walks blocks first, '<u4' pins byte order on any host).
        return out.T.astype("<u4").tobytes()

    def keystream(self, length: int) -> bytes:
        """Produce ``length`` keystream bytes, advancing the stream.

        Partial blocks are buffered so successive calls form one
        continuous keystream (crypt(a) + crypt(b) == crypt(a + b)).
        """
        if length <= len(self._leftover):
            out = self._leftover[:length]
            self._leftover = self._leftover[length:]
            return out
        head = self._leftover
        need = length - len(head)
        nblocks = max(-(-need // self.BLOCK_SIZE), self.prefetch_blocks)  # ceil
        chunk = self._chunk(self._counter, nblocks)
        self._counter = (self._counter + nblocks) & _MASK32
        self._leftover = chunk[need:]
        return head + chunk[:need]

    def crypt(self, data: bytes) -> bytes:
        """XOR ``data`` with keystream (encryption == decryption)."""
        if not data:
            return b""
        stream = self.keystream(len(data))
        return (
            int.from_bytes(data, "little") ^ int.from_bytes(stream, "little")
        ).to_bytes(len(data), "little")


def chacha20_encrypt(key: bytes, nonce: bytes, plaintext: bytes, counter: int = 0) -> bytes:
    """One-shot encryption helper."""
    return ChaCha20(key, nonce, counter).crypt(plaintext)


def chacha20_decrypt(key: bytes, nonce: bytes, ciphertext: bytes, counter: int = 0) -> bytes:
    """One-shot decryption helper (same operation as encryption)."""
    return ChaCha20(key, nonce, counter).crypt(ciphertext)
