"""ChaCha20 stream cipher (RFC 7539 core).

Used as the symmetric half of the SOS hybrid envelope: RSA transports a
random 256-bit key, ChaCha20 encrypts the payload, and HMAC-SHA256 (in
:mod:`repro.crypto.rsa`) authenticates the ciphertext (encrypt-then-MAC).
"""

from __future__ import annotations

import struct

_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"
_MASK32 = 0xFFFFFFFF


def _rotl32(v: int, n: int) -> int:
    return ((v << n) & _MASK32) | (v >> (32 - n))


def _quarter_round(state: list, a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


class ChaCha20:
    """The ChaCha20 block function and keystream generator.

    Parameters
    ----------
    key:
        32-byte secret key.
    nonce:
        12-byte nonce (RFC 7539 layout).  Never reuse a (key, nonce) pair.
    counter:
        Initial 32-bit block counter (0 by default).
    """

    KEY_SIZE = 32
    NONCE_SIZE = 12
    BLOCK_SIZE = 64

    def __init__(self, key: bytes, nonce: bytes, counter: int = 0) -> None:
        if len(key) != self.KEY_SIZE:
            raise ValueError(f"key must be {self.KEY_SIZE} bytes, got {len(key)}")
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"nonce must be {self.NONCE_SIZE} bytes, got {len(nonce)}")
        if not 0 <= counter <= _MASK32:
            raise ValueError(f"counter out of range: {counter}")
        self._key_words = struct.unpack("<8L", key)
        self._nonce_words = struct.unpack("<3L", nonce)
        self._counter = counter
        self._leftover = b""  # unused tail of the last generated block

    def _block(self, counter: int) -> bytes:
        state = list(_CONSTANTS) + list(self._key_words) + [counter] + list(self._nonce_words)
        working = state[:]
        for _ in range(10):  # 20 rounds = 10 double-rounds
            _quarter_round(working, 0, 4, 8, 12)
            _quarter_round(working, 1, 5, 9, 13)
            _quarter_round(working, 2, 6, 10, 14)
            _quarter_round(working, 3, 7, 11, 15)
            _quarter_round(working, 0, 5, 10, 15)
            _quarter_round(working, 1, 6, 11, 12)
            _quarter_round(working, 2, 7, 8, 13)
            _quarter_round(working, 3, 4, 9, 14)
        out = [(w + s) & _MASK32 for w, s in zip(working, state)]
        return struct.pack("<16L", *out)

    def keystream(self, length: int) -> bytes:
        """Produce ``length`` keystream bytes, advancing the stream.

        Partial blocks are buffered so successive calls form one
        continuous keystream (crypt(a) + crypt(b) == crypt(a + b)).
        """
        out = bytearray(self._leftover[:length])
        self._leftover = self._leftover[length:]
        while len(out) < length:
            block = self._block(self._counter)
            self._counter = (self._counter + 1) & _MASK32
            need = length - len(out)
            out.extend(block[:need])
            self._leftover = block[need:]
        return bytes(out)

    def crypt(self, data: bytes) -> bytes:
        """XOR ``data`` with keystream (encryption == decryption)."""
        stream = self.keystream(len(data))
        return bytes(a ^ b for a, b in zip(data, stream))


def chacha20_encrypt(key: bytes, nonce: bytes, plaintext: bytes, counter: int = 0) -> bytes:
    """One-shot encryption helper."""
    return ChaCha20(key, nonce, counter).crypt(plaintext)


def chacha20_decrypt(key: bytes, nonce: bytes, ciphertext: bytes, counter: int = 0) -> bytes:
    """One-shot decryption helper (same operation as encryption)."""
    return ChaCha20(key, nonce, counter).crypt(ciphertext)
