"""Big-integer number theory for RSA key generation.

Implements deterministic Miller–Rabin (with the proven small-base sets for
64-bit integers and random bases above), extended-gcd modular inverse, and
prime generation from a :class:`~repro.crypto.drbg.RandomSource`.
"""

from __future__ import annotations

from typing import List

from repro.crypto.drbg import RandomSource

# Deterministic witness set: correct for all n < 3,317,044,064,679,887,385,961,981.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES: List[int] = []


def _sieve_small_primes(limit: int = 2048) -> List[int]:
    """Primes below ``limit`` for cheap trial division (cached)."""
    if _SMALL_PRIMES:
        return _SMALL_PRIMES
    sieve = bytearray([1]) * limit
    sieve[0:2] = b"\x00\x00"
    for i in range(2, int(limit ** 0.5) + 1):
        if sieve[i]:
            sieve[i * i :: i] = b"\x00" * len(sieve[i * i :: i])
    _SMALL_PRIMES.extend(i for i in range(limit) if sieve[i])
    return _SMALL_PRIMES


def is_probable_prime(n: int, rounds: int = 20, rng: RandomSource = None) -> bool:
    """Miller–Rabin primality test.

    Deterministic (proven witness set) for n < 3.3e24; for larger n uses
    ``rounds`` random witnesses giving error probability <= 4**-rounds.
    """
    if n < 2:
        return False
    for p in _sieve_small_primes():
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness_composite(a: int) -> bool:
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                return False
        return True

    if n < 3_317_044_064_679_887_385_961_981:
        bases = [a for a in _DETERMINISTIC_WITNESSES if a < n - 1]
    else:
        if rng is None:
            raise ValueError("random witnesses required for very large n; pass rng")
        bases = [2 + rng.read_int_below(n - 3) for _ in range(rounds)]
    return not any(witness_composite(a) for a in bases)


def generate_prime(bits: int, rng: RandomSource) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    Candidates are odd with the top bit forced so the product of two such
    primes has exactly ``2 * bits`` bits — required for fixed-size key
    serialisation.
    """
    if bits < 16:
        raise ValueError(f"refusing to generate tiny primes ({bits} bits)")
    while True:
        candidate = rng.read_int(bits) | 1
        # Quick trial division before the expensive Miller-Rabin rounds.
        if any(candidate % p == 0 and candidate != p for p in _sieve_small_primes()):
            continue
        if is_probable_prime(candidate, rng=rng):
            return candidate


def egcd(a: int, b: int) -> tuple:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises if not coprime."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def int_to_bytes(n: int, length: int = None) -> bytes:
    """Big-endian byte encoding; ``length`` pads/validates the width."""
    if n < 0:
        raise ValueError("negative integers are not encodable")
    minimal = (n.bit_length() + 7) // 8 or 1
    if length is None:
        length = minimal
    if minimal > length:
        raise ValueError(f"{n.bit_length()}-bit integer does not fit {length} bytes")
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian byte decoding."""
    return int.from_bytes(data, "big")
