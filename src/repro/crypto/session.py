"""Per-link secure sessions: RSA once per link, symmetric crypto per packet.

The paper's packet pipeline (§III-D) encrypts every packet end-to-end to
the peer's RSA public key and signs it with the sender's RSA private key.
Cryptographically that is sound but computationally it is how no real
secure-messaging stack works: asymmetric operations cost milliseconds,
symmetric ones cost microseconds, so production protocols (TLS, Noise,
Signal) pay RSA/DH **once per session** and protect the packet stream
with derived symmetric keys.  This module brings the reproduction in
line: a :class:`SecureChannel` per secured link performs one RSA key
transport + one RSA signature per *sending direction* (and per rekey),
after which every packet costs two HMACs and a ChaCha20 pass.

Protocol
--------

Each direction of a channel is keyed independently.  The first packet a
side sends (and the first after every rekey) travels in a **key frame**::

    "K" | u16 wrap_len | RSA-OAEP(master) | u16 sig_len | sig
        | u64 seq | u32 ct_len | ct | zero padding | mac(32)

``master`` is a fresh 32-byte secret wrapped to the receiver's public key
— the same key-transport step :func:`repro.crypto.rsa.hybrid_encrypt`
performs per packet, amortised to once per direction.  ``sig`` is the
sender's RSA signature over the wrapped master bound to the direction
label (``"<sender>><receiver>"``), so only the certificate holder can
establish keys in its name.  Both sides derive, per direction::

    enc   = HKDF(master, info="sos-session-enc|"   + label)
    mac   = HKDF(master, info="sos-session-mac|"   + label)
    nonce = HKDF(master, info="sos-session-nonce|" + label)[:12]

Every subsequent packet travels in a **data frame**::

    "S" | u64 seq | u32 ct_len | ct | zero padding | mac(32)

The payload stream is one continuous ChaCha20 keystream (counter-based,
per RFC 7539); ``seq`` counts frames under the current key and is the
anti-replay counter: the MPC transport is reliable-FIFO within a
connection, so a frame whose sequence number differs from the receiver's
frame count is a replay, a reorder, or an injection, and is rejected
(counting frames rather than stream bytes means even an empty-payload
frame cannot be replayed).  The MAC is encrypt-then-MAC over the
direction label, sequence number, ciphertext and padding (everything
after the key header).
Rekeying (time- or volume-triggered, see :class:`SecureChannel`) simply
establishes a fresh master on the next send; replayed key frames are
rejected by fingerprint against a set the caller can persist across
reconnects (the ad hoc manager does), so a recorded handshake cannot be
replayed into a fresh channel after a link drop.  A key frame's new key
is only committed once the frame's own MAC has verified — a tampered key
frame never disturbs the current receive stream.

Peer authenticity per packet comes from the session MAC (only the two
certificate holders know the master).  End-to-end *originator*
signatures on forwarded DATA messages (paper Fig. 3b) are unaffected —
they live inside the packet payload and are still RSA-verified against
the author's certificate at every receiving node.

Padding
-------

Frames are zero-padded to the exact length the legacy per-packet hybrid
envelope would have produced for the same plaintext
(:func:`legacy_frame_len`).  The optimisation targets CPU cost, not the
simulated radio model: padding keeps transfer durations — and therefore
the full delivery/delay trace of any fixed-seed scenario — byte-identical
between the two crypto modes, which is what lets the legacy path serve
as the reference oracle.

Example
-------

Two endpoints, each holding its own private key and the peer's public
key (learned from the certificate exchange), exchanging one packet per
direction (1024-bit simulation keys)::

    >>> from repro.crypto.drbg import HmacDrbg
    >>> from repro.crypto.rsa import generate_keypair
    >>> alice_keys = generate_keypair(1024, rng=HmacDrbg.from_int(41))
    >>> bob_keys = generate_keypair(1024, rng=HmacDrbg.from_int(42))
    >>> alice = SecureChannel("alice", "bob", alice_keys.private,
    ...                       bob_keys.public, rng=HmacDrbg.from_int(7))
    >>> bob = SecureChannel("bob", "alice", bob_keys.private,
    ...                     alice_keys.public, rng=HmacDrbg.from_int(8))
    >>> frame = alice.encrypt(b"over the top", now=0.0)   # K frame: pays RSA
    >>> frame[:1] == KEY_FRAME
    True
    >>> bob.decrypt(frame, now=0.0)
    b'over the top'
    >>> alice.encrypt(b"again", now=1.0)[:1] == DATA_FRAME  # symmetric only
    True
    >>> bob.decrypt(frame, now=1.0)    # replaying the key frame is rejected
    Traceback (most recent call last):
        ...
    repro.crypto.session.SessionCryptoError: replayed session key frame
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.crypto.chacha import ChaCha20
from repro.crypto.drbg import RandomSource
from repro.crypto.hashes import constant_time_equal, hmac_sha256, sha256
from repro.crypto.kdf import hkdf
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, hybrid_envelope_len

KEY_FRAME = b"K"
DATA_FRAME = b"S"

_MAC_SIZE = 32
_MASTER_SIZE = 32

#: Establish a fresh master after this much wall-clock time on a key...
DEFAULT_REKEY_INTERVAL_S = 3600.0
#: ...or after this many packets, whichever comes first.
DEFAULT_REKEY_PACKETS = 4096

#: Keystream read-ahead per refill (128 blocks = 8 KiB): amortises the
#: block function's fixed cost across many packets of one direction.
_PREFETCH_BLOCKS = 128

#: Accepted-key fingerprints remembered for anti-replay (oldest evicted
#: beyond this): bounds the store over arbitrarily long runs while still
#: covering thousands of rekeys/reconnects of replay horizon.
SEEN_KEY_LIMIT = 4096


class SessionCryptoError(ValueError):
    """Tampered, replayed, reordered or otherwise invalid session frame."""


def legacy_frame_len(plaintext_len: int, peer_key_bytes: int, own_key_bytes: int) -> int:
    """Wire length of the legacy per-packet frame for ``plaintext_len``
    payload bytes: ``"E" + SOSE envelope`` wrapping ``len | plaintext |
    signature``.  Session frames are padded to this length so both crypto
    modes drive the simulated radio identically."""
    framed_len = 4 + plaintext_len + own_key_bytes  # len | plaintext | sig
    return 1 + hybrid_envelope_len(framed_len, peer_key_bytes)


def _direction_label(sender: str, receiver: str) -> bytes:
    return sender.encode() + b">" + receiver.encode()


def _signed_key_bytes(label: bytes, wrapped: bytes) -> bytes:
    return b"sos-session-key|" + label + b"|" + wrapped


class _DirectionState:
    """One half of a channel: a key, its cipher stream, and bookkeeping."""

    __slots__ = ("cipher", "mac_key", "position", "established_at", "packets", "header")

    def __init__(self, master: bytes, label: bytes, established_at: float) -> None:
        enc_key = hkdf(master, info=b"sos-session-enc|" + label)
        nonce = hkdf(master, info=b"sos-session-nonce|" + label, length=ChaCha20.NONCE_SIZE)
        self.cipher = ChaCha20(enc_key, nonce)
        self.cipher.prefetch_blocks = _PREFETCH_BLOCKS
        self.mac_key = hkdf(master, info=b"sos-session-mac|" + label)
        self.position = 0  # keystream bytes consumed under this key
        self.established_at = established_at
        self.packets = 0
        self.header: Optional[bytes] = None  # pending K-frame header (send side)


class SecureChannel:
    """The secure-session endpoint for one local/peer user pair.

    One instance lives on each side of a secured link (created after the
    certificate exchange validated the peer, dropped with the link).  The
    two instances never talk out-of-band: all key material travels inside
    the ``K`` frames, so the channel works over the existing one-frame
    transport without extra round trips — and without perturbing the
    transfer schedule the legacy mode produces.
    """

    def __init__(
        self,
        local_user: str,
        peer_user: str,
        private_key: RsaPrivateKey,
        peer_public_key: RsaPublicKey,
        rng: RandomSource,
        rekey_interval_s: float = DEFAULT_REKEY_INTERVAL_S,
        rekey_packets: int = DEFAULT_REKEY_PACKETS,
        seen_key_fingerprints: Optional["OrderedDict[bytes, None]"] = None,
    ) -> None:
        if rekey_interval_s <= 0:
            raise ValueError(f"rekey interval must be positive, got {rekey_interval_s}")
        if rekey_packets < 1:
            raise ValueError(f"rekey packet budget must be >= 1, got {rekey_packets}")
        self.local_user = local_user
        self.peer_user = peer_user
        self._private_key = private_key
        self._peer_public_key = peer_public_key
        self._rng = rng
        self.rekey_interval_s = rekey_interval_s
        self.rekey_packets = rekey_packets
        self._send_label = _direction_label(local_user, peer_user)
        self._recv_label = _direction_label(peer_user, local_user)
        self._send: Optional[_DirectionState] = None
        self._recv: Optional[_DirectionState] = None
        #: Fingerprints of masters already accepted (insertion-ordered,
        #: oldest evicted at SEEN_KEY_LIMIT) — replaying an old key frame
        #: must not rewind the receive stream.  Pass a store that outlives
        #: the channel (the ad hoc manager shares one across all of a
        #: peer's reconnects) so a recorded handshake cannot be replayed
        #: into a *fresh* channel after a link drop either.
        self._seen_wrapped: "OrderedDict[bytes, None]" = (
            seen_key_fingerprints if seen_key_fingerprints is not None else OrderedDict()
        )
        self.stats = {
            "keys_established": 0,
            "keys_accepted": 0,
            "frames_sent": 0,
            "frames_received": 0,
        }

    # -- sending ---------------------------------------------------------------
    def _needs_rekey(self, send: _DirectionState, now: float) -> bool:
        return (
            now - send.established_at >= self.rekey_interval_s
            or send.packets >= self.rekey_packets
        )

    def _establish_send(self, now: float) -> _DirectionState:
        master = self._rng.read(_MASTER_SIZE)
        wrapped = self._peer_public_key.encrypt(master, rng=self._rng)
        signature = self._private_key.sign(_signed_key_bytes(self._send_label, wrapped))
        state = _DirectionState(master, self._send_label, established_at=now)
        state.header = (
            len(wrapped).to_bytes(2, "big")
            + wrapped
            + len(signature).to_bytes(2, "big")
            + signature
        )
        self._send = state
        self.stats["keys_established"] += 1
        return state

    def encrypt(self, plaintext: bytes, now: float) -> bytes:
        """Produce the session frame carrying ``plaintext``.

        The first call (and the first after a rekey trigger) pays the
        per-direction RSA establishment and emits a key frame; every
        other call is purely symmetric.

        Args:
            plaintext: The packet bytes to protect.
            now: Current time (drives the time-based rekey budget and
                stamps the key's establishment time).

        Returns:
            The wire frame — a ``K`` (key) or ``S`` (data) frame padded
            to the legacy envelope length for this plaintext, ready for
            the one-frame MPC transport.
        """
        send = self._send
        if send is None or self._needs_rekey(send, now):
            send = self._establish_send(now)
        seq = send.packets
        ciphertext = send.cipher.crypt(plaintext)
        send.position += len(ciphertext)
        send.packets += 1
        if send.header is not None:
            head = KEY_FRAME + send.header
            send.header = None
        else:
            head = DATA_FRAME
        body = seq.to_bytes(8, "big") + len(ciphertext).to_bytes(4, "big") + ciphertext
        target = legacy_frame_len(
            len(plaintext), self._peer_public_key.byte_size, self._private_key.byte_size
        )
        body += b"\x00" * max(0, target - len(head) - len(body) - _MAC_SIZE)
        mac = hmac_sha256(send.mac_key, self._send_label + body)
        self.stats["frames_sent"] += 1
        return head + body + mac

    # -- receiving -------------------------------------------------------------
    def _open_key_frame_header(
        self, frame: bytes, now: float
    ) -> Tuple[_DirectionState, bytes, int]:
        """Unwrap the peer's fresh receive key.  Returns the candidate
        state, its fingerprint and the offset where the frame body starts
        — nothing is installed until the frame MAC has verified, so a
        tampered key frame cannot disturb the current receive stream."""
        if len(frame) < 3:
            raise SessionCryptoError("truncated key frame")
        wrap_len = int.from_bytes(frame[1:3], "big")
        at = 3 + wrap_len
        if len(frame) < at + 2:
            raise SessionCryptoError("truncated key frame")
        wrapped = frame[3:at]
        sig_len = int.from_bytes(frame[at : at + 2], "big")
        signature = frame[at + 2 : at + 2 + sig_len]
        if len(signature) != sig_len:
            raise SessionCryptoError("truncated key frame")
        fingerprint = sha256(wrapped)
        if fingerprint in self._seen_wrapped:
            raise SessionCryptoError("replayed session key frame")
        if not self._peer_public_key.verify(
            _signed_key_bytes(self._recv_label, wrapped), signature
        ):
            raise SessionCryptoError(f"session key not signed by {self.peer_user!r}")
        try:
            master = self._private_key.decrypt(wrapped)
        except ValueError as exc:
            raise SessionCryptoError(f"session key unwrap failed: {exc}") from exc
        if len(master) != _MASTER_SIZE:
            raise SessionCryptoError("session key has wrong size")
        candidate = _DirectionState(master, self._recv_label, established_at=now)
        return candidate, fingerprint, at + 2 + sig_len

    def decrypt(self, frame: bytes, now: float) -> bytes:
        """Authenticate and open one session frame.

        Args:
            frame: One wire frame as produced by the peer's
                :meth:`encrypt` (key or data frame).
            now: Current time (stamps a freshly accepted key).

        Returns:
            The frame's plaintext packet bytes.

        Raises:
            SessionCryptoError: On any tampering, truncation, replay,
                reorder, unknown marker, or a data frame arriving before
                any key was established.
        """
        if not frame:
            raise SessionCryptoError("empty session frame")
        marker = frame[:1]
        fingerprint: Optional[bytes] = None
        if marker == KEY_FRAME:
            recv, fingerprint, body_at = self._open_key_frame_header(frame, now)
        elif marker == DATA_FRAME:
            if self._recv is None:
                raise SessionCryptoError("data frame before session key")
            recv = self._recv
            body_at = 1
        else:
            raise SessionCryptoError(f"unknown session frame marker {marker!r}")
        if len(frame) < body_at + 12 + _MAC_SIZE:
            raise SessionCryptoError("truncated session frame")
        mac = frame[-_MAC_SIZE:]
        expected = hmac_sha256(
            recv.mac_key, self._recv_label + frame[body_at:-_MAC_SIZE]
        )
        if not constant_time_equal(mac, expected):
            raise SessionCryptoError("session frame authentication failed")
        seq = int.from_bytes(frame[body_at : body_at + 8], "big")
        ct_len = int.from_bytes(frame[body_at + 8 : body_at + 12], "big")
        ct_end = body_at + 12 + ct_len
        if ct_end > len(frame) - _MAC_SIZE:
            raise SessionCryptoError("truncated session frame")
        ciphertext = frame[body_at + 12 : ct_end]
        if seq != recv.packets:
            raise SessionCryptoError(
                f"replayed or reordered session frame (seq {seq}, "
                f"expected {recv.packets})"
            )
        plaintext = recv.cipher.crypt(ciphertext)
        recv.position += len(ciphertext)
        recv.packets += 1
        if fingerprint is not None:
            # Fully authenticated key frame: commit the new receive key.
            self._seen_wrapped[fingerprint] = None
            while len(self._seen_wrapped) > SEEN_KEY_LIMIT:
                self._seen_wrapped.popitem(last=False)
            self._recv = recv
            self.stats["keys_accepted"] += 1
        self.stats["frames_received"] += 1
        return plaintext
