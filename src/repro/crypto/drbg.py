"""Random byte sources: a deterministic HMAC-DRBG and a system source.

Reproducibility is a first-class requirement for this reproduction — a
whole 7-day field study must replay from one integer seed.  All key and
nonce generation therefore goes through a :class:`RandomSource` interface
with two implementations:

* :class:`HmacDrbg` — HMAC-DRBG per NIST SP 800-90A (SHA-256 variant),
  seeded deterministically.  Used by simulations and tests.
* :class:`SystemRandomSource` — thin wrapper over ``os.urandom`` for any
  real use.

Equal seeds give equal streams, and :meth:`HmacDrbg.spawn` derives
independent labelled substreams when a consumer needs several unrelated
streams from one seed::

    >>> HmacDrbg.from_int(7).read(4) == HmacDrbg.from_int(7).read(4)
    True
    >>> a = HmacDrbg.from_int(7).spawn(b"worker-0").read(4)
    >>> b = HmacDrbg.from_int(7).spawn(b"worker-1").read(4)
    >>> a == b
    False
"""

from __future__ import annotations

import os

from repro.crypto.hashes import hmac_sha256


class RandomSource:
    """Interface: produce ``n`` random bytes."""

    def read(self, n: int) -> bytes:  # pragma: no cover - interface
        raise NotImplementedError

    def read_int(self, bits: int) -> int:
        """Uniform integer with exactly ``bits`` bits (top bit set)."""
        if bits < 2:
            raise ValueError(f"need at least 2 bits, got {bits}")
        nbytes = (bits + 7) // 8
        while True:
            raw = int.from_bytes(self.read(nbytes), "big")
            raw &= (1 << bits) - 1
            raw |= 1 << (bits - 1)
            return raw

    def read_int_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        bits = bound.bit_length()
        nbytes = (bits + 7) // 8
        while True:
            candidate = int.from_bytes(self.read(nbytes), "big") & ((1 << bits) - 1)
            if candidate < bound:
                return candidate


class SystemRandomSource(RandomSource):
    """Operating-system entropy (``os.urandom``)."""

    def read(self, n: int) -> bytes:
        return os.urandom(n)


class HmacDrbg(RandomSource):
    """HMAC-DRBG (SHA-256) per NIST SP 800-90A §10.1.2.

    SECURITY: deterministic by design.  Only ever seed this from real
    entropy outside of simulations.
    """

    _RESEED_INTERVAL = 1 << 24

    def __init__(self, seed: bytes) -> None:
        if not seed:
            raise ValueError("HMAC-DRBG requires non-empty seed material")
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._update(seed)
        self._generated = 0

    @classmethod
    def from_int(cls, seed: int) -> "HmacDrbg":
        """Convenience constructor used throughout the simulator."""
        width = max(8, (seed.bit_length() + 7) // 8)
        return cls(seed.to_bytes(width, "big", signed=False) if seed >= 0 else repr(seed).encode())

    def _update(self, provided: bytes = b"") -> None:
        self._key = hmac_sha256(self._key, self._value + b"\x00" + provided)
        self._value = hmac_sha256(self._key, self._value)
        if provided:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + provided)
            self._value = hmac_sha256(self._key, self._value)

    def reseed(self, material: bytes) -> None:
        """Mix fresh material into the state."""
        self._update(material)
        self._generated = 0

    def spawn(self, label: bytes) -> "HmacDrbg":
        """Derive an independent child stream bound to ``label``.

        The child is seeded from 32 parent bytes mixed with the label, so
        distinct labels give unrelated streams and the derivation is a
        pure function of (parent seed, reads so far, label).  Note that
        spawning advances the parent stream by one 32-byte read.  (The
        provisioning pool does *not* use this: its workers each derive a
        whole DRBG from their ``(bits, seed, index)`` spec, which is the
        stronger per-entry determinism.)
        """
        if not label:
            raise ValueError("spawn requires a non-empty label")
        return HmacDrbg(self.read(32) + b"|" + label)

    def read(self, n: int) -> bytes:
        if n < 0:
            raise ValueError(f"cannot read {n} bytes")
        out = bytearray()
        while len(out) < n:
            self._value = hmac_sha256(self._key, self._value)
            out.extend(self._value)
        self._update()
        self._generated += n
        if self._generated > self._RESEED_INTERVAL:
            # Auto-rekey from our own stream; keeps long simulations healthy.
            self._update(self._value)
            self._generated = 0
        return bytes(out[:n])
