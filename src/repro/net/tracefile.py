"""Contact-trace export and replay.

The paper's stated goal is DTN evaluation that is "replicable, comparable,
and available to a variety of researchers" (§I).  Contact traces are the
lingua franca for that: a list of ``(start, end, node_a, node_b)``
intervals, as used by the ONE simulator's connectivity reports and the
CRAWDAD archives.  This module can

* export a finished run's contacts to that format
  (:func:`write_contact_trace`),
* parse such files (:func:`read_contact_trace`), and
* *replay* a trace as the ground truth of a new simulation
  (:class:`TraceMedium`) — the full SOS/AlleyOop stack runs unmodified on
  recorded contacts instead of synthetic mobility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from repro.net.contact import Contact, ContactTracker, pair_key
from repro.net.device import Device
from repro.net.radio import P2P_WIFI, RadioProfile
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class ContactInterval:
    """One recorded contact: two node ids and a time interval."""

    node_a: str
    node_b: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty contact interval [{self.start}, {self.end}]")
        if self.node_a == self.node_b:
            raise ValueError(f"self-contact for {self.node_a!r}")

    @property
    def duration(self) -> float:
        return self.end - self.start


def write_contact_trace(contacts: Iterable[Contact], fh: TextIO) -> int:
    """Write completed contacts as ``start end node_a node_b`` lines.

    Active (never-closed) contacts are skipped.  Returns the number of
    lines written.
    """
    written = 0
    for contact in sorted(contacts, key=lambda c: (c.start, c.key)):
        if contact.end is None:
            continue
        fh.write(
            f"{contact.start:.3f} {contact.end:.3f} "
            f"{contact.device_a} {contact.device_b}\n"
        )
        written += 1
    return written


def read_contact_trace(fh: TextIO) -> List[ContactInterval]:
    """Parse ``start end node_a node_b`` lines (``#`` comments allowed)."""
    intervals = []
    for lineno, line in enumerate(fh, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(f"malformed contact line {lineno}: {line!r}")
        intervals.append(
            ContactInterval(
                start=float(parts[0]),
                end=float(parts[1]),
                node_a=parts[2],
                node_b=parts[3],
            )
        )
    intervals.sort(key=lambda i: i.start)
    return intervals


class TraceMedium:
    """A drop-in :class:`~repro.net.medium.Medium` replacement driven by a
    recorded contact trace instead of geometry.

    Only the surface the MPC layer consumes is implemented: device
    registry, link callbacks, ``link_between`` / ``neighbours_of`` and the
    contact tracker.  Devices still need (dummy) mobility for position
    queries; positions are irrelevant to trace-driven contacts.
    """

    def __init__(
        self,
        sim: Simulator,
        intervals: Iterable[ContactInterval],
        radio: RadioProfile = P2P_WIFI,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.devices: Dict[str, Device] = {}
        self.contacts = ContactTracker()
        self._intervals = sorted(intervals, key=lambda i: i.start)
        self._linked: Dict[Tuple[str, str], RadioProfile] = {}
        self._up_callbacks = []
        self._down_callbacks = []
        self._started = False

    # -- Medium surface -----------------------------------------------------------
    def add_device(self, device: Device) -> None:
        if device.device_id in self.devices:
            raise ValueError(f"duplicate device id {device.device_id!r}")
        self.devices[device.device_id] = device

    def on_link_up(self, callback) -> None:
        self._up_callbacks.append(callback)

    def on_link_down(self, callback) -> None:
        self._down_callbacks.append(callback)

    def link_between(self, a: str, b: str) -> Optional[RadioProfile]:
        return self._linked.get(pair_key(a, b))

    def neighbours_of(self, device_id: str) -> List[str]:
        out = []
        for key in self._linked:
            if key[0] == device_id:
                out.append(key[1])
            elif key[1] == device_id:
                out.append(key[0])
        return out

    @property
    def active_links(self) -> int:
        return len(self._linked)

    # -- lifecycle -------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every up/down event from the trace."""
        if self._started:
            return
        self._started = True
        for interval in self._intervals:
            if interval.node_a not in self.devices or interval.node_b not in self.devices:
                continue  # trace mentions nodes we are not simulating
            if interval.end <= self.sim.now:
                continue
            up_at = max(interval.start, self.sim.now)
            self.sim.schedule_at(up_at, self._link_up, interval, name="trace-up")
            self.sim.schedule_at(interval.end, self._link_down, interval, name="trace-down")

    def stop(self) -> None:
        for key in list(self._linked):
            self._drop(key)
        self.contacts.close_all(self.sim.now)

    # -- events ------------------------------------------------------------------------
    def _link_up(self, interval: ContactInterval) -> None:
        key = pair_key(interval.node_a, interval.node_b)
        if key in self._linked:
            return
        a, b = self.devices[key[0]], self.devices[key[1]]
        if not (a.powered_on and b.powered_on):
            return
        self._linked[key] = self.radio
        self.contacts.contact_up(key[0], key[1], self.radio, self.sim.now)
        self.sim.trace.emit(self.sim.now, "contact", "up", a=key[0], b=key[1],
                            radio=self.radio.technology.value)
        for callback in self._up_callbacks:
            callback(a, b, self.radio)

    def _link_down(self, interval: ContactInterval) -> None:
        self._drop(pair_key(interval.node_a, interval.node_b))

    def _drop(self, key: Tuple[str, str]) -> None:
        radio = self._linked.pop(key, None)
        if radio is None:
            return
        a, b = self.devices.get(key[0]), self.devices.get(key[1])
        self.contacts.contact_down(key[0], key[1], self.sim.now)
        self.sim.trace.emit(self.sim.now, "contact", "down", a=key[0], b=key[1],
                            radio=radio.technology.value)
        if a is not None and b is not None:
            for callback in self._down_callbacks:
                callback(a, b, radio)
