"""Radio and contact substrate.

Models the physical half of the deployment: devices carried by mobility
models, each fitted with the radio set an iPhone brings to Multipeer
Connectivity — Bluetooth PAN, peer-to-peer WiFi, and infrastructure WiFi
through fixed hotspots.  The :class:`~repro.net.medium.Medium` ticks the
mobility models, maintains a spatial index, and turns geometry into
*contact events* (link up / link down with an effective radio), which is
the only interface the MPC layer above ever sees.
"""

from repro.net.radio import RadioTechnology, RadioProfile, BLUETOOTH, P2P_WIFI, INFRA_WIFI
from repro.net.device import Device
from repro.net.contact import Contact, ContactTracker
from repro.net.medium import Medium
from repro.net.bandwidth import transfer_duration
from repro.net.energy import EnergyBudget, EnergyMeter

__all__ = [
    "RadioTechnology",
    "RadioProfile",
    "BLUETOOTH",
    "P2P_WIFI",
    "INFRA_WIFI",
    "Device",
    "Contact",
    "ContactTracker",
    "Medium",
    "transfer_duration",
    "EnergyBudget",
    "EnergyMeter",
]
