"""Transfer-time and message-size accounting.

The medium does not simulate per-packet behaviour; at DTN timescales what
matters is whether a message of size S fits inside a contact of duration D
on a radio of throughput B (plus fixed per-transfer overhead).
"""

from __future__ import annotations

from repro.net.radio import RadioProfile

#: Fixed protocol overhead per application transfer (framing, acks), bytes.
PER_TRANSFER_OVERHEAD_BYTES = 512

#: Latency floor per transfer, seconds (radio turnaround, scheduling).
PER_TRANSFER_LATENCY_S = 0.05


def transfer_duration(size_bytes: int, radio: RadioProfile) -> float:
    """Seconds needed to move ``size_bytes`` over ``radio``."""
    if size_bytes < 0:
        raise ValueError(f"negative transfer size {size_bytes}")
    total_bits = (size_bytes + PER_TRANSFER_OVERHEAD_BYTES) * 8
    return PER_TRANSFER_LATENCY_S + total_bits / radio.throughput_bps


def transfers_possible(contact_seconds: float, size_bytes: int, radio: RadioProfile) -> int:
    """How many transfers of ``size_bytes`` fit in a contact of the given
    length (0 when even one does not fit)."""
    if contact_seconds <= 0:
        return 0
    per = transfer_duration(size_bytes, radio)
    return int(contact_seconds // per)
