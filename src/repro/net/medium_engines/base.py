"""The engine protocol every contact-detection implementation honours.

See the package docstring for the exchangeability contract.  Engines
are strategy objects owned by one :class:`~repro.net.medium.Medium`;
they may read the medium's registries (devices, reaches, radio classes)
but all link state and trace emission stays on the medium.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.device import Device
    from repro.net.medium import Medium


class ContactEngine:
    """Produces each tick's candidate pair set for one medium."""

    #: Human-readable engine name (bench tables, repr).
    name = "abstract"

    def __init__(self, medium: "Medium") -> None:
        self.medium = medium

    # -- population change notifications ----------------------------------------
    def device_added(self, device: "Device") -> None:
        """Called after ``device`` is registered with the medium."""

    def device_removed(self, device_id: str) -> None:
        """Called after ``device_id`` is deregistered from the medium."""

    # -- lifecycle ----------------------------------------------------------------
    def tick(self, now: float) -> None:
        """Advance mobility and feed the candidate set to
        ``Medium._apply_candidates`` (or perform an equivalent diff)."""
        raise NotImplementedError

    def stop(self) -> None:
        """Release engine resources (worker processes, caches)."""

    # -- instrumentation ----------------------------------------------------------
    @property
    def extra_distance_checks(self) -> int:
        """Candidate distance computations performed outside the
        medium's own spatial index (per-shard worker indices)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
