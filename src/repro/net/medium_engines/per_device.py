"""The per-device reference engine (the seed algorithm).

Kept deliberately naive — this is the oracle the batched and sharded
engines are verified against (identical contact traces) and benchmarked
over.  It performs its own pair-set rediff rather than going through
``Medium._apply_candidates``: re-resolving the radio per tick and
skipping powered-off devices at query time is exactly the seed
behaviour the other engines must reproduce from the outside.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.medium import Medium

from repro.net.contact import pair_key
from repro.net.medium_engines.base import ContactEngine
from repro.net.radio import RadioProfile, best_common_radio


class PerDeviceEngine(ContactEngine):
    """Per-device spatial queries, pair-set rediff."""

    name = "per-device"

    def tick(self, now: float) -> None:
        medium = self.medium
        index = medium._index
        devices = medium.devices
        # Registry order cannot reach the trace: each iteration updates
        # an independent per-device index entry; the pair sweep below
        # reads the completed index and every engine emits link events
        # in sorted pair order.
        for device in devices.values():
            index.update(device.device_id, device.position_at(now))

        desired: Dict[Tuple[str, str], RadioProfile] = {}
        seen: Set[Tuple[str, str]] = set()
        sweep = medium._max_range * medium.hysteresis
        for device_id, device in devices.items():
            if not device.powered_on:
                continue
            position = index.position_of(device_id)
            for other_id in index.within(position, sweep, exclude=device_id):
                key = pair_key(device_id, other_id)
                if key in seen:
                    continue
                seen.add(key)
                medium.pairs_examined += 1
                other = devices[other_id]
                if not other.powered_on:
                    continue
                radio = best_common_radio(devices[key[0]].radios, devices[key[1]].radios)
                if radio is None:
                    continue
                # Squared-distance compares with the exact arithmetic of
                # pairs_within, so the engines agree even when a pair
                # lands within a rounding error of a range threshold.
                other_position = index.position_of(other_id)
                dx = position.x - other_position.x
                dy = position.y - other_position.y
                d2 = dx * dx + dy * dy
                active = medium._linked.get(key)
                if active is not None:
                    # Existing link survives out to the hysteresis margin
                    # of the radio it was *raised* on — not whatever the
                    # best common technology happens to resolve to now.
                    limit = active.range_m * medium.hysteresis
                    if d2 <= limit * limit:
                        desired[key] = active
                else:
                    reach = radio.range_m
                    if d2 <= reach * reach:
                        desired[key] = radio

        for key in sorted(k for k in medium._linked if k not in desired):
            medium._drop_link(key)
        for key in sorted(k for k in desired if k not in medium._linked):
            medium._raise_link(key, desired[key])
