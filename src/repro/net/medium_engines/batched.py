"""The batched single-process engine (PR 1; the default).

One mobility pass per tick (devices grouped by mobility class, one
:meth:`~repro.mobility.base.MobilityModel.positions_at` call per class),
one bulk spatial update, one population-wide pair sweep via
:meth:`~repro.geo.spatial_index.SpatialHashIndex.pairs_within`, then the
shared incremental link diff on the medium.  See "Scaling the medium"
in :mod:`repro.net.medium` for the full design notes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.device import Device
    from repro.net.medium import Medium

from repro.net.medium_engines.base import ContactEngine


class BatchedEngine(ContactEngine):
    """One mobility pass, one pair sweep, incremental link diff."""

    name = "batched"

    def __init__(self, medium: "Medium") -> None:
        super().__init__(medium)
        #: mobility-class groups, rebuilt after add/remove.
        self._groups: Optional[List[Tuple[type, List["Device"], list]]] = None

    def device_added(self, device: "Device") -> None:
        self._groups = None

    def device_removed(self, device_id: str) -> None:
        self._groups = None

    def mobility_groups(self) -> List[Tuple[type, List["Device"], list]]:
        """Devices bucketed by mobility class (cached between ticks)."""
        if self._groups is None:
            buckets: Dict[type, Tuple[type, List["Device"], list]] = {}
            # Registry order only decides the order of batched
            # positions_at/update_many calls; every device's position
            # lands in the same final index state, and link events are
            # diffed from that state and emitted in sorted pair order
            # (Medium._apply_candidates).
            for device in self.medium.devices.values():
                cls = type(device.mobility)
                entry = buckets.get(cls)
                if entry is None:
                    entry = buckets[cls] = (cls, [], [])
                entry[1].append(device)
                entry[2].append(device.mobility)
            self._groups = list(buckets.values())
        return self._groups

    def tick(self, now: float) -> None:
        medium = self.medium
        # Advance the population, one batch call per mobility class.
        index = medium._index
        for mobility_cls, group_devices, models in self.mobility_groups():
            points = mobility_cls.positions_at(models, now)
            for device, position in zip(group_devices, points):
                device._last_position = position
            index.update_many(zip((d.device_id for d in group_devices), points))
        candidates = index.pairs_within(
            medium._max_range * medium.hysteresis, reach_of=medium._reach
        )
        medium.pairs_examined += len(candidates)
        medium._apply_candidates(now, candidates)
