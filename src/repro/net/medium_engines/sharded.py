"""The sharded cross-process engine (parent side).

Partitions the batched tick across a persistent pool of worker
processes in two rounds:

1. **advance** — each worker steps the mobility models of its static
   device chunk (assigned round-robin at pool construction so every
   worker sees a similar mobility-class mix) and returns positions.
   Mobility ownership is *not* spatial: models are stateful and their
   query sequence must match a single-process run exactly, so a model
   never migrates between workers.
2. **sweep** — the parent buckets the returned positions by grid
   column, cuts the occupied columns into contiguous bands balanced by
   occupancy (:func:`~repro.geo.spatial_index.partition_cell_bands`),
   and sends each worker its band *plus a right-halo ghost zone* wide
   enough (``ceil(sweep_radius / cell_size)`` columns, widenable via
   ``halo_m``) that every pair straddling a band boundary is seen by
   the band owning its leftmost member.  Workers sweep locally and keep
   only owned pairs (``lo <= min(cx_a, cx_b) < hi``), so the
   concatenated result is the global candidate set with each pair
   exactly once.

The merged candidates then flow through ``Medium._apply_candidates``
like any other engine's — the link diff, hysteresis and sorted trace
emission are shared, which is why traces are byte-identical to the
batched engine for any shard count.

The pool forks lazily at the first tick, after the whole initial
population is registered, so worker mobility state arrives by
copy-on-write inheritance rather than pickling.  After the fork the
parent must not advance the models itself — workers are authoritative —
so a stopped sharded medium cannot be restarted.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mobility.base import MobilityModel
    from repro.net.device import Device
    from repro.net.medium import Medium

from repro.geo.spatial_index import partition_cell_bands, span_cells
from repro.net.medium_engines.base import ContactEngine
from repro.net.medium_engines.shard_worker import (
    advance_shard,
    build_state,
    sweep_shard,
)
from repro.sim.parallel import WorkerPool


class ShardedEngine(ContactEngine):
    """Spatially partitioned batched tick over a persistent worker pool."""

    name = "sharded"

    def __init__(
        self, medium: "Medium", shards: int, halo_m: Optional[float] = None
    ) -> None:
        super().__init__(medium)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if halo_m is not None and halo_m <= 0:
            raise ValueError(f"halo_m must be positive, got {halo_m}")
        self.shards = shards
        #: Minimum ghost-zone width in metres.  The engine always uses at
        #: least the sweep radius (anything narrower would miss boundary
        #: pairs); this knob can only widen the halo, for experiments on
        #: snapshot-exchange volume.
        self.halo_m = halo_m
        self._pool: Optional[WorkerPool] = None
        self._stopped = False
        #: device id -> worker index (mobility ownership).
        self._owner: Dict[str, int] = {}
        self._owned_counts: List[int] = [0] * shards
        #: population changes since the last tick, shipped with the next
        #: advance dispatch.  Adds keyed by id so add-then-remove between
        #: ticks cancels cleanly.
        self._pending_adds: Dict[str, Tuple[int, "MobilityModel", float]] = {}
        self._pending_removes: List[str] = []
        self._extra_checks = 0
        #: cumulative halo duplicates: ghost position snapshots sent to a
        #: band beyond its own columns.
        self.ghost_snapshots = 0

    # -- population change notifications ----------------------------------------
    def device_added(self, device: "Device") -> None:
        if self._pool is None:
            return  # pool not forked yet: _build_pool reads the registry
        worker = min(range(self.shards), key=lambda k: self._owned_counts[k])
        self._owned_counts[worker] += 1
        self._owner[device.device_id] = worker
        self._pending_adds[device.device_id] = (
            worker,
            device.mobility,
            self.medium._reach[device.device_id],
        )

    def device_removed(self, device_id: str) -> None:
        if self._pool is None:
            return
        pending = self._pending_adds.pop(device_id, None)
        if pending is not None:
            self._owned_counts[pending[0]] -= 1
            self._owner.pop(device_id, None)
            return
        worker = self._owner.pop(device_id, None)
        if worker is not None:
            self._owned_counts[worker] -= 1
            self._pending_removes.append(device_id)

    # -- pool lifecycle ----------------------------------------------------------
    def _build_pool(self) -> None:
        medium = self.medium
        cell_size = medium._index.cell_size
        ids = sorted(medium.devices)
        owned_items: List[List[Tuple[str, "MobilityModel"]]] = [
            [] for _ in range(self.shards)
        ]
        for i, device_id in enumerate(ids):
            worker = i % self.shards
            self._owner[device_id] = worker
            self._owned_counts[worker] += 1
            owned_items[worker].append(
                (device_id, medium.devices[device_id].mobility)
            )
        payloads = [
            (cell_size, owned_items[k], dict(medium._reach))
            for k in range(self.shards)
        ]
        self._pool = WorkerPool(build_state, payloads)

    def stop(self) -> None:
        if self._pool is not None:
            self._pool.close()
        self._stopped = True

    # -- the tick ----------------------------------------------------------------
    def tick(self, now: float) -> None:
        if self._stopped:
            raise RuntimeError(
                "sharded medium cannot tick after stop(): worker mobility "
                "state died with the pool"
            )
        if self._pool is None:
            self._build_pool()
        pool = self._pool
        medium = self.medium
        assert pool is not None

        # Round 1: advance mobility on every worker's owned chunk.
        removes = self._pending_removes
        reach_updates = {
            device_id: reach
            for device_id, (_, _, reach) in self._pending_adds.items()
        }
        adds_by_worker: List[List[Tuple[str, "MobilityModel"]]] = [
            [] for _ in range(self.shards)
        ]
        for device_id, (worker, model, _) in self._pending_adds.items():
            adds_by_worker[worker].append((device_id, model))
        advance_tasks = [
            (now, adds_by_worker[k], removes, reach_updates)
            for k in range(self.shards)
        ]
        chunks = pool.dispatch(advance_shard, advance_tasks)
        self._pending_adds = {}
        self._pending_removes = []

        # Bucket positions by grid column; record them on the devices so
        # overlay consumers (which read ``last_position``) keep working
        # without querying the parent's now-passive mobility models.
        # This loop runs len(devices) times per tick in the parent's
        # serialised section, so it is written for constant-factor
        # economy: worker tuples are kept as-is, positions land as raw
        # (x, y) pairs (Device.last_position promotes them to Points on
        # first read), and the column arithmetic is inlined (it must
        # stay identical to cell_x_of / SpatialHashIndex._cell_of).
        devices = medium.devices
        cell_size = medium._index.cell_size
        floor = math.floor
        buckets: Dict[int, List[Tuple[str, float, float]]] = {}
        total = 0
        for chunk in chunks:
            total += len(chunk)
            for item in chunk:
                device_id, x, y = item
                devices[device_id]._last_position = (x, y)
                cx = int(floor(x / cell_size))
                bucket = buckets.get(cx)
                if bucket is None:
                    bucket = buckets[cx] = []
                bucket.append(item)
        counts = {cx: len(bucket) for cx, bucket in buckets.items()}
        if total != len(devices):
            raise RuntimeError(
                f"shard advance returned {total} positions for "
                f"{len(devices)} devices: ownership map out of sync"
            )

        # Round 2: sweep each band with its right-halo ghost zone.
        sweep_radius = medium._max_range * medium.hysteresis
        span = span_cells(sweep_radius, cell_size)
        if self.halo_m is not None:
            span = max(span, span_cells(self.halo_m, cell_size))
        bands = partition_cell_bands(counts, self.shards)
        columns = sorted(buckets)
        sweep_tasks = []
        for lo, hi in bands:
            members: List[Tuple[str, float, float]] = []
            own = 0
            start = bisect_left(columns, lo)
            end = bisect_left(columns, hi + span)
            for cx in columns[start:end]:
                members.extend(buckets[cx])
                if cx < hi:
                    own += len(buckets[cx])
            self.ghost_snapshots += len(members) - own
            sweep_tasks.append((sweep_radius, lo, hi, members))
        results = pool.dispatch(sweep_shard, sweep_tasks)

        # Deterministic merge: each pair was kept by exactly one band
        # (the one owning its leftmost column), so concatenation is the
        # global candidate set.  Order is irrelevant downstream —
        # _apply_candidates diffs per pair and emits in sorted order.
        candidates: List[Tuple[Hashable, Hashable, float]] = []
        for kept, checks in results:
            candidates.extend(kept)
            self._extra_checks += checks
        medium.pairs_examined += len(candidates)
        medium._apply_candidates(now, candidates)

    # -- instrumentation ----------------------------------------------------------
    @property
    def extra_distance_checks(self) -> int:
        return self._extra_checks

    @property
    def forked(self) -> bool:
        """Whether the pool actually forked (False before the first tick
        and under the serial in-process fallback)."""
        return self._pool is not None and self._pool.forked
