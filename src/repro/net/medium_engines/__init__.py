"""Contact-detection engines.

:class:`~repro.net.medium.Medium` owns the *link state* of the
simulation — which pairs are connected, with which radio, and the
sorted-order trace emission discipline that keeps runs byte-identical.
*How* the candidate pair set is produced each tick is an engine
concern, and three engines implement the same contract:

* :class:`~repro.net.medium_engines.per_device.PerDeviceEngine` — the
  seed algorithm: one radius query per device, pair-set rediff.  Kept
  deliberately naive as the reference oracle.
* :class:`~repro.net.medium_engines.batched.BatchedEngine` — one
  mobility pass, one population-wide spatial pair sweep, incremental
  link diff (PR 1; the single-process default).
* :class:`~repro.net.medium_engines.sharded.ShardedEngine` — the
  batched algorithm partitioned across worker processes: contiguous
  grid-column shards, per-shard mobility + pair sweeps, ghost-zone
  (halo) position exchange for pairs straddling shard boundaries, and
  a deterministic merge of the per-shard candidate sets in the parent.

The contract that makes them interchangeable: an engine's ``tick`` must
hand :meth:`Medium._apply_candidates` the exact geometric candidate set
``{(a, b, d²) : distance(a, b) <= min(reach_a, reach_b)}``, each pair
exactly once, with ``d²`` computed by the shared
``SpatialHashIndex.pairs_within`` arithmetic.  Everything order- or
process-sensitive (link diff, hysteresis, next-check scheduling, trace
emission) lives in ``Medium`` and runs identically for all three, which
is why traces are byte-identical across engines and shard counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.medium_engines.base import ContactEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.medium import Medium

__all__ = ["ContactEngine", "resolve_engine"]


def resolve_engine(
    medium: "Medium",
    batched: bool,
    shards: int,
    halo_m: Optional[float],
) -> ContactEngine:
    """The engine for a medium's knob settings.

    ``shards >= 1`` selects the sharded engine (it generalises the
    batched algorithm, so ``batched`` is ignored); ``shards == 0`` keeps
    the single-process choice between the batched engine and the
    per-device reference path.
    """
    if shards:
        from repro.net.medium_engines.sharded import ShardedEngine

        return ShardedEngine(medium, shards=shards, halo_m=halo_m)
    if batched:
        from repro.net.medium_engines.batched import BatchedEngine

        return BatchedEngine(medium)
    from repro.net.medium_engines.per_device import PerDeviceEngine

    return PerDeviceEngine(medium)
