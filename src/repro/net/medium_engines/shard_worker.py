"""Worker-side half of the sharded contact engine.

Everything in this module runs inside shard worker processes (or inline,
when :class:`~repro.sim.parallel.WorkerPool` falls back to serial mode).
The functions are module-level and pure over ``(state, task)`` — no
closures, no bound methods, no simulator handles — so they satisfy the
``fork-unsafe`` lint contract and pickle cleanly by qualified name.

Each worker owns two independent responsibilities per tick:

* **advance** — step the mobility models of its *owned* device chunk to
  the tick time and return the new positions.  Ownership is static
  (assigned at pool construction, extended by pending-add tasks), so a
  model's query sequence is exactly what it would have been in a
  single-process run: mobility models are pull-driven and per-model
  independent (``positions_at`` is a per-model loop), which is what
  makes the partitioning bit-identical.
* **sweep** — given a grid-column band ``[lo, hi)`` plus its right-halo
  ghost snapshots, build a throwaway local spatial index and enumerate
  candidate pairs, keeping only pairs this band *owns* under the
  min-column rule ``lo <= min(cx_a, cx_b) < hi``.  Every pair has
  exactly one owner band, so concatenating the per-band results
  reproduces the global ``pairs_within`` set — with the same float64
  ``d²`` arithmetic, because it *is* the same sweep code.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.geo.point import Point
from repro.geo.spatial_index import SpatialHashIndex, cell_x_of
from repro.mobility.base import MobilityModel

#: advance task: (now, adds, removes, reach_updates)
AdvanceTask = Tuple[
    float,
    List[Tuple[str, MobilityModel]],
    List[str],
    Dict[str, float],
]
#: sweep task: (sweep_radius, band_lo, band_hi, members=[(id, x, y)])
SweepTask = Tuple[float, int, int, List[Tuple[str, float, float]]]


class ShardWorkerState:
    """One worker's private world: its mobility chunk and the
    population-wide reach table (any device may drift into this
    worker's band, so reaches are replicated everywhere)."""

    __slots__ = ("cell_size", "owned", "reach", "_groups")

    def __init__(
        self,
        cell_size: float,
        owned: Dict[str, MobilityModel],
        reach: Dict[str, float],
    ) -> None:
        self.cell_size = cell_size
        self.owned = owned
        self.reach = reach
        #: mobility-class groups over ``owned``, rebuilt after add/remove.
        self._groups: Optional[List[Tuple[type, List[str], list]]] = None

    def mobility_groups(self) -> List[Tuple[type, List[str], list]]:
        if self._groups is None:
            buckets: Dict[type, Tuple[type, List[str], list]] = {}
            # Sorted ids: the grouping (and hence the batched call order)
            # is a pure function of the owned set, not insertion history.
            for device_id in sorted(self.owned):
                model = self.owned[device_id]
                cls = type(model)
                entry = buckets.get(cls)
                if entry is None:
                    entry = buckets[cls] = (cls, [], [])
                entry[1].append(device_id)
                entry[2].append(model)
            self._groups = list(buckets.values())
        return self._groups


def build_state(
    payload: Tuple[float, List[Tuple[str, MobilityModel]], Dict[str, float]]
) -> ShardWorkerState:
    """WorkerPool init function: unpack the per-worker payload."""
    cell_size, owned_items, reach = payload
    return ShardWorkerState(cell_size, dict(owned_items), dict(reach))


def advance_shard(
    state: ShardWorkerState, task: AdvanceTask
) -> List[Tuple[str, float, float]]:
    """Apply pending population changes, then advance this worker's
    mobility chunk to ``now``.  Returns ``[(device_id, x, y)]``."""
    now, adds, removes, reach_updates = task
    for device_id in removes:
        if state.owned.pop(device_id, None) is not None:
            state._groups = None
        state.reach.pop(device_id, None)
    if reach_updates:
        state.reach.update(reach_updates)
    if adds:
        for device_id, model in adds:
            state.owned[device_id] = model
        state._groups = None
    out: List[Tuple[str, float, float]] = []
    for mobility_cls, ids, models in state.mobility_groups():
        points = mobility_cls.positions_at(models, now)
        for device_id, point in zip(ids, points):
            out.append((device_id, point.x, point.y))
    return out


def sweep_shard(
    state: ShardWorkerState, task: SweepTask
) -> Tuple[List[Tuple[Hashable, Hashable, float]], int]:
    """Pair-sweep one band (own columns plus right halo), keeping only
    the pairs the band owns.  Returns ``(candidates, distance_checks)``.

    A fresh index per call: members change completely every tick and the
    build cost is the same ``update_many`` bulk path the batched engine
    pays, without any cross-tick eviction bookkeeping.
    """
    sweep_radius, lo, hi, members = task
    if not members:
        return [], 0
    size = state.cell_size
    index = SpatialHashIndex(cell_size=size)
    reach = state.reach
    reach_of: Dict[str, float] = {}
    column: Dict[str, int] = {}
    entries: List[Tuple[str, Point]] = []
    for device_id, x, y in members:
        entries.append((device_id, Point(x, y)))
        reach_of[device_id] = reach[device_id]
        column[device_id] = cell_x_of(x, size)
    index.update_many(entries)
    kept: List[Tuple[Hashable, Hashable, float]] = []
    for a, b, d2 in index.pairs_within(sweep_radius, reach_of=reach_of):
        home = column[a]
        cx_b = column[b]
        if cx_b < home:
            home = cx_b
        if lo <= home < hi:
            kept.append((a, b, d2))
    return kept, index.distance_checks
