"""Contact bookkeeping.

A *contact* is a maximal interval during which two devices can exchange
data over some radio.  The tracker aggregates contacts into the statistics
DTN papers report: contact count, total/mean contact duration, and
inter-contact times per pair.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.radio import RadioProfile


def pair_key(a: str, b: str) -> Tuple[str, str]:
    """Canonical unordered pair key."""
    return (a, b) if a <= b else (b, a)


@dataclass
class Contact:
    """One contact interval between two devices."""

    device_a: str
    device_b: str
    radio: RadioProfile
    start: float
    end: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def key(self) -> Tuple[str, str]:
        return pair_key(self.device_a, self.device_b)


class ContactTracker:
    """Collects contact intervals and derives summary statistics."""

    def __init__(self) -> None:
        self._active: Dict[Tuple[str, str], Contact] = {}
        self.completed: List[Contact] = []

    def contact_up(self, a: str, b: str, radio: RadioProfile, now: float) -> Contact:
        key = pair_key(a, b)
        if key in self._active:
            return self._active[key]  # already up (idempotent)
        contact = Contact(device_a=key[0], device_b=key[1], radio=radio, start=now)
        self._active[key] = contact
        return contact

    def contact_down(self, a: str, b: str, now: float) -> Optional[Contact]:
        key = pair_key(a, b)
        contact = self._active.pop(key, None)
        if contact is None:
            return None
        contact.end = now
        self.completed.append(contact)
        return contact

    def close_all(self, now: float) -> None:
        """End all active contacts (end of simulation)."""
        for key in list(self._active):
            self.contact_down(key[0], key[1], now)

    @property
    def active_count(self) -> int:
        return len(self._active)

    def is_active(self, a: str, b: str) -> bool:
        return pair_key(a, b) in self._active

    # -- statistics --------------------------------------------------------------
    def total_contacts(self) -> int:
        return len(self.completed) + len(self._active)

    def contact_durations(self) -> List[float]:
        return [c.duration for c in self.completed]

    def mean_contact_duration(self) -> float:
        durations = self.contact_durations()
        return sum(durations) / len(durations) if durations else 0.0

    def contacts_per_pair(self) -> Dict[Tuple[str, str], int]:
        counts: Dict[Tuple[str, str], int] = defaultdict(int)
        for c in self.completed:
            counts[c.key] += 1
        for key in self._active:
            counts[key] += 1
        return dict(counts)

    def inter_contact_times(self) -> List[float]:
        """Gaps between successive contacts of the same pair."""
        by_pair: Dict[Tuple[str, str], List[Contact]] = defaultdict(list)
        for c in self.completed:
            by_pair[c.key].append(c)
        gaps: List[float] = []
        for contacts in by_pair.values():
            contacts.sort(key=lambda c: c.start)
            for prev, nxt in zip(contacts, contacts[1:]):
                if prev.end is not None:
                    gaps.append(nxt.start - prev.end)
        return gaps
