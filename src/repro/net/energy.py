"""Per-device radio energy accounting.

Opportunistic middleware lives on phones, where the real resource is the
battery; the paper's motivation includes low-cost smart-city deployments
on battery-powered nodes (§I).  This module meters each device's radio
activity from the simulation's own events:

* **scan/idle-on energy** — advertising + browsing whenever the device is
  powered on (MPC keeps both radios lit),
* **connection energy** — per established link, while it lasts,
* **transfer energy** — per byte sent or received.

Power figures are representative published numbers for smartphone
Bluetooth/WiFi workloads (order-of-magnitude correct; the *relative*
protocol comparison is what matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.net.contact import pair_key
from repro.sim.engine import Simulator
from repro.sim.trace import TraceEvent

#: Scan/advertise draw while the app is foregrounded (W).
SCAN_POWER_W = 0.08
#: Additional draw per active link (W).
LINK_POWER_W = 0.12
#: Energy per byte moved at the application layer (J/byte ~ 100 nJ/bit).
ENERGY_PER_BYTE_J = 8e-7


@dataclass
class EnergyBudget:
    """Joules accumulated by one device, by cause."""

    scan_j: float = 0.0
    link_j: float = 0.0
    transfer_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.scan_j + self.link_j + self.transfer_j


class EnergyMeter:
    """Meters every device on a medium via the simulation trace.

    Usage::

        meter = EnergyMeter(sim, medium)
        ... run the simulation ...
        meter.finalise()
        joules = meter.budget_of("device-3").total_j
    """

    def __init__(self, sim: Simulator, medium) -> None:
        self.sim = sim
        self.medium = medium
        self._budgets: Dict[str, EnergyBudget] = {}
        self._on_since: Dict[str, Optional[float]] = {}
        self._link_since: Dict[tuple, float] = {}
        self._finalised = False
        sim.trace.subscribe(self._on_event)
        for device_id, device in medium.devices.items():
            self._budgets[device_id] = EnergyBudget()
            self._on_since[device_id] = sim.now if device.powered_on else None

    def _budget(self, device_id: str) -> EnergyBudget:
        return self._budgets.setdefault(device_id, EnergyBudget())

    # -- power state -------------------------------------------------------------
    def note_power_on(self, device_id: str) -> None:
        if self._on_since.get(device_id) is None:
            self._on_since[device_id] = self.sim.now

    def note_power_off(self, device_id: str) -> None:
        since = self._on_since.get(device_id)
        if since is not None:
            self._budget(device_id).scan_j += (self.sim.now - since) * SCAN_POWER_W
            self._on_since[device_id] = None

    def sample_power_states(self) -> None:
        """Poll device power flags (call periodically, or rely on
        finalise() for coarse accounting when power never changes)."""
        for device_id, device in self.medium.devices.items():
            if device.powered_on:
                self.note_power_on(device_id)
            else:
                self.note_power_off(device_id)

    # -- trace-driven accounting ------------------------------------------------------
    def _on_event(self, event: TraceEvent) -> None:
        if event.category != "contact":
            return
        key = pair_key(event.data["a"], event.data["b"])
        if event.kind == "up":
            self._link_since[key] = event.time
        elif event.kind == "down":
            since = self._link_since.pop(key, None)
            if since is not None:
                joules = (event.time - since) * LINK_POWER_W
                self._budget(key[0]).link_j += joules
                self._budget(key[1]).link_j += joules

    def note_transfer(self, device_id: str, size_bytes: int) -> None:
        self._budget(device_id).transfer_j += size_bytes * ENERGY_PER_BYTE_J

    def charge_transfers_from_stats(self, bytes_by_device: Dict[str, int]) -> None:
        """Bulk-charge transfer energy from per-device byte counters
        (both the sender and receiver pay per byte)."""
        for device_id, byte_count in bytes_by_device.items():
            self.note_transfer(device_id, byte_count)

    # -- closing the books ----------------------------------------------------------------
    def finalise(self) -> None:
        """Close open intervals at the current simulation time."""
        if self._finalised:
            return
        self._finalised = True
        self.sample_power_states()
        for device_id, since in list(self._on_since.items()):
            if since is not None:
                self._budget(device_id).scan_j += (self.sim.now - since) * SCAN_POWER_W
                self._on_since[device_id] = None
        for key, since in list(self._link_since.items()):
            joules = (self.sim.now - since) * LINK_POWER_W
            self._budget(key[0]).link_j += joules
            self._budget(key[1]).link_j += joules
        self._link_since.clear()

    def budget_of(self, device_id: str) -> EnergyBudget:
        return self._budget(device_id)

    def total_joules(self) -> float:
        return sum(budget.total_j for budget in self._budgets.values())

    def per_device(self) -> Dict[str, EnergyBudget]:
        return dict(self._budgets)
