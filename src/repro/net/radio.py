"""Radio technology profiles.

Apple's Multipeer Connectivity multiplexes three underlying transports
(paper §III-D): Bluetooth personal area networks, peer-to-peer WiFi, and
infrastructure WiFi.  Each profile captures the parameters that matter to
a DTN: communication range, application-layer throughput, and session
setup latency.  Numbers are conservative published figures for iPhone-era
hardware, not marketing maxima.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class RadioTechnology(Enum):
    BLUETOOTH = "bluetooth"
    P2P_WIFI = "p2p_wifi"
    INFRA_WIFI = "infra_wifi"


@dataclass(frozen=True)
class RadioProfile:
    """Parameters of one radio technology.

    Attributes
    ----------
    range_m:
        Reliable communication range in metres.
    throughput_bps:
        Sustained application-layer throughput in bits/second.
    setup_latency_s:
        Time from invitation to an established encrypted session.
    """

    technology: RadioTechnology
    range_m: float
    throughput_bps: float
    setup_latency_s: float

    def __post_init__(self) -> None:
        if self.range_m <= 0 or self.throughput_bps <= 0 or self.setup_latency_s < 0:
            raise ValueError(f"invalid radio profile {self!r}")


#: Bluetooth PAN: ~10 m class-2 range, ~2 Mbit/s effective.
BLUETOOTH = RadioProfile(
    technology=RadioTechnology.BLUETOOTH,
    range_m=10.0,
    throughput_bps=2_000_000.0,
    setup_latency_s=3.0,
)

#: Peer-to-peer WiFi (AWDL): ~60 m open-air, ~25 Mbit/s effective.
P2P_WIFI = RadioProfile(
    technology=RadioTechnology.P2P_WIFI,
    range_m=60.0,
    throughput_bps=25_000_000.0,
    setup_latency_s=1.5,
)

#: Infrastructure WiFi through a shared access point: AP coverage ~100 m.
INFRA_WIFI = RadioProfile(
    technology=RadioTechnology.INFRA_WIFI,
    range_m=100.0,
    throughput_bps=50_000_000.0,
    setup_latency_s=0.8,
)

#: The full iOS device radio set, in preference order (fastest first).
DEFAULT_RADIO_SET = (P2P_WIFI, BLUETOOTH)


def best_common_radio(a_radios, b_radios) -> RadioProfile:
    """The highest-throughput technology present on both devices, or None."""
    a_by_tech = {r.technology: r for r in a_radios}
    best = None
    for radio in b_radios:
        if radio.technology in a_by_tech:
            if best is None or radio.throughput_bps > best.throughput_bps:
                best = radio
    return best
