"""The shared radio medium.

The medium owns the physical truth of the simulation: where every device
is, and which pairs are within radio range.  On a fixed tick it advances
every mobility model, refreshes a spatial index, and diffs the in-range
pair set against the previous tick, emitting ``link_up`` / ``link_down``
callbacks with the best common radio.  Hysteresis (connect at R, drop at
R * ``hysteresis``) prevents link flapping at range boundaries — real
radios behave the same way because of fading margins.  The drop threshold
is always derived from the radio the link was *raised* on, so a pair
whose best common technology would change mid-contact keeps a stable
survival margin.

Scaling the medium
==================

Contact detection is the hottest loop of every experiment: it runs once
per ``tick_interval`` for the whole population, for the whole study.  The
default engine (``batched=True``) is built for density sweeps with
thousands of devices:

* **Batched mobility** — devices are grouped by mobility class and each
  class advances its whole group through one
  :meth:`~repro.mobility.base.MobilityModel.positions_at` call, then the
  spatial index absorbs every move via
  :meth:`~repro.geo.spatial_index.SpatialHashIndex.update_many`.
* **One pair sweep per tick** — instead of one radius query per device
  (which visits every pair twice and dedups with a ``seen`` set), the
  index enumerates each candidate pair exactly once with
  :meth:`~repro.geo.spatial_index.SpatialHashIndex.pairs_within`.
* **Incremental link diff** — active links are checked only against the
  survival threshold of the radio they were raised on; radio resolution
  (``best_common_radio``) runs once per pair ever, cached, because radio
  sets are immutable.
* **Per-pair next-check scheduling** — when both endpoints advertise a
  speed bound (:meth:`~repro.net.device.Device.max_speed_m_s`), a pair
  seen far outside its link range is provably out of reach for
  ``(distance - range) / (v_a + v_b)`` seconds and is skipped until
  then.  This prunes the per-candidate link logic, not the geometric
  sweep, so it matters for stationary populations (parked forever once
  out of range) and short-range radios inside a long-range sweep;
  fast-moving homogeneous-radio pairs rarely qualify.

The per-device reference path is kept (``batched=False``): it is the
oracle the scale benchmark diffs against.  Both paths emit link events in
sorted pair order within a tick, which makes contact traces byte-identical
across the two engines *and* across processes (cell sets iterate in
hash order, so unsorted emission would depend on ``PYTHONHASHSEED``).
See ``benchmarks/test_bench_medium_scale.py`` for throughput numbers and
the equivalence check, and EXPERIMENTS.md for how to run them.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.geo.spatial_index import SpatialHashIndex
from repro.net.contact import ContactTracker, pair_key
from repro.net.device import Device
from repro.net.radio import RadioProfile, best_common_radio
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTimer

LinkCallback = Callable[[Device, Device, RadioProfile], None]

#: Sentinel "never re-check" horizon for pairs that provably cannot link
#: (no common radio technology, or two stationary devices out of range).
_NEVER = math.inf

#: Safety margin (metres) subtracted from the provable out-of-reach gap
#: before scheduling a skip, absorbing floating-point drift in mobility
#: integration.  Chosen far above any accumulated rounding error.
_SCHEDULE_SLACK_M = 1.0

_MISSING = object()


class Medium:
    """Contact detection over mobile devices.

    Parameters
    ----------
    sim:
        The simulation engine (drives the tick).
    tick_interval:
        Seconds between position refreshes.  30 s resolves walking-speed
        encounters (a 10 m Bluetooth bubble at 1.4 m/s closing speed lasts
        ~14 s; P2P WiFi at 60 m lasts ~85 s) while keeping 7-day runs fast;
        tighten it in micro-benchmarks when Bluetooth-only fidelity matters.
    hysteresis:
        Link-drop range multiplier (drop at range * hysteresis).
    batched:
        Use the batched contact-detection engine (default).  ``False``
        selects the per-device reference path — same contacts, per-device
        spatial queries; kept as the benchmark/equivalence oracle.
    """

    def __init__(
        self,
        sim: Simulator,
        tick_interval: float = 30.0,
        hysteresis: float = 1.1,
        batched: bool = True,
    ) -> None:
        if tick_interval <= 0:
            raise ValueError(f"tick_interval must be positive, got {tick_interval}")
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be >= 1.0, got {hysteresis}")
        self.sim = sim
        self.tick_interval = float(tick_interval)
        self.hysteresis = float(hysteresis)
        self.batched = bool(batched)
        self.devices: Dict[str, Device] = {}
        self.contacts = ContactTracker()
        self._index = SpatialHashIndex(cell_size=120.0)
        self._linked: Dict[Tuple[str, str], RadioProfile] = {}
        self._up_callbacks: List[LinkCallback] = []
        self._down_callbacks: List[LinkCallback] = []
        self._max_range = 0.0
        #: device_id -> mobility speed bound (None = unknown).
        self._speed_bound: Dict[str, Optional[float]] = {}
        #: device_id -> own maximum radio reach * hysteresis (sweep cutoff).
        self._reach: Dict[str, float] = {}
        # Radio resolution is cached per *radio-set class*, not per pair:
        # radio sets are immutable tuples, so a population carrying k
        # distinct sets needs at most k^2 best_common_radio calls, ever.
        self._radio_set_ids: Dict[Tuple[RadioProfile, ...], int] = {}
        self._radio_class: Dict[str, int] = {}
        #: (class_a << 16 | class_b) -> (radio, range_m^2) or None.
        self._class_radio: Dict[int, Optional[Tuple[RadioProfile, float]]] = {}
        #: pair -> earliest time the pair could possibly come into range.
        self._next_check: Dict[Tuple[str, str], float] = {}
        #: mobility-class groups, rebuilt after add/remove.
        self._groups: Optional[List[Tuple[type, List[Device], list]]] = None
        # Tick instrumentation (read by the scale bench and sweep reports).
        self.tick_count = 0
        self.pairs_examined = 0
        self.pair_checks_skipped = 0
        self._timer = PeriodicTimer(sim, self.tick_interval, self.tick, name="medium-tick")

    # -- population ---------------------------------------------------------------
    def add_device(self, device: Device) -> None:
        """Register a device.

        The batched engine snapshots the device's mobility object, radio
        set and speed bound here; none of them may be swapped while the
        device is registered (``remove_device`` + ``add_device`` to
        change them).  Power state may change freely at any time.
        """
        if device.device_id in self.devices:
            raise ValueError(f"duplicate device id {device.device_id!r}")
        self.devices[device.device_id] = device
        own_range = max(r.range_m for r in device.radios)
        self._max_range = max(self._max_range, own_range)
        self._speed_bound[device.device_id] = device.max_speed_m_s()
        self._reach[device.device_id] = own_range * self.hysteresis
        set_id = self._radio_set_ids.get(device.radios)
        if set_id is None:
            set_id = len(self._radio_set_ids)
            self._radio_set_ids[device.radios] = set_id
        self._radio_class[device.device_id] = set_id
        self._groups = None
        self._index.update(device.device_id, device.position_at(self.sim.now))

    def remove_device(self, device_id: str) -> None:
        device = self.devices.get(device_id)
        if device is None:
            return
        # Drop links while the device is still registered so link-down
        # callbacks fire with both Device objects — upper layers (sessions,
        # routing) tear down peer state through exactly those callbacks.
        for key in sorted(k for k in self._linked if device_id in k):
            self._drop_link(key)
        del self.devices[device_id]
        self._index.remove(device_id)
        self._speed_bound.pop(device_id, None)
        self._reach.pop(device_id, None)
        self._radio_class.pop(device_id, None)
        self._groups = None
        for key in [k for k in self._next_check if device_id in k]:
            del self._next_check[key]

    # -- callbacks -----------------------------------------------------------------
    def on_link_up(self, callback: LinkCallback) -> None:
        self._up_callbacks.append(callback)

    def on_link_down(self, callback: LinkCallback) -> None:
        self._down_callbacks.append(callback)

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic ticking; performs an immediate first tick so
        links existing at t=0 are detected."""
        self.tick()
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()
        for key in sorted(self._linked):
            self._drop_link(key)
        self.contacts.close_all(self.sim.now)

    # -- the tick ---------------------------------------------------------------------
    def tick(self) -> None:
        """Advance positions and rediff the in-range pair set."""
        self.tick_count += 1
        if self.batched:
            self._tick_batched(self.sim.now)
        else:
            self._tick_per_device(self.sim.now)

    def _mobility_groups(self) -> List[Tuple[type, List[Device], list]]:
        """Devices bucketed by mobility class (cached between ticks)."""
        if self._groups is None:
            buckets: Dict[type, Tuple[type, List[Device], list]] = {}
            # repro: ignore[nondet-iter] -- order cannot reach the trace: grouping only decides the order of batched positions_at/update_many calls; every device's position lands in the same final index state, and link events are diffed from that state and emitted in sorted pair order (_tick_batched).
            for device in self.devices.values():
                cls = type(device.mobility)
                entry = buckets.get(cls)
                if entry is None:
                    entry = buckets[cls] = (cls, [], [])
                entry[1].append(device)
                entry[2].append(device.mobility)
            self._groups = list(buckets.values())
        return self._groups

    def _tick_batched(self, now: float) -> None:
        """Batched engine: one mobility pass, one pair sweep, incremental
        link diff (see "Scaling the medium" above)."""
        devices = self.devices
        # Advance the population, one batch call per mobility class.
        index = self._index
        for mobility_cls, group_devices, models in self._mobility_groups():
            points = mobility_cls.positions_at(models, now)
            for device, position in zip(group_devices, points):
                device._last_position = position
            index.update_many(zip((d.device_id for d in group_devices), points))

        linked = self._linked
        radio_class = self._radio_class
        class_radio = self._class_radio
        speed_bound = self._speed_bound
        next_check = self._next_check
        hysteresis = self.hysteresis
        tick_interval = self.tick_interval
        survivors: Set[Tuple[str, str]] = set()
        to_raise: List[Tuple[Tuple[str, str], RadioProfile]] = []
        candidates = self._index.pairs_within(
            self._max_range * hysteresis, reach_of=self._reach
        )
        self.pairs_examined += len(candidates)
        skipped = 0
        for a, b, d2 in candidates:
            key = (a, b) if a <= b else (b, a)
            active = linked.get(key)
            if active is not None:
                if not (devices[a].powered_on and devices[b].powered_on):
                    continue  # dropped below
                limit = active.range_m * hysteresis
                if d2 <= limit * limit:
                    survivors.add(key)
                continue
            if not (devices[a].powered_on and devices[b].powered_on):
                continue
            horizon = next_check.get(key)
            if horizon is not None:
                if now < horizon:
                    skipped += 1
                    continue
                del next_check[key]
            class_key = (radio_class[key[0]] << 16) | radio_class[key[1]]
            entry = class_radio.get(class_key, _MISSING)
            if entry is _MISSING:
                radio = best_common_radio(devices[key[0]].radios, devices[key[1]].radios)
                entry = None if radio is None else (radio, radio.range_m * radio.range_m)
                class_radio[class_key] = entry
            if entry is None:
                continue  # no common technology (radio sets are immutable)
            radio, r2 = entry
            if d2 <= r2:
                to_raise.append((key, radio))
                continue
            # Out of range: when both speed bounds are known, skip the pair
            # until it could possibly have closed the gap.
            va = speed_bound.get(a)
            vb = speed_bound.get(b)
            if va is None or vb is None:
                continue
            closure = va + vb
            reach = radio.range_m
            if closure <= 0.0:
                next_check[key] = _NEVER  # both pinned, forever apart
                continue
            min_skip = reach + _SCHEDULE_SLACK_M + closure * tick_interval
            if d2 > min_skip * min_skip:
                next_check[key] = (
                    now + (math.sqrt(d2) - reach - _SCHEDULE_SLACK_M) / closure
                )
        self.pair_checks_skipped += skipped
        if len(survivors) != len(linked):
            for key in sorted(k for k in linked if k not in survivors):
                self._drop_link(key)
        to_raise.sort(key=lambda item: item[0])
        for key, radio in to_raise:
            self._raise_link(key, radio)

    def _tick_per_device(self, now: float) -> None:
        """Reference engine: per-device spatial queries, pair-set rediff.

        Kept deliberately naive — this is the oracle the batched engine is
        verified against (identical contact traces) and benchmarked over.
        """
        index = self._index
        devices = self.devices
        # repro: ignore[nondet-iter] -- order cannot reach the trace: each iteration updates an independent per-device index entry; the pair sweep below reads the completed index and both engines emit link events in sorted pair order.
        for device in devices.values():
            index.update(device.device_id, device.position_at(now))

        desired: Dict[Tuple[str, str], RadioProfile] = {}
        seen: Set[Tuple[str, str]] = set()
        sweep = self._max_range * self.hysteresis
        for device_id, device in devices.items():
            if not device.powered_on:
                continue
            position = index.position_of(device_id)
            for other_id in index.within(position, sweep, exclude=device_id):
                key = pair_key(device_id, other_id)
                if key in seen:
                    continue
                seen.add(key)
                self.pairs_examined += 1
                other = devices[other_id]
                if not other.powered_on:
                    continue
                radio = best_common_radio(devices[key[0]].radios, devices[key[1]].radios)
                if radio is None:
                    continue
                # Squared-distance compares with the exact arithmetic of
                # pairs_within, so the two engines agree even when a pair
                # lands within a rounding error of a range threshold.
                other_position = index.position_of(other_id)
                dx = position.x - other_position.x
                dy = position.y - other_position.y
                d2 = dx * dx + dy * dy
                active = self._linked.get(key)
                if active is not None:
                    # Existing link survives out to the hysteresis margin
                    # of the radio it was *raised* on — not whatever the
                    # best common technology happens to resolve to now.
                    limit = active.range_m * self.hysteresis
                    if d2 <= limit * limit:
                        desired[key] = active
                else:
                    reach = radio.range_m
                    if d2 <= reach * reach:
                        desired[key] = radio

        for key in sorted(k for k in self._linked if k not in desired):
            self._drop_link(key)
        for key in sorted(k for k in desired if k not in self._linked):
            self._raise_link(key, desired[key])

    def _raise_link(self, key: Tuple[str, str], radio: RadioProfile) -> None:
        self._linked[key] = radio
        a, b = self.devices[key[0]], self.devices[key[1]]
        self.contacts.contact_up(key[0], key[1], radio, self.sim.now)
        self.sim.trace.emit(
            self.sim.now, "contact", "up", a=key[0], b=key[1], radio=radio.technology.value
        )
        for callback in self._up_callbacks:
            callback(a, b, radio)

    def _drop_link(self, key: Tuple[str, str]) -> None:
        radio = self._linked.pop(key, None)
        if radio is None:
            return
        a, b = self.devices.get(key[0]), self.devices.get(key[1])
        self.contacts.contact_down(key[0], key[1], self.sim.now)
        self.sim.trace.emit(
            self.sim.now, "contact", "down", a=key[0], b=key[1], radio=radio.technology.value
        )
        if a is not None and b is not None:
            for callback in self._down_callbacks:
                callback(a, b, radio)

    # -- forced drops (fault injection) ---------------------------------------------
    def force_drop(self, a: str, b: str) -> bool:
        """Drop the active link between two devices, if any (a link flap:
        the pair re-links on the next tick while still in range).  Fires
        the normal link-down callbacks; returns True when a link dropped."""
        key = pair_key(a, b)
        if key not in self._linked:
            return False
        self._drop_link(key)
        return True

    def drop_links_of(self, device_id: str) -> int:
        """Drop every active link touching ``device_id`` (device crash or
        abrupt power loss), in sorted pair order for determinism.  Returns
        the number of links dropped."""
        keys = sorted(k for k in self._linked if device_id in k)
        for key in keys:
            self._drop_link(key)
        return len(keys)

    def active_link_keys(self) -> List[Tuple[str, str]]:
        """Sorted snapshot of the active link pair keys."""
        return sorted(self._linked)

    # -- queries --------------------------------------------------------------------
    def link_between(self, a: str, b: str) -> Optional[RadioProfile]:
        """The active radio between two devices, or None."""
        return self._linked.get(pair_key(a, b))

    def neighbours_of(self, device_id: str) -> List[str]:
        """Device ids currently linked with ``device_id``."""
        out = []
        for key in self._linked:
            if key[0] == device_id:
                out.append(key[1])
            elif key[1] == device_id:
                out.append(key[0])
        return out

    @property
    def active_links(self) -> int:
        return len(self._linked)

    @property
    def distance_checks(self) -> int:
        """Cumulative candidate distance computations in the spatial
        index — the geometric work the batched sweep compresses (the
        per-device path visits every pair from both ends)."""
        return self._index.distance_checks
