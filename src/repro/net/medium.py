"""The shared radio medium.

The medium owns the physical truth of the simulation: where every device
is, and which pairs are within radio range.  On a fixed tick it advances
every mobility model, refreshes a spatial index, and diffs the in-range
pair set against the previous tick, emitting ``link_up`` / ``link_down``
callbacks with the best common radio.  Hysteresis (connect at R, drop at
R * ``hysteresis``) prevents link flapping at range boundaries — real
radios behave the same way because of fading margins.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.geo.spatial_index import SpatialHashIndex
from repro.net.contact import ContactTracker, pair_key
from repro.net.device import Device
from repro.net.radio import RadioProfile, best_common_radio
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTimer

LinkCallback = Callable[[Device, Device, RadioProfile], None]


class Medium:
    """Contact detection over mobile devices.

    Parameters
    ----------
    sim:
        The simulation engine (drives the tick).
    tick_interval:
        Seconds between position refreshes.  30 s resolves walking-speed
        encounters (a 10 m Bluetooth bubble at 1.4 m/s closing speed lasts
        ~14 s; P2P WiFi at 60 m lasts ~85 s) while keeping 7-day runs fast;
        tighten it in micro-benchmarks when Bluetooth-only fidelity matters.
    hysteresis:
        Link-drop range multiplier (drop at range * hysteresis).
    """

    def __init__(
        self,
        sim: Simulator,
        tick_interval: float = 30.0,
        hysteresis: float = 1.1,
    ) -> None:
        if tick_interval <= 0:
            raise ValueError(f"tick_interval must be positive, got {tick_interval}")
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be >= 1.0, got {hysteresis}")
        self.sim = sim
        self.tick_interval = float(tick_interval)
        self.hysteresis = float(hysteresis)
        self.devices: Dict[str, Device] = {}
        self.contacts = ContactTracker()
        self._index = SpatialHashIndex(cell_size=120.0)
        self._linked: Dict[Tuple[str, str], RadioProfile] = {}
        self._up_callbacks: List[LinkCallback] = []
        self._down_callbacks: List[LinkCallback] = []
        self._max_range = 0.0
        self._timer = PeriodicTimer(sim, self.tick_interval, self.tick, name="medium-tick")

    # -- population ---------------------------------------------------------------
    def add_device(self, device: Device) -> None:
        if device.device_id in self.devices:
            raise ValueError(f"duplicate device id {device.device_id!r}")
        self.devices[device.device_id] = device
        self._max_range = max(
            self._max_range, max(r.range_m for r in device.radios)
        )
        self._index.update(device.device_id, device.position_at(self.sim.now))

    def remove_device(self, device_id: str) -> None:
        device = self.devices.pop(device_id, None)
        if device is None:
            return
        self._index.remove(device_id)
        for key in [k for k in self._linked if device_id in k]:
            self._drop_link(key)

    # -- callbacks -----------------------------------------------------------------
    def on_link_up(self, callback: LinkCallback) -> None:
        self._up_callbacks.append(callback)

    def on_link_down(self, callback: LinkCallback) -> None:
        self._down_callbacks.append(callback)

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic ticking; performs an immediate first tick so
        links existing at t=0 are detected."""
        self.tick()
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()
        for key in list(self._linked):
            self._drop_link(key)
        self.contacts.close_all(self.sim.now)

    # -- the tick ---------------------------------------------------------------------
    def tick(self) -> None:
        """Advance positions and rediff the in-range pair set."""
        now = self.sim.now
        for device in self.devices.values():
            self._index.update(device.device_id, device.position_at(now))

        desired: Dict[Tuple[str, str], RadioProfile] = {}
        seen: Set[Tuple[str, str]] = set()
        for device_id, device in self.devices.items():
            if not device.powered_on:
                continue
            position = self._index.position_of(device_id)
            for other_id in self._index.within(position, self._max_range * self.hysteresis, exclude=device_id):
                key = pair_key(device_id, other_id)
                if key in seen:
                    continue
                seen.add(key)
                other = self.devices[other_id]
                if not other.powered_on:
                    continue
                radio = best_common_radio(device.radios, other.radios)
                if radio is None:
                    continue
                dist = position.distance_to(self._index.position_of(other_id))
                if key in self._linked:
                    # Existing link survives out to the hysteresis margin.
                    if dist <= radio.range_m * self.hysteresis:
                        desired[key] = self._linked[key]
                elif dist <= radio.range_m:
                    desired[key] = radio

        for key in [k for k in self._linked if k not in desired]:
            self._drop_link(key)
        for key, radio in desired.items():
            if key not in self._linked:
                self._raise_link(key, radio)

    def _raise_link(self, key: Tuple[str, str], radio: RadioProfile) -> None:
        self._linked[key] = radio
        a, b = self.devices[key[0]], self.devices[key[1]]
        self.contacts.contact_up(key[0], key[1], radio, self.sim.now)
        self.sim.trace.emit(
            self.sim.now, "contact", "up", a=key[0], b=key[1], radio=radio.technology.value
        )
        for callback in self._up_callbacks:
            callback(a, b, radio)

    def _drop_link(self, key: Tuple[str, str]) -> None:
        radio = self._linked.pop(key, None)
        if radio is None:
            return
        a, b = self.devices.get(key[0]), self.devices.get(key[1])
        self.contacts.contact_down(key[0], key[1], self.sim.now)
        self.sim.trace.emit(
            self.sim.now, "contact", "down", a=key[0], b=key[1], radio=radio.technology.value
        )
        if a is not None and b is not None:
            for callback in self._down_callbacks:
                callback(a, b, radio)

    # -- queries --------------------------------------------------------------------
    def link_between(self, a: str, b: str) -> Optional[RadioProfile]:
        """The active radio between two devices, or None."""
        return self._linked.get(pair_key(a, b))

    def neighbours_of(self, device_id: str) -> List[str]:
        """Device ids currently linked with ``device_id``."""
        out = []
        for key in self._linked:
            if key[0] == device_id:
                out.append(key[1])
            elif key[1] == device_id:
                out.append(key[0])
        return out

    @property
    def active_links(self) -> int:
        return len(self._linked)
